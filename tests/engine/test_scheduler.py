"""Unit tests for the uniform ordered-pair scheduler."""

import numpy as np
import pytest

from repro.engine.scheduler import UniformPairScheduler


class TestValidity:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(1)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(4, batch_size=0)

    def test_pairs_are_distinct_and_in_range(self):
        scheduler = UniformPairScheduler(7, rng=0, batch_size=16)
        for i, j in scheduler.pairs(500):
            assert 0 <= i < 7 and 0 <= j < 7
            assert i != j

    def test_pair_batch_shape_and_distinctness(self):
        scheduler = UniformPairScheduler(5, rng=1)
        initiators, responders = scheduler.pair_batch(1000)
        assert len(initiators) == len(responders) == 1000
        assert np.all(initiators != responders)


class TestUniformity:
    def test_all_ordered_pairs_occur(self):
        n = 4
        scheduler = UniformPairScheduler(n, rng=2, batch_size=64)
        seen = set(scheduler.pairs(3000))
        assert len(seen) == n * (n - 1)

    def test_marginal_distribution_is_roughly_uniform(self):
        n = 5
        scheduler = UniformPairScheduler(n, rng=3)
        counts = np.zeros(n)
        samples = 20000
        for i, j in scheduler.pairs(samples):
            counts[i] += 1
            counts[j] += 1
        expected = 2 * samples / n
        assert np.all(np.abs(counts - expected) < 0.1 * expected)

    def test_reproducibility_with_same_seed(self):
        first = list(UniformPairScheduler(6, rng=42).pairs(50))
        second = list(UniformPairScheduler(6, rng=42).pairs(50))
        assert first == second

    def test_different_seeds_differ(self):
        first = list(UniformPairScheduler(6, rng=1).pairs(50))
        second = list(UniformPairScheduler(6, rng=2).pairs(50))
        assert first != second

    def test_n_property(self):
        assert UniformPairScheduler(9).n == 9
