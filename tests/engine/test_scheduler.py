"""Unit tests for the uniform ordered-pair scheduler."""

import numpy as np
import pytest
from scipy import stats

from repro.engine.scheduler import UniformPairScheduler, ordered_pair_index


class TestValidity:
    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(1)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            UniformPairScheduler(4, batch_size=0)

    def test_pairs_are_distinct_and_in_range(self):
        scheduler = UniformPairScheduler(7, rng=0, batch_size=16)
        for i, j in scheduler.pairs(500):
            assert 0 <= i < 7 and 0 <= j < 7
            assert i != j

    def test_pair_batch_shape_and_distinctness(self):
        scheduler = UniformPairScheduler(5, rng=1)
        initiators, responders = scheduler.pair_batch(1000)
        assert len(initiators) == len(responders) == 1000
        assert np.all(initiators != responders)


class TestUniformity:
    def test_all_ordered_pairs_occur(self):
        n = 4
        scheduler = UniformPairScheduler(n, rng=2, batch_size=64)
        seen = set(scheduler.pairs(3000))
        assert len(seen) == n * (n - 1)

    def test_marginal_distribution_is_roughly_uniform(self):
        n = 5
        scheduler = UniformPairScheduler(n, rng=3)
        counts = np.zeros(n)
        samples = 20000
        for i, j in scheduler.pairs(samples):
            counts[i] += 1
            counts[j] += 1
        expected = 2 * samples / n
        assert np.all(np.abs(counts - expected) < 0.1 * expected)

    def test_reproducibility_with_same_seed(self):
        first = list(UniformPairScheduler(6, rng=42).pairs(50))
        second = list(UniformPairScheduler(6, rng=42).pairs(50))
        assert first == second

    def test_different_seeds_differ(self):
        first = list(UniformPairScheduler(6, rng=1).pairs(50))
        second = list(UniformPairScheduler(6, rng=2).pairs(50))
        assert first != second

    def test_n_property(self):
        assert UniformPairScheduler(9).n == 9

    def test_ordered_pair_count(self):
        assert UniformPairScheduler(9).ordered_pair_count == 72


class TestOrderedPairIndex:
    def test_bijection_over_all_ordered_pairs(self):
        n = 7
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        initiators = np.array([i for i, _ in pairs])
        responders = np.array([j for _, j in pairs])
        indices = ordered_pair_index(initiators, responders, n)
        assert sorted(indices.tolist()) == list(range(n * (n - 1)))

    def test_rejects_self_pairs(self):
        with pytest.raises(ValueError):
            ordered_pair_index(np.array([1]), np.array([1]), 4)


class TestChiSquaredUniformity:
    """Chi-squared goodness of fit over all n(n-1) ordered pairs.

    Seeds are fixed, so the tests are deterministic; the 0.001 threshold
    keeps the (one-off) false-alarm probability negligible while catching
    any systematic bias in the distinct-pair sampling trick.
    """

    N = 8
    SAMPLES_PER_CELL = 200

    def _chi_squared_pvalue(self, counts: np.ndarray) -> float:
        return float(stats.chisquare(counts).pvalue)

    def test_next_pair_is_uniform_over_ordered_pairs(self):
        n = self.N
        cells = n * (n - 1)
        scheduler = UniformPairScheduler(n, rng=2024)
        counts = np.zeros(cells)
        for i, j in scheduler.pairs(cells * self.SAMPLES_PER_CELL):
            counts[int(ordered_pair_index(np.array([i]), np.array([j]), n)[0])] += 1
        assert self._chi_squared_pvalue(counts) > 0.001

    def test_pair_batch_is_uniform_over_ordered_pairs(self):
        n = self.N
        cells = n * (n - 1)
        scheduler = UniformPairScheduler(n, rng=4048)
        initiators, responders = scheduler.pair_batch(cells * self.SAMPLES_PER_CELL)
        counts = np.bincount(
            ordered_pair_index(initiators, responders, n), minlength=cells
        )
        assert self._chi_squared_pvalue(counts) > 0.001

    def test_next_pair_and_pair_batch_agree(self):
        """Two-sample homogeneity: buffered and batch paths draw the same law."""
        n = self.N
        cells = n * (n - 1)
        scheduler = UniformPairScheduler(n, rng=99)
        buffered = np.zeros(cells, dtype=np.int64)
        for i, j in scheduler.pairs(cells * self.SAMPLES_PER_CELL):
            buffered[int(ordered_pair_index(np.array([i]), np.array([j]), n)[0])] += 1
        initiators, responders = scheduler.pair_batch(cells * self.SAMPLES_PER_CELL)
        batched = np.bincount(
            ordered_pair_index(initiators, responders, n), minlength=cells
        )
        _, pvalue, _, _ = stats.chi2_contingency(np.stack([buffered, batched]))
        assert pvalue > 0.001
