"""Loop-vs-compiled equivalence: same protocol, same law of convergence times.

The two engines consume the shared random generator differently, so runs are
not bitwise identical; instead, for every protocol the compiler supports, the
distribution of convergence (parallel) times over independent seeded trials
must be statistically indistinguishable.  Each case runs a fixed number of
trials per engine from seed-derived independent streams and applies a
two-sample Kolmogorov-Smirnov test plus a loose mean-ratio sanity check.

All seeds are fixed, so these tests are deterministic; the KS threshold of
0.001 makes a false alarm essentially impossible while still catching real
engine bugs (which shift the distribution wholesale).
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import ProtocolCompiler
from repro.engine.rng import spawn_rngs
from repro.engine.simulation import Simulation
from repro.processes.epidemic import TwoWayEpidemicProtocol
from repro.processes.roll_call import RollCallProtocol

TRIALS = 50
KS_ALPHA = 0.001

CASES = {
    "epidemic": dict(
        protocol=lambda: TwoWayEpidemicProtocol(128),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "silent-n-state": dict(
        protocol=lambda: SilentNStateSSR(24),
        configuration=lambda protocol, rng: protocol.worst_case_configuration(),
        stop="stabilized",
    ),
    "roll-call": dict(
        protocol=lambda: RollCallProtocol(5),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "reset-wave": dict(
        protocol=lambda: ResetWaveProtocol(48, rmax=5, dmax=5),
        configuration=lambda protocol, rng: protocol.triggered_configuration(),
        stop="stabilized",
    ),
}


def convergence_times(case, engine: str, seed: int) -> np.ndarray:
    times = []
    compiled = None
    for rng in spawn_rngs(seed, TRIALS):
        protocol = case["protocol"]()
        configuration = case["configuration"](protocol, rng)
        if engine == "loop":
            simulation = Simulation(protocol, configuration=configuration, rng=rng)
        else:
            if compiled is None:
                compiled = ProtocolCompiler().compile(protocol)
            simulation = BatchSimulation(
                protocol, configuration=configuration, rng=rng, compiled=compiled
            )
        runner = {
            "correct": simulation.run_until_correct,
            "stabilized": simulation.run_until_stabilized,
        }[case["stop"]]
        result = runner()
        assert result.stopped, f"{protocol.name} did not converge on {engine}"
        times.append(result.parallel_time)
    return np.asarray(times)


@pytest.mark.parametrize("name", sorted(CASES))
def test_engines_agree_on_convergence_distribution(name):
    case = CASES[name]
    loop_times = convergence_times(case, "loop", seed=1234)
    compiled_times = convergence_times(case, "compiled", seed=5678)

    ks = stats.ks_2samp(loop_times, compiled_times)
    assert ks.pvalue > KS_ALPHA, (
        f"{name}: convergence-time distributions differ between engines "
        f"(KS p={ks.pvalue:.2e}, loop mean {loop_times.mean():.3f}, "
        f"compiled mean {compiled_times.mean():.3f})"
    )
    ratio = compiled_times.mean() / loop_times.mean()
    assert 0.6 < ratio < 1.6, (
        f"{name}: mean convergence times diverge (ratio {ratio:.2f})"
    )
