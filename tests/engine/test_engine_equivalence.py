"""Three-engine equivalence across the whole compilable catalogue.

Four layers of agreement, from statistical to exact:

1. **Convergence-time law** -- the engines (loop, compiled, counts, and the
   trial-batched variants of the latter two) consume their generators
   differently, so runs are not bitwise identical; instead, for every
   protocol the compiler supports, the distributions of convergence
   (parallel) times over independent seeded trials must be pairwise
   statistically indistinguishable (two-sample Kolmogorov-Smirnov plus a
   loose mean-ratio sanity check) across all five samplers.
2. **Window replay** -- at small ``n`` every window the counts engine samples
   is replayed pair-by-pair through the compiled table; the replayed count
   histogram must equal the vector-applied one *exactly*, and every sampled
   event must name an active table row and one of its declared branches.
3. **Table-vs-delta** -- for every ordered pair of enumerated states, the
   compiled table's branch list must agree *exactly* with the protocol's
   ``transition()`` / ``transition_branches()``.  This is exhaustive, not
   sampled: every entry of every table is checked.
4. **State-space containment** -- every state a loop-engine execution visits
   must be encodable by the compiled table (the compiled space covers the
   reachable space).

All seeds are fixed, so these tests are deterministic; the KS threshold of
0.001 makes a false alarm essentially impossible while still catching real
engine bugs (which shift the distribution wholesale).
"""

import itertools

import numpy as np
import pytest
from scipy import stats

from repro.core.composition import ComposedProtocol
from repro.core.fratricide import FratricideLeaderElection
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.derandomize.synthetic_coin import SyntheticCoinProtocol
from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import ProtocolCompiler, _as_raw_tables
from repro.engine.counts_simulation import CountsSimulation
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import make_rng, spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.engine.trial_batch import CountsTrialBatchSimulation, TrialBatchSimulation
from repro.engine.state import AgentState
from repro.processes.bounded_epidemic import (
    UNREACHED,
    BoundedEpidemicProtocol,
    LevelState,
)
from repro.processes.epidemic import TwoWayEpidemicProtocol
from repro.processes.roll_call import RollCallProtocol

TRIALS = 50
KS_ALPHA = 0.001

#: Pair-probe seeds for deriving a deterministic transition's single branch.
PROBE_SEEDS = (101, 211)


class CoinFlipState(AgentState):
    def __init__(self, bit: int):
        self.bit = int(bit)

    def signature(self):
        return self.bit


class LazyEpidemicProtocol(PopulationProtocol):
    """Randomized fixture: an infected initiator infects with probability p.

    The only *randomized* member of the matrix -- it exercises the table's
    branch-probability channel end to end (declared branches, cumulative
    probabilities, batch branch sampling) where the paper protocols are all
    deterministic per interaction.
    """

    name = "lazy-epidemic"

    def __init__(self, n: int, p: float = 0.25):
        super().__init__(n)
        self.p = p

    def initial_state(self, agent_id, rng):
        return CoinFlipState(1 if agent_id == 0 else 0)

    def transition(self, initiator, responder, rng):
        if initiator.bit == 1 and responder.bit == 0 and rng.random() < self.p:
            responder.bit = 1

    def is_correct(self, configuration):
        return all(state.bit == 1 for state in configuration)

    def enumerate_states(self):
        return [CoinFlipState(0), CoinFlipState(1)]

    def transition_branches(self, initiator, responder):
        if initiator.bit == 1 and responder.bit == 0:
            return [
                (self.p, CoinFlipState(1), CoinFlipState(1)),
                (1.0 - self.p, CoinFlipState(1), CoinFlipState(0)),
            ]
        return [(1.0, initiator, responder)]

    def compiled_predicates(self):
        def all_infected(counts, compiled):
            susceptible = compiled.encode_state(CoinFlipState(0))
            return int(counts[susceptible]) == 0

        return {"correct": all_infected}


def small_optimal_silent(n: int = 6) -> OptimalSilentSSR:
    """Constants small enough that the quadratic tables stay test-sized."""
    return OptimalSilentSSR(n, rmax_multiplier=1.0, dmax_factor=2.0, emax_factor=3.0)


class AnonymousBoundedEpidemic(BoundedEpidemicProtocol):
    """Bounded epidemic with an identity-free stop: every agent reached.

    The parent's correctness predicate names a specific *agent* (the target),
    which the counts engine cannot express -- count vectors carry no
    identities, so its decoded configurations order agents arbitrarily (see
    the engine-support table in the README).  The three-engine matrix
    therefore measures the identity-free completion time, which exercises the
    same transition tables on all engines.
    """

    def is_correct(self, configuration):
        return all(state.level != UNREACHED for state in configuration)

    def compiled_predicates(self):
        def all_reached(counts, compiled):
            unreached = compiled.encode_state(LevelState(UNREACHED))
            return int(counts[unreached]) == 0

        return {"correct": all_reached}


def fratricide_over_ranking(n: int = 16) -> ComposedProtocol:
    return ComposedProtocol(FratricideLeaderElection(n), SilentNStateSSR(n))


#: The full compiled catalogue: every protocol with an enumerable state space,
#: each with a convergence scenario both engines must reproduce.
CASES = {
    "epidemic": dict(
        protocol=lambda: TwoWayEpidemicProtocol(128),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "lazy-epidemic": dict(
        protocol=lambda: LazyEpidemicProtocol(64, p=0.25),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "silent-n-state": dict(
        protocol=lambda: SilentNStateSSR(24),
        configuration=lambda protocol, rng: protocol.worst_case_configuration(),
        stop="stabilized",
    ),
    "roll-call": dict(
        protocol=lambda: RollCallProtocol(5),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "reset-wave": dict(
        protocol=lambda: ResetWaveProtocol(48, rmax=5, dmax=5),
        configuration=lambda protocol, rng: protocol.triggered_configuration(),
        stop="stabilized",
    ),
    "fratricide": dict(
        protocol=lambda: FratricideLeaderElection(48),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "bounded-epidemic": dict(
        protocol=lambda: AnonymousBoundedEpidemic(48, k=2),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "synthetic-coin": dict(
        protocol=lambda: SyntheticCoinProtocol(32, bits_needed=2),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
    "optimal-silent": dict(
        protocol=lambda: small_optimal_silent(6),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="stabilized",
    ),
    "composed": dict(
        protocol=lambda: fratricide_over_ranking(16),
        configuration=lambda protocol, rng: protocol.initial_configuration(rng),
        stop="correct",
    ),
}

#: Smaller instances for the exhaustive table checks (same protocols, sized so
#: S^2 probing stays fast; every case here must stay below ~200 states).
TABLE_CASES = {
    "epidemic": lambda: TwoWayEpidemicProtocol(10),
    "lazy-epidemic": lambda: LazyEpidemicProtocol(10, p=0.25),
    "silent-n-state": lambda: SilentNStateSSR(24),
    "roll-call": lambda: RollCallProtocol(4),
    "reset-wave": lambda: ResetWaveProtocol(16, rmax=3, dmax=3),
    "fratricide": lambda: FratricideLeaderElection(10),
    "bounded-epidemic": lambda: BoundedEpidemicProtocol(10, k=2),
    "synthetic-coin": lambda: SyntheticCoinProtocol(10, bits_needed=2),
    "optimal-silent": lambda: small_optimal_silent(6),
    "composed": lambda: fratricide_over_ranking(8),
}


#: Per-engine seeds for the convergence matrix (distinct on purpose: the law
#: must agree across *independent* sample sets, not shared randomness).
ENGINE_SEEDS = {
    "loop": 1234,
    "compiled": 5678,
    "counts": 9012,
    "batched-compiled": 3456,
    "batched-counts": 7890,
}


def batched_convergence_times(case, engine: str, seed: int) -> np.ndarray:
    """All trials in one trial-batched engine call (the ``trial_batch`` path)."""
    rngs = spawn_rngs(seed, TRIALS)
    protocol = case["protocol"]()
    compiled = ProtocolCompiler().compile(protocol)
    configurations = [
        case["configuration"](case["protocol"](), rng) for rng in rngs
    ]
    if engine == "batched-compiled":
        simulation = TrialBatchSimulation(
            protocol, rngs, configurations=configurations, compiled=compiled
        )
    else:
        rows = np.stack(
            [
                np.bincount(
                    compiled.encode_configuration(configuration),
                    minlength=compiled.num_states,
                )
                for configuration in configurations
            ]
        )
        simulation = CountsTrialBatchSimulation(
            protocol, rows, rng=make_rng(seed), compiled=compiled
        )
    results = simulation.run(RunConfig(engine="compiled", stop=case["stop"]))
    for result in results:
        assert result.stopped, f"{protocol.name} did not converge on {engine}"
    return np.asarray([result.parallel_time for result in results])


def convergence_times(case, engine: str, seed: int) -> np.ndarray:
    if engine.startswith("batched-"):
        return batched_convergence_times(case, engine, seed)
    times = []
    compiled = None
    for rng in spawn_rngs(seed, TRIALS):
        protocol = case["protocol"]()
        configuration = case["configuration"](protocol, rng)
        if engine == "loop":
            simulation = Simulation(protocol, configuration=configuration, rng=rng)
        else:
            if compiled is None:
                compiled = ProtocolCompiler().compile(protocol)
            engine_class = {"compiled": BatchSimulation, "counts": CountsSimulation}[
                engine
            ]
            simulation = engine_class(
                protocol, configuration=configuration, rng=rng, compiled=compiled
            )
        runner = {
            "correct": simulation.run_until_correct,
            "stabilized": simulation.run_until_stabilized,
        }[case["stop"]]
        result = runner()
        assert result.stopped, f"{protocol.name} did not converge on {engine}"
        times.append(result.parallel_time)
    return np.asarray(times)


@pytest.mark.parametrize("name", sorted(CASES))
def test_engines_agree_on_convergence_distribution(name):
    """Pairwise KS across the engines: one law, five samplers."""
    case = CASES[name]
    times = {
        engine: convergence_times(case, engine, seed)
        for engine, seed in ENGINE_SEEDS.items()
    }
    for first, second in itertools.combinations(ENGINE_SEEDS, 2):
        ks = stats.ks_2samp(times[first], times[second])
        assert ks.pvalue > KS_ALPHA, (
            f"{name}: convergence-time distributions differ between engines "
            f"(KS p={ks.pvalue:.2e}, {first} mean {times[first].mean():.3f}, "
            f"{second} mean {times[second].mean():.3f})"
        )
        ratio = times[second].mean() / times[first].mean()
        assert 0.6 < ratio < 1.6, (
            f"{name}: mean convergence times diverge between "
            f"{first} and {second} (ratio {ratio:.2f})"
        )


# -- counts-engine window replay (exact, pair by pair) -------------------------------


@pytest.mark.parametrize(
    "name", ["epidemic", "lazy-epidemic", "silent-n-state", "optimal-silent", "composed"]
)
def test_counts_windows_replay_exactly(name):
    """Every sampled window, replayed one pair at a time, reproduces the counts.

    The counts engine applies a window as a single delta vector.  Here the
    recorded per-window events are replayed through the compiled table pair
    by pair: each event must name an active table row and one of its declared
    positive-probability branches, the number of active draws must fit in the
    window, and the replayed histogram must equal the vector-applied one
    *exactly* -- count conservation is checked per window, not just at the
    end.
    """
    protocol = TABLE_CASES[name]()
    compiled = ProtocolCompiler().compile(protocol)
    tables = _as_raw_tables(compiled)
    simulation = CountsSimulation(
        protocol, rng=make_rng(2024), compiled=compiled, record_windows=True
    )
    simulation.run(600)
    log = simulation.window_log
    assert log, f"{name}: no windows recorded"
    assert sum(entry["window"] for entry in log) == 600
    size = compiled.num_states
    for entry in log:
        replayed = entry["counts_before"].copy()
        active_draws = 0
        for class_i, state_i, class_j, state_j, out_i, out_j, count in entry["events"]:
            row = state_i * size + state_j
            assert compiled.changes[row], f"{name}: sampled an inactive table row"
            branches = [
                branch
                for branch in range(tables["initiator"].shape[1])
                if tables["probability"][row, branch] > 0.0
                and tables["initiator"][row, branch] == out_i
                and tables["responder"][row, branch] == out_j
            ]
            assert branches, f"{name}: sampled an undeclared branch for row {row}"
            for _ in range(count):  # pair-by-pair replay
                replayed[class_i, state_i] -= 1
                replayed[class_j, state_j] -= 1
                replayed[class_i, out_i] += 1
                replayed[class_j, out_j] += 1
            active_draws += count
        assert active_draws <= entry["window"]
        assert np.array_equal(replayed, entry["counts_after"]), (
            f"{name}: pair-by-pair replay disagrees with the vector delta"
        )
        assert entry["counts_after"].min() >= 0
        assert int(entry["counts_after"].sum()) == protocol.n


# -- exhaustive table-vs-delta agreement ---------------------------------------------


def reference_branches(protocol, initiator, responder):
    """Branch list ``[(p, sig_i, sig_j), ...]`` straight from the protocol.

    Uses the protocol's declared ``transition_branches`` when present;
    otherwise probes ``transition()`` with two fixed-seed generators and
    insists the outcomes agree (deterministic transition).
    """
    explicit = protocol.transition_branches(initiator.clone(), responder.clone())
    if explicit is not None:
        return [
            (
                float(probability),
                protocol.state_signature(new_initiator),
                protocol.state_signature(new_responder),
            )
            for probability, new_initiator, new_responder in explicit
        ]
    outcomes = []
    for seed in PROBE_SEEDS:
        probe_initiator, probe_responder = initiator.clone(), responder.clone()
        protocol.transition(probe_initiator, probe_responder, make_rng(seed))
        outcomes.append(
            (
                protocol.state_signature(probe_initiator),
                protocol.state_signature(probe_responder),
            )
        )
    assert outcomes[0] == outcomes[1], (
        f"{protocol.name}: transition() disagrees across probe seeds for "
        f"({initiator!r}, {responder!r}) -- randomized without declared branches"
    )
    return [(1.0, outcomes[0][0], outcomes[0][1])]


def table_branches(compiled, row):
    """Branch list of one table entry, zero-width padded branches dropped."""
    states = compiled.states
    signature = compiled.protocol.state_signature
    if compiled.branch_cumprob is None:
        new_initiator = int(compiled.result_initiator[row])
        new_responder = int(compiled.result_responder[row])
        return [(1.0, signature(states[new_initiator]), signature(states[new_responder]))]
    probabilities = np.diff(compiled.branch_cumprob[row], prepend=0.0)
    branches = []
    for branch in range(compiled.max_branches):
        if probabilities[branch] <= 0.0:
            continue
        branches.append(
            (
                float(probabilities[branch]),
                signature(states[int(compiled.result_initiator[row, branch])]),
                signature(states[int(compiled.result_responder[row, branch])]),
            )
        )
    return branches


@pytest.mark.parametrize("name", sorted(TABLE_CASES))
def test_compiled_table_matches_delta_on_every_state_pair(name):
    """Exhaustive: every (initiator, responder) entry agrees with delta()."""
    protocol = TABLE_CASES[name]()
    compiled = ProtocolCompiler().compile(protocol)
    size = compiled.num_states
    assert size <= 220, f"{name}: {size} states is too large for exhaustive checks"
    for i in range(size):
        for j in range(size):
            row = i * size + j
            expected = reference_branches(protocol, compiled.states[i], compiled.states[j])
            actual = table_branches(compiled, row)
            expected_map = {}
            for probability, sig_i, sig_j in expected:
                key = (sig_i, sig_j)
                expected_map[key] = expected_map.get(key, 0.0) + probability
            actual_map = {}
            for probability, sig_i, sig_j in actual:
                key = (sig_i, sig_j)
                actual_map[key] = actual_map.get(key, 0.0) + probability
            assert set(expected_map) == set(actual_map), (
                f"{name}: outcomes differ for pair "
                f"({compiled.states[i]!r}, {compiled.states[j]!r})"
            )
            for key, probability in expected_map.items():
                assert actual_map[key] == pytest.approx(probability, abs=1e-9), (
                    f"{name}: branch probability differs for pair "
                    f"({compiled.states[i]!r}, {compiled.states[j]!r}) outcome {key}"
                )
            # The changes mask must be exact: marked iff some branch alters a state.
            changes = any(
                key != (compiled.protocol.state_signature(compiled.states[i]),
                        compiled.protocol.state_signature(compiled.states[j]))
                for key in expected_map
            )
            assert bool(compiled.changes[row]) == changes, (
                f"{name}: changes mask wrong for pair "
                f"({compiled.states[i]!r}, {compiled.states[j]!r})"
            )


# -- reachable state space containment -----------------------------------------------


@pytest.mark.parametrize("name", sorted(TABLE_CASES))
def test_loop_reachable_states_are_encodable(name):
    """Every state a loop execution visits lies inside the compiled space."""
    protocol = TABLE_CASES[name]()
    compiled = ProtocolCompiler().compile(protocol)
    rng = make_rng(97)
    starts = [protocol.initial_configuration(rng)]
    try:
        starts.append(protocol.random_configuration(rng))
    except NotImplementedError:
        pass
    for configuration in starts:
        simulation = Simulation(protocol, configuration=configuration, rng=rng)
        for _ in range(15):
            compiled.encode_configuration(simulation.configuration)
            simulation.run(100)
        compiled.encode_configuration(simulation.configuration)
