"""Unit tests for the protocol compiler (repro.engine.compiled)."""

import numpy as np
import pytest

from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR, SilentNStateState
from repro.engine.compiled import CompilationError, ProtocolCompiler
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import AgentState
from repro.processes.epidemic import EpidemicState, TwoWayEpidemicProtocol
from repro.processes.roll_call import RollCallProtocol


class BitState(AgentState):
    def __init__(self, bit: int):
        self.bit = int(bit)

    def signature(self):
        return self.bit


class LazyEpidemicProtocol(PopulationProtocol):
    """Randomized test protocol: an infected initiator infects with prob. p."""

    name = "lazy-epidemic"

    def __init__(self, n: int, p: float = 0.25, declare_branches: bool = True):
        super().__init__(n)
        self.p = p
        self.declare_branches = declare_branches

    def initial_state(self, agent_id, rng):
        return BitState(1 if agent_id == 0 else 0)

    def transition(self, initiator, responder, rng):
        if initiator.bit == 1 and responder.bit == 0 and rng.random() < self.p:
            responder.bit = 1

    def is_correct(self, configuration):
        return all(state.bit == 1 for state in configuration)

    def enumerate_states(self):
        return [BitState(0), BitState(1)]

    def transition_branches(self, initiator, responder):
        if not self.declare_branches:
            return None
        if initiator.bit == 1 and responder.bit == 0:
            branches = [
                (self.p, BitState(1), BitState(1)),
                (1.0 - self.p, BitState(1), BitState(0)),
            ]
            return [branch for branch in branches if branch[0] > 0.0]
        return [(1.0, initiator, responder)]


class TestEpidemicTable:
    def test_state_space_and_determinism(self):
        compiled = ProtocolCompiler().compile(TwoWayEpidemicProtocol(10))
        assert compiled.num_states == 2
        assert compiled.deterministic
        assert compiled.max_branches == 1

    def test_table_entries_match_transition(self):
        compiled = ProtocolCompiler().compile(TwoWayEpidemicProtocol(10))
        susceptible = compiled.encode_state(EpidemicState(False))
        infected = compiled.encode_state(EpidemicState(True))
        size = compiled.num_states
        for a, b, expect_a, expect_b in [
            (susceptible, susceptible, susceptible, susceptible),
            (susceptible, infected, infected, infected),
            (infected, susceptible, infected, infected),
            (infected, infected, infected, infected),
        ]:
            row = a * size + b
            assert compiled.result_initiator[row] == expect_a
            assert compiled.result_responder[row] == expect_b

    def test_changes_mask(self):
        compiled = ProtocolCompiler().compile(TwoWayEpidemicProtocol(10))
        susceptible = compiled.encode_state(EpidemicState(False))
        infected = compiled.encode_state(EpidemicState(True))
        size = compiled.num_states
        changes = compiled.changes
        assert not changes[susceptible * size + susceptible]
        assert not changes[infected * size + infected]
        assert changes[susceptible * size + infected]
        assert changes[infected * size + susceptible]


class TestSilentNStateTable:
    def test_state_space_is_exactly_n(self):
        n = 24
        compiled = ProtocolCompiler().compile(SilentNStateSSR(n))
        assert compiled.num_states == n

    def test_equal_ranks_bump_responder(self):
        n = 8
        protocol = SilentNStateSSR(n)
        compiled = ProtocolCompiler().compile(protocol)
        for rank in range(n):
            index = compiled.encode_state(SilentNStateState(rank))
            row = index * n + index
            bumped = compiled.encode_state(SilentNStateState((rank + 1) % n))
            assert compiled.result_initiator[row] == index
            assert compiled.result_responder[row] == bumped

    def test_state_space_cap_enforced(self):
        with pytest.raises(CompilationError, match="max_states"):
            ProtocolCompiler(max_states=10).compile(SilentNStateSSR(32))


class TestClosure:
    def test_roll_call_closure_reaches_all_rosters(self):
        n = 4
        compiled = ProtocolCompiler().compile(RollCallProtocol(n))
        # Reachable states: (id, roster containing id) -> n * 2^(n-1).
        assert compiled.num_states == n * 2 ** (n - 1)

    def test_reset_wave_state_space(self):
        protocol = ResetWaveProtocol(64, rmax=4, dmax=3)
        compiled = ProtocolCompiler().compile(protocol)
        assert compiled.num_states == protocol.theoretical_state_count() == 1 + 5 * 4


class TestErrors:
    def test_non_enumerable_protocol_rejected(self):
        from repro.core.initialized_ranking import InitializedLeaderDrivenRanking

        with pytest.raises(CompilationError, match="enumerate_states"):
            ProtocolCompiler().compile(InitializedLeaderDrivenRanking(8))

    def test_hidden_randomness_detected(self):
        protocol = LazyEpidemicProtocol(8, p=0.5, declare_branches=False)
        with pytest.raises(CompilationError, match="randomized"):
            ProtocolCompiler().compile(protocol)

    def test_encode_state_outside_space_rejected(self):
        compiled = ProtocolCompiler().compile(SilentNStateSSR(4))
        with pytest.raises(CompilationError, match="outside"):
            compiled.encode_state(SilentNStateState(17))


class TestBranchChannel:
    def test_branch_probabilities_are_cumulative(self):
        protocol = LazyEpidemicProtocol(8, p=0.25)
        compiled = ProtocolCompiler().compile(protocol)
        assert not compiled.deterministic
        assert compiled.max_branches == 2
        one = compiled.encode_state(BitState(1))
        zero = compiled.encode_state(BitState(0))
        row = one * compiled.num_states + zero
        np.testing.assert_allclose(compiled.branch_cumprob[row], [0.25, 1.0])
        assert compiled.result_responder[row, 0] == one
        assert compiled.result_responder[row, 1] == zero
        assert compiled.changes[row]

    def test_null_rows_are_padded_with_identity(self):
        protocol = LazyEpidemicProtocol(8, p=0.25)
        compiled = ProtocolCompiler().compile(protocol)
        zero = compiled.encode_state(BitState(0))
        row = zero * compiled.num_states + zero
        assert not compiled.changes[row]
        assert np.all(compiled.result_initiator[row] == zero)
        assert np.all(compiled.result_responder[row] == zero)

    def test_bad_probabilities_rejected(self):
        class BrokenBranches(LazyEpidemicProtocol):
            def transition_branches(self, initiator, responder):
                return [(0.5, BitState(0), BitState(0))]

        with pytest.raises(CompilationError, match="sum"):
            ProtocolCompiler().compile(BrokenBranches(8))


class TestEncodeDecode:
    def test_round_trip(self):
        protocol = SilentNStateSSR(6)
        compiled = ProtocolCompiler().compile(protocol)
        configuration = protocol.worst_case_configuration()
        indices = compiled.encode_configuration(configuration)
        decoded = compiled.decode_configuration(indices)
        assert [s.rank for s in decoded] == [s.rank for s in configuration]

    def test_decode_clones_exemplars(self):
        protocol = SilentNStateSSR(4)
        compiled = ProtocolCompiler().compile(protocol)
        decoded = compiled.decode_configuration(np.array([0, 0, 1, 2]))
        decoded[0].rank = 3
        assert compiled.states[0].rank == 0

    def test_state_counts(self):
        protocol = SilentNStateSSR(4)
        compiled = ProtocolCompiler().compile(protocol)
        ranks = [compiled.encode_state(SilentNStateState(r)) for r in (0, 0, 0, 2)]
        counts = compiled.state_counts(np.array(ranks))
        assert counts.sum() == 4
        assert counts[compiled.encode_state(SilentNStateState(0))] == 3


class TestCountsSilent:
    def test_distinct_ranks_are_silent(self):
        protocol = SilentNStateSSR(4)
        compiled = ProtocolCompiler().compile(protocol)
        indices = compiled.encode_configuration(
            Configuration([SilentNStateState(r) for r in range(4)])
        )
        assert compiled.counts_silent(compiled.state_counts(indices))

    def test_duplicate_rank_not_silent(self):
        protocol = SilentNStateSSR(4)
        compiled = ProtocolCompiler().compile(protocol)
        indices = compiled.encode_configuration(
            Configuration([SilentNStateState(r) for r in (0, 0, 1, 2)])
        )
        assert not compiled.counts_silent(compiled.state_counts(indices))
