"""Compilation facts for the newly compiled protocols and composed tables.

The generic table-vs-``delta()`` agreement lives in
``test_engine_equivalence.py``; this module pins the *structural* facts --
state-space sizes, individual table entries, the product construction of
composed tables, and the error paths (interference, non-compilable
components, degenerate factor lists).
"""

import numpy as np
import pytest

from repro.core.composition import ComposedProtocol
from repro.core.fratricide import FratricideLeaderElection, FratricideState
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.silent_n_state import SilentNStateSSR
from repro.derandomize.synthetic_coin import ALG, FLIP, SyntheticCoinProtocol, SyntheticCoinState
from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import CompilationError, ProtocolCompiler
from repro.processes.bounded_epidemic import UNREACHED, BoundedEpidemicProtocol, LevelState


def small_optimal_silent(n: int = 6) -> OptimalSilentSSR:
    return OptimalSilentSSR(n, rmax_multiplier=1.0, dmax_factor=2.0, emax_factor=3.0)


_OPTIMAL_SILENT_TABLES = {}


def compiled_optimal_silent(n: int = 6):
    """Compile once per population size; the table is immutable across tests."""
    if n not in _OPTIMAL_SILENT_TABLES:
        _OPTIMAL_SILENT_TABLES[n] = ProtocolCompiler().compile(small_optimal_silent(n))
    return _OPTIMAL_SILENT_TABLES[n]


class TestFratricideTable:
    def test_two_states_deterministic(self):
        compiled = ProtocolCompiler().compile(FratricideLeaderElection(8))
        assert compiled.num_states == 2
        assert compiled.deterministic

    def test_only_leader_pairs_change(self):
        compiled = ProtocolCompiler().compile(FratricideLeaderElection(8))
        leader = compiled.encode_state(FratricideState(True))
        follower = compiled.encode_state(FratricideState(False))
        size = compiled.num_states
        row = leader * size + leader
        assert compiled.result_initiator[row] == leader
        assert compiled.result_responder[row] == follower
        for a, b in [(leader, follower), (follower, leader), (follower, follower)]:
            assert not compiled.changes[a * size + b]

    def test_unique_leader_predicate(self):
        protocol = FratricideLeaderElection(16)
        compiled = ProtocolCompiler().compile(protocol)
        simulation = BatchSimulation(protocol, rng=5, compiled=compiled)
        result = simulation.run_until_correct()
        assert result.stopped
        counts = simulation.state_counts
        leader = compiled.encode_state(FratricideState(True))
        assert counts[leader] == 1


class TestBoundedEpidemicTable:
    def test_state_space_is_levels_plus_sentinel(self):
        n = 12
        compiled = ProtocolCompiler().compile(BoundedEpidemicProtocol(n, k=2))
        assert compiled.num_states == n + 1

    def test_unreached_pair_with_max_level_is_null(self):
        """The clamp closes the space: level n-1 cannot mint level n."""
        n = 8
        compiled = ProtocolCompiler().compile(BoundedEpidemicProtocol(n, k=2))
        top = compiled.encode_state(LevelState(n - 1))
        unreached = compiled.encode_state(LevelState(UNREACHED))
        assert not compiled.changes[top * compiled.num_states + unreached]

    def test_propagation_entry(self):
        n = 8
        compiled = ProtocolCompiler().compile(BoundedEpidemicProtocol(n, k=2))
        source = compiled.encode_state(LevelState(0))
        unreached = compiled.encode_state(LevelState(UNREACHED))
        row = source * compiled.num_states + unreached
        assert compiled.result_initiator[row] == source
        assert compiled.result_responder[row] == compiled.encode_state(LevelState(1))


class TestSyntheticCoinTable:
    def test_state_space_matches_closed_form(self):
        protocol = SyntheticCoinProtocol(10, bits_needed=3)
        compiled = ProtocolCompiler().compile(protocol)
        assert compiled.num_states == protocol.theoretical_state_count() == 2 * 15

    def test_roles_always_toggle(self):
        protocol = SyntheticCoinProtocol(10, bits_needed=1)
        compiled = ProtocolCompiler().compile(protocol)
        size = compiled.num_states
        for i, state_i in enumerate(compiled.states):
            for j in range(size):
                row = i * size + j
                out = compiled.states[int(compiled.result_initiator[row])]
                assert out.coin_role == (FLIP if state_i.coin_role == ALG else ALG)

    def test_harvest_entry(self):
        protocol = SyntheticCoinProtocol(10, bits_needed=1)
        compiled = ProtocolCompiler().compile(protocol)
        alg = compiled.encode_state(SyntheticCoinState(ALG, "", 1))
        flip = compiled.encode_state(SyntheticCoinState(FLIP, "", 1))
        row = alg * compiled.num_states + flip
        harvested = compiled.states[int(compiled.result_initiator[row])]
        assert harvested.bits == "1" and harvested.coin_role == FLIP


class TestOptimalSilentTable:
    def test_enumeration_is_closed(self):
        compiled = compiled_optimal_silent(6)
        protocol = compiled.protocol
        # The declared space is already transition-closed: closure adds nothing.
        assert compiled.num_states == len(protocol.enumerate_states())

    def test_stable_configuration_is_silent_and_correct(self):
        compiled = compiled_optimal_silent(6)
        protocol = compiled.protocol
        indices = compiled.encode_configuration(protocol.stable_configuration())
        counts = compiled.state_counts(indices)
        predicate = protocol.compiled_predicates()["correct"]
        assert predicate(counts, compiled)
        assert compiled.counts_silent(counts)

    def test_duplicate_ranks_fail_the_predicate(self):
        compiled = compiled_optimal_silent(6)
        protocol = compiled.protocol
        indices = compiled.encode_configuration(protocol.duplicate_rank_configuration())
        counts = compiled.state_counts(indices)
        predicate = protocol.compiled_predicates()["correct"]
        assert not predicate(counts, compiled)
        assert not compiled.counts_silent(counts)

    def test_adversarial_run_stabilizes_to_valid_ranking(self):
        compiled = compiled_optimal_silent(6)
        protocol = small_optimal_silent(6)
        rng = np.random.default_rng(11)
        simulation = BatchSimulation(
            protocol,
            configuration=protocol.random_configuration(rng),
            rng=rng,
            compiled=compiled,
        )
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)


class TestComposedTables:
    def compile_pair(self, n=8):
        protocol = ComposedProtocol(FratricideLeaderElection(n), SilentNStateSSR(n))
        return protocol, ProtocolCompiler().compile(protocol)

    def test_product_state_space(self):
        protocol, compiled = self.compile_pair(8)
        assert compiled.num_states == 2 * 8
        assert [factor.num_states for factor in compiled.factor_tables] == [2, 8]

    def test_every_entry_is_the_product_of_factor_entries(self):
        """The composed table is exactly the component tables, index-combined."""
        protocol, compiled = self.compile_pair(6)
        up, down = compiled.factor_tables
        size, down_size = compiled.num_states, down.num_states
        for i in range(size):
            for j in range(size):
                row = i * size + j
                up_row = (i // down_size) * up.num_states + (j // down_size)
                down_row = (i % down_size) * down.num_states + (j % down_size)
                expected_initiator = (
                    int(up.result_initiator[up_row]) * down_size
                    + int(down.result_initiator[down_row])
                )
                expected_responder = (
                    int(up.result_responder[up_row]) * down_size
                    + int(down.result_responder[down_row])
                )
                assert int(compiled.result_initiator[row]) == expected_initiator
                assert int(compiled.result_responder[row]) == expected_responder
                assert bool(compiled.changes[row]) == bool(
                    up.changes[up_row] or down.changes[down_row]
                )

    def test_composed_of_composed_compiles(self):
        inner = ComposedProtocol(FratricideLeaderElection(6), SilentNStateSSR(6))
        outer = ComposedProtocol(inner, FratricideLeaderElection(6))
        compiled = ProtocolCompiler().compile(outer)
        assert compiled.num_states == (2 * 6) * 2
        inner_table = compiled.factor_tables[0]
        assert inner_table.factor_tables is not None
        assert [f.num_states for f in inner_table.factor_tables] == [2, 6]
        simulation = BatchSimulation(outer, rng=3, compiled=compiled)
        result = simulation.run_until_correct(max_interactions=200_000)
        assert result.stopped

    def test_interference_raises_a_clear_error(self):
        protocol = ComposedProtocol(
            FratricideLeaderElection(8),
            SilentNStateSSR(8),
            interference_probability=0.25,
        )
        with pytest.raises(CompilationError, match="interference_probability"):
            ProtocolCompiler().compile(protocol)
        # transition_branches must not alias "inexpressibly randomized" to the
        # contract's None ("deterministic"), or probing consumers would
        # silently compile a wrong table.
        rng = np.random.default_rng(0)
        initiator, responder = protocol.random_state(rng), protocol.random_state(rng)
        with pytest.raises(CompilationError, match="interference_probability"):
            protocol.transition_branches(initiator, responder)

    def test_non_compilable_component_raises_a_clear_error(self):
        from repro.core.sublinear import SublinearTimeSSR

        protocol = ComposedProtocol(
            FratricideLeaderElection(8), SublinearTimeSSR(8, depth=1)
        )
        with pytest.raises(CompilationError, match="Sublinear-Time-SSR is not compilable"):
            ProtocolCompiler().compile(protocol)

    def test_product_exceeding_max_states_rejected(self):
        protocol = ComposedProtocol(SilentNStateSSR(16), SilentNStateSSR(16))
        with pytest.raises(CompilationError, match="max_states"):
            ProtocolCompiler(max_states=100).compile(protocol)

    def test_randomized_layer_probabilities_multiply(self):
        """A randomized layer's branch channel survives composition intact."""
        from repro.engine.protocol import PopulationProtocol
        from repro.engine.state import AgentState

        class Bit(AgentState):
            def __init__(self, bit):
                self.bit = int(bit)

            def signature(self):
                return self.bit

        class LazyEpidemic(PopulationProtocol):
            name = "lazy-epidemic"

            def __init__(self, n, p=0.25):
                super().__init__(n)
                self.p = p

            def initial_state(self, agent_id, rng):
                return Bit(1 if agent_id == 0 else 0)

            def transition(self, initiator, responder, rng):
                if initiator.bit == 1 and responder.bit == 0 and rng.random() < self.p:
                    responder.bit = 1

            def is_correct(self, configuration):
                return all(state.bit == 1 for state in configuration)

            def enumerate_states(self):
                return [Bit(0), Bit(1)]

            def transition_branches(self, initiator, responder):
                if initiator.bit == 1 and responder.bit == 0:
                    return [(self.p, Bit(1), Bit(1)), (1.0 - self.p, Bit(1), Bit(0))]
                return [(1.0, initiator, responder)]

        protocol = ComposedProtocol(LazyEpidemic(8, p=0.25), SilentNStateSSR(8))
        compiled = ProtocolCompiler().compile(protocol)
        assert not compiled.deterministic
        up, down = compiled.factor_tables
        assert up.max_branches == 2 and down.deterministic
        # Entry (infected, rank 0) x (susceptible, rank 0): the upstream entry
        # branches with (p, 1 - p); the composed cumulative channel must too.
        down_size = down.num_states
        infected = up.encode_state(Bit(1)) * down_size + 0
        susceptible = up.encode_state(Bit(0)) * down_size + 0
        row = infected * compiled.num_states + susceptible
        probabilities = np.diff(compiled.branch_cumprob[row], prepend=0.0)
        positive = probabilities[probabilities > 0]
        np.testing.assert_allclose(sorted(positive), [0.25, 0.75])

    def test_compiled_table_is_shareable_across_trials(self):
        protocol, compiled = self.compile_pair(8)
        fresh = ComposedProtocol(FratricideLeaderElection(8), SilentNStateSSR(8))
        simulation = BatchSimulation(fresh, rng=9, compiled=compiled)
        assert simulation.run_until_correct().stopped
