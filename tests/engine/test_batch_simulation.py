"""Unit tests for the compiled batch engine (repro.engine.batch_simulation)."""

import numpy as np
import pytest

from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import CompilationError, ProtocolCompiler
from repro.engine.simulation import DEFAULT_CAP_CUBIC_FACTOR
from repro.processes.epidemic import EpidemicState, TwoWayEpidemicProtocol
from repro.processes.roll_call import RollCallProtocol

from test_compiled import LazyEpidemicProtocol


def epidemic_simulation(n: int, rng=0, **kwargs) -> BatchSimulation:
    protocol = TwoWayEpidemicProtocol(n)
    compiled = ProtocolCompiler().compile(protocol)
    indices = np.zeros(n, dtype=np.int32)
    indices[0] = compiled.encode_state(EpidemicState(True))
    return BatchSimulation(protocol, indices=indices, rng=rng, compiled=compiled, **kwargs)


class TestConstruction:
    def test_non_compilable_protocol_raises(self):
        from repro.core.initialized_ranking import InitializedLeaderDrivenRanking

        with pytest.raises(CompilationError):
            BatchSimulation(InitializedLeaderDrivenRanking(8))

    def test_configuration_and_indices_are_exclusive(self):
        protocol = TwoWayEpidemicProtocol(4)
        with pytest.raises(ValueError, match="not both"):
            BatchSimulation(
                protocol,
                configuration=protocol.initial_configuration(),
                indices=np.zeros(4, dtype=np.int32),
            )

    def test_indices_validated(self):
        protocol = TwoWayEpidemicProtocol(4)
        with pytest.raises(ValueError, match="shape"):
            BatchSimulation(protocol, indices=np.zeros(5, dtype=np.int32))
        with pytest.raises(ValueError, match="range"):
            BatchSimulation(protocol, indices=np.full(4, 7, dtype=np.int32))

    def test_foreign_compiled_table_rejected(self):
        compiled = ProtocolCompiler().compile(TwoWayEpidemicProtocol(4))
        with pytest.raises(ValueError, match="compiled table"):
            BatchSimulation(TwoWayEpidemicProtocol(5), compiled=compiled)

    def test_parameter_mismatch_rejected_on_table_reuse(self):
        compiled = ProtocolCompiler().compile(ResetWaveProtocol(32, rmax=4, dmax=4))
        with pytest.raises(ValueError, match="state space differs"):
            BatchSimulation(ResetWaveProtocol(32, rmax=3, dmax=4), compiled=compiled)

    def test_default_start_is_initial_configuration(self):
        protocol = TwoWayEpidemicProtocol(6, initially_infected=2)
        simulation = BatchSimulation(protocol, rng=0)
        assert protocol.infected_count(simulation.configuration) == 2


class TestStepping:
    def test_step_increments_interaction_count(self):
        simulation = epidemic_simulation(8)
        simulation.step()
        assert simulation.interactions == 1

    def test_run_executes_exact_count(self):
        simulation = epidemic_simulation(8)
        simulation.run(123)
        assert simulation.interactions == 123
        simulation.run(77)
        assert simulation.interactions == 200

    def test_run_negative_rejected(self):
        with pytest.raises(ValueError):
            epidemic_simulation(8).run(-1)

    def test_parallel_time(self):
        simulation = epidemic_simulation(10)
        simulation.run(55)
        assert simulation.parallel_time == 5.5

    def test_population_is_conserved(self):
        simulation = epidemic_simulation(64, rng=3)
        for _ in range(10):
            simulation.run(256)
            assert simulation.state_counts.sum() == 64


class TestBatchingInvariants:
    def test_epidemic_infections_are_monotone(self):
        """Batched application must never lose an infection (exactness probe)."""
        simulation = epidemic_simulation(256, rng=5)
        infected = simulation.compiled.encode_state(EpidemicState(True))
        last = int(simulation.state_counts[infected])
        for _ in range(40):
            simulation.run(128)
            now = int(simulation.state_counts[infected])
            assert now >= last
            last = now

    def test_roll_call_rosters_only_grow(self):
        protocol = RollCallProtocol(5)
        simulation = BatchSimulation(protocol, rng=7)
        last = 1
        for _ in range(20):
            simulation.run(8)
            now = protocol.minimum_roster_size(simulation.configuration)
            assert now >= last
            last = now

    def test_counts_match_decoded_configuration(self):
        simulation = epidemic_simulation(128, rng=9)
        simulation.run(500)
        decoded = simulation.configuration
        protocol = simulation.protocol
        infected = simulation.compiled.encode_state(EpidemicState(True))
        assert protocol.infected_count(decoded) == int(simulation.state_counts[infected])


class TestRunUntil:
    def test_run_until_correct_sets_metadata(self):
        simulation = epidemic_simulation(64, rng=1)
        result = simulation.run_until_correct()
        assert result.stopped
        assert result.reason == "correct"
        assert result.engine == "compiled"
        assert simulation.protocol.is_correct(simulation.configuration)

    def test_cap_is_respected(self):
        simulation = epidemic_simulation(64, rng=1)
        result = simulation.run_until(
            predicate=lambda configuration: False, max_interactions=100
        )
        assert not result.stopped
        assert result.reason == "cap"
        assert result.interactions == 100

    def test_default_cap_matches_loop_engine(self):
        n = 3
        protocol = TwoWayEpidemicProtocol(n)
        simulation = BatchSimulation(protocol, rng=0)
        result = simulation.run_until(
            predicate=lambda configuration: False, check_interval=10_000
        )
        assert result.interactions == int(DEFAULT_CAP_CUBIC_FACTOR * n**3)

    def test_exactly_one_predicate_required(self):
        simulation = epidemic_simulation(8)
        with pytest.raises(ValueError, match="exactly one"):
            simulation.run_until()
        with pytest.raises(ValueError, match="exactly one"):
            simulation.run_until(
                predicate=lambda c: True, counts_predicate=lambda counts: True
            )

    def test_run_until_silent_uses_table(self):
        protocol = SilentNStateSSR(12)
        simulation = BatchSimulation(
            protocol, configuration=protocol.worst_case_configuration(), rng=2
        )
        result = simulation.run_until_silent()
        assert result.stopped
        assert protocol.is_silent(simulation.configuration)

    def test_slow_path_predicate_decodes(self):
        protocol = RollCallProtocol(4)
        simulation = BatchSimulation(protocol, rng=3)
        result = simulation.run_until(
            predicate=lambda configuration: protocol.minimum_roster_size(configuration)
            >= 2,
            check_interval=4,
        )
        assert result.stopped


class TestRandomizedProtocol:
    def test_lazy_epidemic_converges(self):
        protocol = LazyEpidemicProtocol(48, p=0.3)
        simulation = BatchSimulation(protocol, rng=11)
        result = simulation.run_until_correct(check_interval=48)
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_lazy_epidemic_slower_than_eager(self):
        """The branch-probability channel must actually thin the infections."""
        lazy_times = []
        eager_times = []
        for seed in range(5):
            lazy = BatchSimulation(LazyEpidemicProtocol(64, p=0.1), rng=seed)
            lazy_times.append(lazy.run_until_correct().parallel_time)
            eager = BatchSimulation(LazyEpidemicProtocol(64, p=1.0), rng=seed)
            eager_times.append(eager.run_until_correct().parallel_time)
        assert np.mean(lazy_times) > 2.0 * np.mean(eager_times)


class TestResetWave:
    def test_wave_from_all_triggered_stabilizes(self):
        protocol = ResetWaveProtocol(200, rmax=5, dmax=5)
        simulation = BatchSimulation(
            protocol, configuration=protocol.triggered_configuration(), rng=13
        )
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_wave_from_adversarial_start_stabilizes(self):
        protocol = ResetWaveProtocol(100, rmax=4, dmax=4)
        simulation = BatchSimulation(
            protocol,
            configuration=protocol.random_configuration(np.random.default_rng(3)),
            rng=17,
        )
        result = simulation.run_until_stabilized()
        assert result.stopped
