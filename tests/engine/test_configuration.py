"""Unit tests for Configuration."""

import pytest

from repro.core.silent_n_state import SilentNStateState
from repro.engine.configuration import Configuration


def make_configuration(ranks):
    return Configuration([SilentNStateState(rank) for rank in ranks])


class TestBasics:
    def test_len_and_population_size(self):
        configuration = make_configuration([0, 1, 2])
        assert len(configuration) == 3
        assert configuration.population_size == 3

    def test_empty_configuration_rejected(self):
        with pytest.raises(ValueError):
            Configuration([])

    def test_indexing_and_assignment(self):
        configuration = make_configuration([0, 1])
        assert configuration[1].rank == 1
        configuration[1] = SilentNStateState(5)
        assert configuration[1].rank == 5

    def test_iteration_order(self):
        configuration = make_configuration([3, 1, 2])
        assert [state.rank for state in configuration] == [3, 1, 2]

    def test_states_property_is_shared(self):
        configuration = make_configuration([0, 1])
        configuration.states[0].rank = 9
        assert configuration[0].rank == 9


class TestMultisetHelpers:
    def test_signature_counts(self):
        configuration = make_configuration([0, 0, 1])
        counts = configuration.signature_counts()
        assert counts[0] == 2 and counts[1] == 1

    def test_signature_counts_custom_key(self):
        configuration = make_configuration([0, 1, 2, 3])
        counts = configuration.signature_counts(lambda state: state.rank % 2)
        assert counts[0] == 2 and counts[1] == 2

    def test_distinct_state_count(self):
        assert make_configuration([0, 0, 1, 2]).distinct_state_count() == 3

    def test_count_where_and_agents_where(self):
        configuration = make_configuration([0, 5, 5, 2])
        assert configuration.count_where(lambda s: s.rank == 5) == 2
        assert configuration.agents_where(lambda s: s.rank == 5) == [1, 2]

    def test_field_values_missing_field_yields_none(self):
        configuration = make_configuration([0, 1])
        assert configuration.field_values("rank") == [0, 1]
        assert configuration.field_values("nonexistent") == [None, None]


class TestCloning:
    def test_clone_is_independent(self):
        configuration = make_configuration([0, 1])
        copy = configuration.clone()
        copy[0].rank = 7
        assert configuration[0].rank == 0

    def test_from_states(self):
        configuration = Configuration.from_states(SilentNStateState(i) for i in range(4))
        assert len(configuration) == 4

    def test_repr_mentions_population_size(self):
        assert "n=3" in repr(make_configuration([0, 1, 2]))
