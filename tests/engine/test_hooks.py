"""Unit tests for instrumentation hooks."""

import pytest

from repro.core.fratricide import FratricideLeaderElection
from repro.engine.hooks import CountingHook, InteractionHook, TraceRecorder
from repro.engine.simulation import Simulation


class TestCountingHook:
    def test_counts_matching_interactions(self):
        protocol = FratricideLeaderElection(8)
        # Hooks observe the configuration *after* the transition, so count
        # interactions in which the initiator is (still) a leader.
        hook = CountingHook(lambda a, b: a.leader or b.leader)
        simulation = Simulation(protocol, rng=0, hooks=[hook])
        simulation.run(200)
        assert hook.count > 0

    def test_zero_when_predicate_never_holds(self):
        protocol = FratricideLeaderElection(8)
        hook = CountingHook(lambda a, b: False)
        simulation = Simulation(protocol, rng=0, hooks=[hook])
        simulation.run(50)
        assert hook.count == 0


class TestTraceRecorder:
    def test_records_at_interval(self):
        protocol = FratricideLeaderElection(8)
        recorder = TraceRecorder(lambda config: protocol.leader_count(config), every=10)
        simulation = Simulation(protocol, rng=0, hooks=[recorder])
        simulation.run(100)
        indices, values = recorder.as_series()
        assert indices == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        assert all(1 <= value <= 8 for value in values)

    def test_leader_count_is_monotone_nonincreasing(self):
        protocol = FratricideLeaderElection(16)
        recorder = TraceRecorder(lambda config: protocol.leader_count(config), every=5)
        simulation = Simulation(protocol, rng=1, hooks=[recorder])
        simulation.run(2000)
        _, values = recorder.as_series()
        assert all(later <= earlier for earlier, later in zip(values, values[1:]))

    def test_run_end_appends_final_sample(self):
        protocol = FratricideLeaderElection(8)
        recorder = TraceRecorder(lambda config: protocol.leader_count(config), every=1000)
        simulation = Simulation(protocol, rng=0, hooks=[recorder])
        simulation.run_until_correct(max_interactions=5000)
        indices, _ = recorder.as_series()
        assert indices[-1] == simulation.interactions

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TraceRecorder(lambda config: 0.0, every=0)

    def test_empty_series(self):
        recorder = TraceRecorder(lambda config: 0.0)
        assert recorder.as_series() == ([], [])


class TestBaseHook:
    def test_base_hook_is_a_no_op(self):
        protocol = FratricideLeaderElection(4)
        simulation = Simulation(protocol, rng=0, hooks=[InteractionHook()])
        simulation.run(10)
        assert simulation.interactions == 10
