"""Unit tests for result records."""

import math

import pytest

from repro.engine.results import SimulationResult, TrialStatistics


class TestSimulationResult:
    def test_parallel_time(self):
        result = SimulationResult(n=10, interactions=250, stopped=True, reason="stabilized")
        assert result.parallel_time == 25.0

    def test_extra_dict_defaults_empty(self):
        result = SimulationResult(n=4, interactions=0, stopped=False, reason="cap")
        assert result.extra == {}


class TestTrialStatistics:
    def test_mean_std(self):
        stats = TrialStatistics.from_values("x", 8, [1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.std == pytest.approx(1.2909944, rel=1e-6)

    def test_single_value_std_is_zero(self):
        stats = TrialStatistics.from_values("x", 8, [3.0])
        assert stats.std == 0.0 and stats.stderr == 0.0

    def test_min_max(self):
        stats = TrialStatistics.from_values("x", 8, [5.0, 1.0, 9.0])
        assert stats.minimum == 1.0 and stats.maximum == 9.0

    def test_quantile_endpoints(self):
        stats = TrialStatistics.from_values("x", 8, [1.0, 2.0, 3.0])
        assert stats.quantile(0.0) == 1.0
        assert stats.quantile(1.0) == 3.0
        assert stats.quantile(0.5) == 2.0

    def test_quantile_interpolates(self):
        stats = TrialStatistics.from_values("x", 8, [0.0, 10.0])
        assert stats.quantile(0.25) == pytest.approx(2.5)

    def test_quantile_out_of_range(self):
        stats = TrialStatistics.from_values("x", 8, [1.0])
        with pytest.raises(ValueError):
            stats.quantile(1.5)

    def test_empty_values_give_nan(self):
        stats = TrialStatistics(label="x", n=8, trials=0, values=[])
        assert math.isnan(stats.mean)
        assert math.isnan(stats.quantile(0.5))
        assert math.isnan(stats.fraction_exceeding(1.0))

    def test_fraction_exceeding(self):
        stats = TrialStatistics.from_values("x", 8, [1.0, 2.0, 3.0, 4.0])
        assert stats.fraction_exceeding(2.5) == 0.5

    def test_confidence_interval_contains_mean(self):
        stats = TrialStatistics.from_values("x", 8, [1.0, 2.0, 3.0, 4.0, 5.0])
        low, high = stats.confidence_interval()
        assert low < stats.mean < high

    def test_repr_contains_label(self):
        assert "label='x'" in repr(TrialStatistics.from_values("x", 8, [1.0]))
