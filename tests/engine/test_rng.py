"""Unit tests for RNG helpers."""

import numpy as np
import pytest

from repro.engine.rng import geometric_interactions, make_rng, random_bits, spawn_rngs


class TestMakeRng:
    def test_from_int_is_reproducible(self):
        assert make_rng(7).integers(0, 100, 10).tolist() == make_rng(7).integers(0, 100, 10).tolist()

    def test_passthrough_of_generator(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_streams_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 1000, 20).tolist() != b.integers(0, 1000, 20).tolist()

    def test_spawn_is_reproducible(self):
        first = [r.integers(0, 1000) for r in spawn_rngs(3, 4)]
        second = [r.integers(0, 1000) for r in spawn_rngs(3, 4)]
        assert first == second

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 3)
        assert len(children) == 3


class TestRandomBits:
    def test_length_and_alphabet(self):
        bits = random_bits(make_rng(0), 64)
        assert len(bits) == 64 and set(bits) <= {"0", "1"}

    def test_zero_length(self):
        assert random_bits(make_rng(0), 0) == ""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_bits(make_rng(0), -1)

    def test_roughly_unbiased(self):
        bits = random_bits(make_rng(1), 4000)
        assert 0.45 < bits.count("1") / len(bits) < 0.55


class TestGeometric:
    def test_support_is_at_least_one(self):
        rng = make_rng(0)
        assert all(geometric_interactions(rng, 0.5) >= 1 for _ in range(100))

    def test_probability_one_gives_one(self):
        assert geometric_interactions(make_rng(0), 1.0) == 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            geometric_interactions(make_rng(0), 0.0)
        with pytest.raises(ValueError):
            geometric_interactions(make_rng(0), 1.5)

    def test_mean_matches_inverse_probability(self):
        rng = make_rng(2)
        samples = [geometric_interactions(rng, 0.2) for _ in range(4000)]
        assert abs(sum(samples) / len(samples) - 5.0) < 0.4
