"""Trial-axis batched execution: the bit-identity and routing contract.

The compiled batched engine promises that trial ``i``'s random stream is a
function of ``(seed, i)`` alone -- never of how trials are grouped into
batches or distributed over workers.  These tests pin that down exactly
(``==`` on result lists, not statistics), plus the contract plumbing around
it: ``RunConfig.trial_batch`` validation and serialization, the harness's
fallback to the per-trial path for unbatchable configurations, the compiled
engine's count-vector seeding, and the batched engines' own constructor and
one-shot-run validation.  Statistical equivalence against the sequential
engines lives in ``test_engine_equivalence.py``.
"""

import numpy as np
import pytest

from repro.adversary.plan import FaultPlan
from repro.adversary.schedulers import SchedulerSpec
from repro.engine.rng import spawn_seed_sequences
from repro.engine.run_config import RunConfig, make_simulation
from repro.engine.trial_batch import (
    CountsTrialBatchSimulation,
    TrialBatchSimulation,
)
from repro.experiments.harness import run_trials
from repro.processes.epidemic import EpidemicState, TwoWayEpidemicProtocol

N = 256
TRIALS = 12
SEED = 99


def _infected_counts(protocol, compiled, rng):
    counts = np.zeros(compiled.num_states, dtype=np.int64)
    counts[compiled.encode_state(EpidemicState(True))] = 1
    counts[compiled.encode_state(EpidemicState(False))] = protocol.n - 1
    return counts


def _epidemic_sweep(engine, trial_batch, jobs=1, **overrides):
    config = RunConfig(
        seed=SEED,
        engine=engine,
        stop="correct",
        trial_batch=trial_batch,
        jobs=jobs,
        **overrides,
    )
    return run_trials(
        lambda: TwoWayEpidemicProtocol(N),
        trials=TRIALS,
        run=config,
        counts_factory=_infected_counts,
    )


class TestCompiledBitIdentity:
    def test_results_independent_of_batch_size(self):
        whole = _epidemic_sweep("compiled", TRIALS)
        for trial_batch in (2, 5):
            assert _epidemic_sweep("compiled", trial_batch) == whole

    def test_results_independent_of_worker_count(self):
        assert _epidemic_sweep("compiled", 4, jobs=2) == _epidemic_sweep(
            "compiled", 4, jobs=1
        )

    def test_each_trial_matches_running_it_alone(self):
        """Trial i in a batch == trial i as a batch of one (same seed child)."""
        batched = _epidemic_sweep("compiled", TRIALS)
        protocol = TwoWayEpidemicProtocol(N)
        seeds = spawn_seed_sequences(SEED, TRIALS)
        config = RunConfig(seed=SEED, engine="compiled", stop="correct")
        for trial in (0, TRIALS // 2, TRIALS - 1):
            rng = np.random.default_rng(seeds[trial])
            row = np.repeat(
                np.arange(2, dtype=np.int32),
                _infected_counts(protocol, _compiled(protocol), rng),
            )
            alone = TrialBatchSimulation(protocol, [rng], indices=row[None, :])
            assert alone.run(config) == [batched[trial]]


def _compiled(protocol):
    from repro.engine.compiled import ProtocolCompiler

    return ProtocolCompiler().compile(protocol)


class TestCountsBatchedDeterminism:
    def test_deterministic_per_seed_and_batch_size(self):
        assert _epidemic_sweep("counts", TRIALS) == _epidemic_sweep("counts", TRIALS)

    def test_worker_layout_does_not_change_results(self):
        assert _epidemic_sweep("counts", 4, jobs=2) == _epidemic_sweep(
            "counts", 4, jobs=1
        )


class TestRunConfigContract:
    def test_trial_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="trial_batch must be positive"):
            RunConfig(trial_batch=0)

    def test_loop_engine_rejects_batching(self):
        with pytest.raises(ValueError, match="requires a table engine"):
            RunConfig(engine="loop", trial_batch=8)

    def test_round_trips_through_dict(self):
        config = RunConfig(seed=7, engine="compiled", stop="correct", trial_batch=16)
        restored = RunConfig.from_dict(config.to_dict())
        assert restored.trial_batch == 16
        assert restored == config


class TestHarnessRouting:
    def test_non_uniform_scheduler_falls_back_to_per_trial(self):
        """Batched request + biased scheduler == the per-trial path, exactly.

        Configuration seeding here: an identity-sensitive scheduler rejects
        the count-vector fast path (agents are no longer exchangeable).
        """
        spec = SchedulerSpec(kind="biased", hot_fraction=0.05, hot_weight=4.0)

        def sweep(trial_batch):
            config = RunConfig(
                seed=SEED,
                engine="compiled",
                stop="correct",
                trial_batch=trial_batch,
                scheduler=spec,
            )
            return run_trials(
                lambda: TwoWayEpidemicProtocol(N), trials=TRIALS, run=config
            )

        assert sweep(TRIALS) == sweep(1)

    def test_uniform_scheduler_spec_stays_batched(self):
        spec = SchedulerSpec(kind="uniform")
        assert _epidemic_sweep("compiled", TRIALS, scheduler=spec) == _epidemic_sweep(
            "compiled", TRIALS
        )


class TestCompiledCountsSeeding:
    def test_counts_seed_expands_to_sorted_indices(self):
        protocol = TwoWayEpidemicProtocol(8)
        config = RunConfig(seed=1, engine="compiled")
        simulation = make_simulation(protocol, config, counts=np.array([5, 3]))
        assert np.bincount(simulation.indices, minlength=2).tolist() == [5, 3]

    def test_counts_seed_rejects_identity_sensitive_scheduler(self):
        protocol = TwoWayEpidemicProtocol(8)
        config = RunConfig(
            seed=1,
            engine="compiled",
            scheduler=SchedulerSpec(kind="biased", hot_fraction=0.25, hot_weight=2.0),
        )
        with pytest.raises(ValueError, match="exchangeable"):
            make_simulation(protocol, config, counts=np.array([5, 3]))

    def test_counts_and_configuration_are_exclusive(self):
        protocol = TwoWayEpidemicProtocol(4)
        configuration = protocol.initial_configuration(np.random.default_rng(0))
        with pytest.raises(ValueError, match="at most one"):
            make_simulation(
                protocol,
                RunConfig(engine="compiled"),
                configuration=configuration,
                counts=np.array([3, 1]),
            )


class TestEngineValidation:
    def setup_method(self):
        self.protocol = TwoWayEpidemicProtocol(8)
        self.rngs = [np.random.default_rng(i) for i in range(3)]
        self.rows = np.tile(
            np.repeat(np.arange(2, dtype=np.int32), [1, 7]), (3, 1)
        )

    def test_requires_exactly_one_seeding_argument(self):
        with pytest.raises(ValueError, match="exactly one"):
            TrialBatchSimulation(self.protocol, self.rngs)
        configurations = [
            self.protocol.initial_configuration(np.random.default_rng(i))
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="exactly one"):
            TrialBatchSimulation(
                self.protocol,
                self.rngs,
                indices=self.rows,
                configurations=configurations,
            )

    def test_rejects_wrong_indices_shape(self):
        with pytest.raises(ValueError, match="shape"):
            TrialBatchSimulation(self.protocol, self.rngs, indices=self.rows[:, :4])

    def test_rejects_out_of_range_states(self):
        bad = self.rows.copy()
        bad[0, 0] = 99
        with pytest.raises(ValueError, match="out of range"):
            TrialBatchSimulation(self.protocol, self.rngs, indices=bad)

    def test_run_is_one_shot(self):
        simulation = TrialBatchSimulation(self.protocol, self.rngs, indices=self.rows)
        config = RunConfig(engine="compiled", stop="correct")
        simulation.run(config)
        with pytest.raises(RuntimeError, match="one-shot"):
            simulation.run(config)

    def test_rejects_fault_events_and_non_uniform_schedulers(self):
        config = RunConfig(
            engine="compiled", stop="correct", faults=FaultPlan.bursts([(0, 2)])
        )
        simulation = TrialBatchSimulation(self.protocol, self.rngs, indices=self.rows)
        with pytest.raises(NotImplementedError, match="fault"):
            simulation.run(config)
        biased = RunConfig(
            engine="compiled",
            stop="correct",
            scheduler=SchedulerSpec(kind="biased", hot_fraction=0.25, hot_weight=2.0),
        )
        simulation = TrialBatchSimulation(self.protocol, self.rngs, indices=self.rows)
        with pytest.raises(NotImplementedError, match="scheduler"):
            simulation.run(biased)

    def test_counts_matrix_rows_must_sum_to_n(self):
        bad = np.array([[1, 6], [1, 7], [1, 7]])
        with pytest.raises(ValueError, match="sum to the population size"):
            CountsTrialBatchSimulation(self.protocol, bad)

    def test_counts_matrix_must_be_non_negative(self):
        bad = np.array([[-1, 9], [1, 7], [1, 7]])
        with pytest.raises(ValueError, match="non-negative"):
            CountsTrialBatchSimulation(self.protocol, bad)
