"""Unit tests for the AgentState base class."""

import pytest

from repro.engine.state import AgentState, _freeze


class Example(AgentState):
    def __init__(self, rank=0, tags=None, _cache=None):
        self.rank = rank
        self.tags = tags if tags is not None else []
        self._cache = _cache


class TestFields:
    def test_fields_excludes_private_attributes(self):
        state = Example(rank=3, _cache="hidden")
        assert state.fields() == {"rank": 3, "tags": []}

    def test_fields_reflect_mutation(self):
        state = Example(rank=1)
        state.rank = 7
        assert state.fields()["rank"] == 7


class TestSignatureAndEquality:
    def test_equal_states_have_equal_signatures(self):
        assert Example(rank=2, tags=[1, 2]).signature() == Example(rank=2, tags=[1, 2]).signature()

    def test_different_states_have_different_signatures(self):
        assert Example(rank=2).signature() != Example(rank=3).signature()

    def test_private_fields_do_not_affect_signature(self):
        assert Example(rank=2, _cache="a").signature() == Example(rank=2, _cache="b").signature()

    def test_equality_and_hash(self):
        a, b = Example(rank=5), Example(rank=5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Example(rank=6)

    def test_equality_against_non_state(self):
        assert Example(rank=1) != 42

    def test_different_types_are_not_equal(self):
        class Other(AgentState):
            def __init__(self):
                self.rank = 1

        assert Example(rank=1) != Other()

    def test_signature_is_hashable_with_nested_containers(self):
        state = Example(rank=1, tags=[{"a": 1}, {2, 3}, (4, [5])])
        hash(state.signature())


class TestClone:
    def test_clone_is_deep(self):
        state = Example(rank=1, tags=[1, 2])
        copy = state.clone()
        copy.tags.append(3)
        assert state.tags == [1, 2]

    def test_clone_preserves_equality(self):
        state = Example(rank=4, tags=["x"])
        assert state.clone() == state


class TestFreeze:
    def test_freeze_dict_is_order_insensitive(self):
        assert _freeze({"a": 1, "b": 2}) == _freeze({"b": 2, "a": 1})

    def test_freeze_handles_nested_state(self):
        inner = Example(rank=9)
        assert _freeze([inner]) == (inner.signature(),)


class TestRepr:
    def test_repr_contains_fields(self):
        text = repr(Example(rank=3))
        assert "rank=3" in text and "Example" in text
