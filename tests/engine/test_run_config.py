"""Tests for the typed run contract (RunConfig / make_simulation / run(config))."""

import pytest

from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.batch_simulation import BatchSimulation
from repro.engine.run_config import (
    COUNTS_EPOCH_MESSAGE,
    ENGINES,
    STOPS,
    RunConfig,
    make_simulation,
)
from repro.engine.simulation import Simulation


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.engine == "loop"
        assert config.stop == "stabilized"
        assert config.seed is None
        assert config.max_interactions is None
        assert config.check_interval is None
        assert config.jobs == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engine": "turbo"},
            {"stop": "bogus"},
            {"jobs": 0},
            {"max_interactions": -1},
            {"check_interval": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)

    def test_frozen(self):
        config = RunConfig()
        with pytest.raises(AttributeError):
            config.engine = "compiled"

    def test_replace_revalidates(self):
        config = RunConfig(seed=3)
        replaced = config.replace(engine="compiled", jobs=4)
        assert replaced.engine == "compiled" and replaced.jobs == 4
        assert replaced.seed == 3
        assert config.engine == "loop"  # original untouched
        with pytest.raises(ValueError):
            config.replace(engine="turbo")

    def test_dict_round_trip(self):
        config = RunConfig(
            engine="compiled", stop="silent", seed=7, max_interactions=100,
            check_interval=5, jobs=2,
        )
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_to_dict_hides_non_serializable_seeds(self):
        import numpy as np

        config = RunConfig(seed=np.random.default_rng(0))
        assert config.to_dict()["seed"] is None

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            RunConfig.from_dict({"engine": "loop", "warp": 9})

    def test_catalogued_constants(self):
        assert ENGINES == ("loop", "compiled", "counts")
        assert STOPS == ("stabilized", "correct", "silent")


class TestFailFastValidation:
    """Unsupported combinations are rejected at construction time, before any
    seeding or simulation work -- never silently mid-run."""

    def test_counts_engine_rejects_epoch_scheduler_at_validation(self):
        from repro.adversary.schedulers import SchedulerSpec

        with pytest.raises(ValueError) as excinfo:
            RunConfig(
                engine="counts",
                scheduler=SchedulerSpec(kind="epoch", blocks=4, split_time=1.0),
            )
        assert str(excinfo.value) == COUNTS_EPOCH_MESSAGE

    def test_counts_simulation_raises_the_same_message_directly(self):
        """Bypassing RunConfig (direct engine construction) hits the identical
        message, so the two rejection paths can never drift apart."""
        from repro.adversary.schedulers import SchedulerSpec
        from repro.engine.counts_simulation import CountsSimulation

        protocol = SilentNStateSSR(8)
        simulation = CountsSimulation(protocol, rng=0)
        config = RunConfig(
            engine="compiled",
            scheduler=SchedulerSpec(kind="epoch", blocks=4, split_time=1.0),
        )
        with pytest.raises(NotImplementedError) as excinfo:
            simulation.run(config)
        assert str(excinfo.value) == COUNTS_EPOCH_MESSAGE

    def test_byzantine_requires_a_spec_instance(self):
        with pytest.raises(TypeError, match="ByzantineSpec"):
            RunConfig(byzantine={"fraction": 0.2})

    def test_byzantine_excludes_fault_campaigns(self):
        from repro.adversary.byzantine import ByzantineSpec
        from repro.adversary.plan import FaultEvent, FaultPlan

        with pytest.raises(ValueError, match="persistent"):
            RunConfig(
                byzantine=ByzantineSpec(fraction=0.2),
                faults=FaultPlan((FaultEvent(at=10, count=2),)),
            )

    def test_byzantine_requires_the_uniform_scheduler(self):
        from repro.adversary.byzantine import ByzantineSpec
        from repro.adversary.schedulers import SchedulerSpec

        with pytest.raises(ValueError, match="uniform"):
            RunConfig(
                byzantine=ByzantineSpec(fraction=0.2),
                scheduler=SchedulerSpec(kind="biased", hot_fraction=0.1, hot_weight=3.0),
            )
        # The explicit uniform spec is fine.
        config = RunConfig(
            byzantine=ByzantineSpec(fraction=0.2),
            scheduler=SchedulerSpec(kind="uniform"),
        )
        assert config.byzantine.fraction == 0.2

    def test_byzantine_excludes_interaction_hooks(self):
        from repro.adversary.byzantine import ByzantineSpec
        from repro.engine.hooks import CountingHook

        with pytest.raises(ValueError, match="overlay"):
            make_simulation(
                SilentNStateSSR(8),
                RunConfig(byzantine=ByzantineSpec(fraction=0.2)),
                hooks=[CountingHook(lambda a, b: True)],
            )

    def test_trial_batch_rejects_byzantine_configs(self):
        from repro.adversary.byzantine import ByzantineSpec
        from repro.engine.compiled import ProtocolCompiler
        from repro.engine.rng import spawn_rngs
        from repro.engine.trial_batch import TrialBatchSimulation

        protocol = SilentNStateSSR(8)
        compiled = ProtocolCompiler().compile(protocol)
        rngs = spawn_rngs(0, 2)
        configurations = [
            SilentNStateSSR(8).initial_configuration(rng) for rng in rngs
        ]
        simulation = TrialBatchSimulation(
            protocol, rngs, configurations=configurations, compiled=compiled
        )
        config = RunConfig(
            engine="compiled",
            byzantine=ByzantineSpec(fraction=0.25),
            trial_batch=2,
        )
        with pytest.raises(NotImplementedError, match="one at a time"):
            simulation.run(config)

    def test_byzantine_dict_round_trip(self):
        from repro.adversary.byzantine import ByzantineSpec

        config = RunConfig(
            engine="compiled",
            seed=7,
            byzantine=ByzantineSpec(fraction=0.35, strategy="random_reply"),
        )
        restored = RunConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.byzantine.strategy == "random_reply"


class TestMakeSimulation:
    def test_loop_engine(self):
        simulation = make_simulation(SilentNStateSSR(8), RunConfig(seed=0))
        assert isinstance(simulation, Simulation)

    def test_compiled_engine(self):
        simulation = make_simulation(
            SilentNStateSSR(8), RunConfig(seed=0, engine="compiled")
        )
        assert isinstance(simulation, BatchSimulation)

    def test_default_config(self):
        assert isinstance(make_simulation(SilentNStateSSR(8)), Simulation)

    def test_hooks_rejected_on_compiled_engine(self):
        from repro.engine.hooks import CountingHook

        with pytest.raises(ValueError, match="hooks"):
            make_simulation(
                SilentNStateSSR(8),
                RunConfig(engine="compiled"),
                hooks=[CountingHook(lambda a, b: True)],
            )

    def test_explicit_rng_overrides_config_seed(self):
        import numpy as np

        protocol = SilentNStateSSR(8)
        rng = np.random.default_rng(5)
        simulation = make_simulation(protocol, RunConfig(seed=0), rng=rng)
        assert simulation.rng is rng


class TestPolymorphicRun:
    """simulation.run(config) executes the plan on either engine."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_run_until_stop_condition(self, engine):
        protocol = SilentNStateSSR(10)
        config = RunConfig(engine=engine, stop="stabilized", seed=1)
        simulation = make_simulation(
            protocol, config, configuration=protocol.worst_case_configuration()
        )
        result = simulation.run(config)
        assert result.stopped and result.reason == "stabilized"
        assert result.engine == engine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cap_is_honoured(self, engine):
        protocol = ResetWaveProtocol(16, rmax=5, dmax=5)
        config = RunConfig(
            engine=engine, stop="silent", seed=0, max_interactions=3, check_interval=1
        )
        simulation = make_simulation(
            protocol, config, configuration=protocol.triggered_configuration()
        )
        result = simulation.run(config)
        assert result.interactions <= 3

    @pytest.mark.parametrize("engine", ENGINES)
    def test_integer_run_still_steps_exactly(self, engine):
        protocol = SilentNStateSSR(8)
        simulation = make_simulation(protocol, RunConfig(engine=engine, seed=0))
        assert simulation.run(25) is None
        assert simulation.interactions == 25

    def test_matches_explicit_run_until_stabilized(self):
        protocol_a = SilentNStateSSR(10)
        protocol_b = SilentNStateSSR(10)
        config = RunConfig(stop="stabilized", seed=9)
        plan = make_simulation(
            protocol_a, config, configuration=protocol_a.worst_case_configuration()
        ).run(config)
        explicit = Simulation(
            protocol_b, configuration=protocol_b.worst_case_configuration(), rng=9
        ).run_until_stabilized()
        assert plan == explicit
