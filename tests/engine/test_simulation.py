"""Unit tests for the Simulation loop and run_trials."""

import pytest

from repro.core.fratricide import FratricideLeaderElection
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.simulation import (
    DEFAULT_CAP_CUBIC_FACTOR,
    DEFAULT_CAP_QUADRATIC_FACTOR,
    Simulation,
    run_trials,
)


class TestStepping:
    def test_step_increments_interaction_count(self):
        simulation = Simulation(FratricideLeaderElection(6), rng=0)
        simulation.step()
        assert simulation.interactions == 1

    def test_run_executes_exact_count(self):
        simulation = Simulation(FratricideLeaderElection(6), rng=0)
        simulation.run(123)
        assert simulation.interactions == 123

    def test_run_negative_rejected(self):
        simulation = Simulation(FratricideLeaderElection(6), rng=0)
        with pytest.raises(ValueError):
            simulation.run(-1)

    def test_parallel_time(self):
        simulation = Simulation(FratricideLeaderElection(10), rng=0)
        simulation.run(55)
        assert simulation.parallel_time == 5.5

    def test_mismatched_configuration_rejected(self):
        protocol = FratricideLeaderElection(6)
        other = FratricideLeaderElection(4)
        with pytest.raises(ValueError):
            Simulation(protocol, configuration=other.initial_configuration())


class TestStoppingConditions:
    def test_run_until_correct_fratricide(self):
        protocol = FratricideLeaderElection(16)
        simulation = Simulation(protocol, rng=0)
        result = simulation.run_until_correct()
        assert result.stopped and result.reason == "correct"
        assert protocol.leader_count(simulation.configuration) == 1

    def test_run_until_stabilized_silent_n_state(self):
        protocol = SilentNStateSSR(8)
        simulation = Simulation(
            protocol, configuration=protocol.all_same_rank_configuration(), rng=1
        )
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_run_until_silent_equals_correct_for_protocol1(self):
        protocol = SilentNStateSSR(6)
        simulation = Simulation(protocol, configuration=protocol.worst_case_configuration(), rng=2)
        result = simulation.run_until_silent()
        assert result.stopped and protocol.is_silent(simulation.configuration)

    def test_cap_is_respected(self):
        protocol = FratricideLeaderElection(8)
        configuration = protocol.all_followers_configuration()
        simulation = Simulation(protocol, configuration=configuration, rng=0)
        result = simulation.run_until_correct(max_interactions=500)
        assert not result.stopped and result.reason == "cap"
        assert simulation.interactions == 500

    def test_predicate_checked_before_first_interaction(self):
        protocol = SilentNStateSSR(5)
        simulation = Simulation(protocol, rng=0)  # clean start is already ranked
        result = simulation.run_until_stabilized()
        assert result.stopped and result.interactions == 0

    def test_invalid_check_interval(self):
        simulation = Simulation(FratricideLeaderElection(6), rng=0)
        with pytest.raises(ValueError):
            simulation.run_until_correct(check_interval=0)

    def test_stop_time_accuracy_within_check_interval(self):
        protocol = FratricideLeaderElection(12)
        simulation = Simulation(protocol, rng=3)
        result = simulation.run_until_correct(check_interval=1)
        # With check_interval=1 the reported count is exact: the configuration
        # one interaction earlier was not yet correct.
        assert result.stopped
        assert result.interactions >= 1

    def test_default_cap_is_cubic_in_n(self):
        """Regression: the default cap is factor * n**3 (Theta(n^2) parallel
        time for the quadratic-time baseline), and the constant's name must
        say so -- the old DEFAULT_CAP_QUADRATIC_FACTOR name promised n**2."""
        n = 3
        protocol = FratricideLeaderElection(n)
        configuration = protocol.all_followers_configuration()  # never correct
        simulation = Simulation(protocol, configuration=configuration, rng=0)
        result = simulation.run_until_correct(check_interval=10_000)
        assert not result.stopped and result.reason == "cap"
        assert result.interactions == int(DEFAULT_CAP_CUBIC_FACTOR * n**3)

    def test_deprecated_cap_alias_preserved(self):
        assert DEFAULT_CAP_QUADRATIC_FACTOR == DEFAULT_CAP_CUBIC_FACTOR

    def test_result_engine_field(self):
        result = Simulation(FratricideLeaderElection(8), rng=0).run_until_correct()
        assert result.engine == "loop"


class TestReproducibility:
    def test_same_seed_same_trajectory(self):
        first = Simulation(FratricideLeaderElection(16), rng=9).run_until_correct()
        second = Simulation(FratricideLeaderElection(16), rng=9).run_until_correct()
        assert first.interactions == second.interactions

    def test_different_seed_usually_differs(self):
        results = {
            Simulation(FratricideLeaderElection(16), rng=seed).run_until_correct().interactions
            for seed in range(5)
        }
        assert len(results) > 1


class TestRunTrials:
    def test_returns_statistics_with_requested_trials(self):
        stats = run_trials(lambda: FratricideLeaderElection(8), trials=5, seed=0, stop="correct")
        assert stats.trials == 5 and stats.n == 8
        assert stats.mean > 0

    def test_configuration_factory_is_used(self):
        stats = run_trials(
            lambda: SilentNStateSSR(6),
            trials=3,
            seed=0,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            stop="stabilized",
        )
        assert all(value > 0 for value in stats.values)

    def test_invalid_stop_rejected(self):
        with pytest.raises(ValueError):
            run_trials(lambda: FratricideLeaderElection(8), trials=1, stop="bogus")

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            run_trials(lambda: FratricideLeaderElection(8), trials=0)
