"""Integration tests: end-to-end self-stabilization of every ranking protocol.

Each test starts from a nasty configuration (adversarial states, mid-run
transient faults, or the specific worst cases the paper analyses), runs the
full engine, and checks the protocol ends in a correct, stable ranking --
the definition of solving SSR.
"""

import pytest

from repro.adversary.faults import inject_transient_faults
from repro.core.problems import has_unique_leader, leaders_from_ranks
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from tests.conftest import make_optimal_silent, make_sublinear


class TestSilentNStateEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_adversarial_start_reaches_valid_ranking(self, seed):
        protocol = SilentNStateSSR(12)
        configuration = protocol.random_configuration(make_rng(seed))
        simulation = Simulation(protocol, configuration=configuration, rng=seed)
        result = simulation.run_until_stabilized()
        assert result.stopped
        ranks = sorted(state.rank for state in simulation.configuration)
        assert ranks == list(range(12))

    def test_repeated_fault_bursts(self):
        protocol = SilentNStateSSR(10)
        simulation = Simulation(protocol, rng=0)
        for burst in range(3):
            inject_transient_faults(protocol, simulation.configuration, count=5, rng=burst)
            result = simulation.run_until_stabilized()
            assert result.stopped
            assert protocol.is_correct(simulation.configuration)


class TestOptimalSilentEndToEnd:
    @pytest.mark.parametrize("seed", range(3))
    def test_adversarial_start_reaches_valid_ranking_and_leader(self, seed):
        protocol = make_optimal_silent(14)
        configuration = protocol.random_configuration(make_rng(100 + seed))
        simulation = Simulation(protocol, configuration=configuration, rng=seed)
        result = simulation.run_until_stabilized()
        assert result.stopped
        ranks = sorted(state.rank for state in simulation.configuration)
        assert ranks == list(range(1, 15))
        # Ranking solves leader election: exactly one agent has rank 1.
        assert len(leaders_from_ranks(simulation.configuration)) == 1
        assert has_unique_leader(simulation.configuration)

    def test_fault_burst_after_stabilization(self):
        protocol = make_optimal_silent(12)
        simulation = Simulation(protocol, rng=1)
        simulation.run_until_stabilized()
        inject_transient_faults(protocol, simulation.configuration, count=6, rng=2)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_stability_horizon_after_stabilization(self):
        protocol = make_optimal_silent(10)
        simulation = Simulation(protocol, rng=3)
        simulation.run_until_stabilized()
        ranks = sorted(state.rank for state in simulation.configuration)
        simulation.run(20_000)
        assert sorted(state.rank for state in simulation.configuration) == ranks


class TestSublinearEndToEnd:
    def test_planted_collision_recovers_with_unique_names_and_ranks(self):
        n = 12
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.planted_collision_configuration(make_rng(7))
        simulation = Simulation(protocol, configuration=configuration, rng=7)
        result = simulation.run_until_stabilized(max_interactions=600 * n * n, check_interval=n)
        assert result.stopped
        assert protocol.distinct_names(simulation.configuration) == n
        ranks = sorted(state.rank for state in simulation.configuration)
        assert ranks == list(range(1, n + 1))

    def test_fault_burst_after_stabilization(self):
        n = 10
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.ranked_configuration(make_rng(8))
        simulation = Simulation(protocol, configuration=configuration, rng=8)
        inject_transient_faults(protocol, simulation.configuration, count=3, rng=9)
        result = simulation.run_until_stabilized(max_interactions=800 * n * n, check_interval=n)
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_ranking_agrees_with_lexicographic_order_of_names(self):
        n = 10
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.unique_names_configuration(make_rng(10))
        simulation = Simulation(protocol, configuration=configuration, rng=10)
        result = simulation.run_until_stabilized(max_interactions=400 * n * n, check_interval=n)
        assert result.stopped
        ordered_names = sorted(state.name for state in simulation.configuration)
        for state in simulation.configuration:
            assert state.rank == ordered_names.index(state.name) + 1


class TestCrossProtocolComparison:
    def test_optimal_silent_is_faster_than_baseline_at_moderate_size(self):
        """The headline Table 1 comparison, at a size where it already shows."""
        n = 48
        from repro.core.silent_n_state import simulate_silent_n_state

        rng = make_rng(11)
        baseline_times = [simulate_silent_n_state(n, rng=rng) / n for _ in range(5)]
        optimal_times = []
        for seed in range(5):
            protocol = make_optimal_silent(n)
            configuration = protocol.random_configuration(make_rng(200 + seed))
            simulation = Simulation(protocol, configuration=configuration, rng=seed)
            optimal_times.append(simulation.run_until_stabilized().parallel_time)
        assert sum(optimal_times) / 5 < sum(baseline_times) / 5
