"""Tests for the experiment harness (RunConfig-based API)."""

import pytest

from repro.core.fratricide import FratricideLeaderElection
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.run_config import RunConfig
from repro.experiments.harness import (
    ExperimentSpec,
    measure_parallel_times,
    sweep_parallel_time,
)
from repro.experiments.result import ExperimentResult


class TestMeasureParallelTimes:
    def test_returns_requested_trial_count(self):
        stats = measure_parallel_times(
            lambda: FratricideLeaderElection(8),
            trials=4,
            run=RunConfig(seed=0, stop="correct"),
        )
        assert stats.trials == 4 and stats.n == 8

    def test_reproducible_with_same_seed(self):
        first = measure_parallel_times(
            lambda: FratricideLeaderElection(8),
            trials=3,
            run=RunConfig(seed=1, stop="correct"),
        )
        second = measure_parallel_times(
            lambda: FratricideLeaderElection(8),
            trials=3,
            run=RunConfig(seed=1, stop="correct"),
        )
        assert first.values == second.values

    def test_configuration_factory(self):
        stats = measure_parallel_times(
            lambda: SilentNStateSSR(6),
            trials=2,
            run=RunConfig(seed=0),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert all(value > 0 for value in stats.values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_parallel_times(lambda: FratricideLeaderElection(8), trials=0)
        with pytest.raises(ValueError):
            RunConfig(stop="bogus")
        with pytest.raises(ValueError):
            RunConfig(engine="turbo")

    def test_runconfig_plus_legacy_keywords_is_an_error(self):
        with pytest.raises(TypeError, match="RunConfig"):
            measure_parallel_times(
                lambda: FratricideLeaderElection(8),
                trials=1,
                run=RunConfig(seed=0),
                stop="correct",
            )

    def test_compiled_engine(self):
        stats = measure_parallel_times(
            lambda: SilentNStateSSR(12),
            trials=3,
            run=RunConfig(seed=0, engine="compiled"),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert stats.trials == 3
        assert all(value > 0 for value in stats.values)

    def test_engines_measure_comparable_times(self):
        loop = measure_parallel_times(
            lambda: SilentNStateSSR(10),
            trials=8,
            run=RunConfig(seed=4, engine="loop"),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        compiled = measure_parallel_times(
            lambda: SilentNStateSSR(10),
            trials=8,
            run=RunConfig(seed=4, engine="compiled"),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert 0.3 < compiled.mean / loop.mean < 3.0


class TestSweep:
    def test_one_result_per_population_size(self):
        results = sweep_parallel_time(
            [6, 12],
            lambda n: FratricideLeaderElection(n),
            trials=2,
            run=RunConfig(seed=0, stop="correct"),
        )
        assert [stats.n for stats in results] == [6, 12]

    def test_max_interactions_factory_is_applied(self):
        results = sweep_parallel_time(
            [6],
            lambda n: FratricideLeaderElection(n),
            trials=1,
            run=RunConfig(seed=0, stop="correct"),
            max_interactions_factory=lambda n: 10 * n * n,
        )
        assert results[0].mean <= 10 * 6


class TestExperimentSpec:
    def _spec(self):
        def runner(params, run):
            return [{"trials": params.get("trials", 1), "bonus": params.get("bonus", 0)}]

        return ExperimentSpec(
            identifier="demo",
            title="Demo",
            paper_reference="none",
            runner=runner,
            quick_params={"trials": 1},
            full_params={"trials": 5},
        )

    def test_quick_and_full_scales(self):
        spec = self._spec()
        assert spec.run("quick").rows[0]["trials"] == 1
        assert spec.run("full").rows[0]["trials"] == 5

    def test_overrides(self):
        assert self._spec().run("quick", bonus=7).rows[0]["bonus"] == 7

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            self._spec().run("medium")

    def test_returns_typed_result_with_provenance(self):
        result = self._spec().run("quick", seed=11, jobs=2)
        assert isinstance(result, ExperimentResult)
        assert result.identifier == "demo"
        assert result.title == "Demo"
        assert result.scale == "quick"
        assert result.seed == 11
        assert result.jobs == 2
        assert result.engine == "loop"
        assert result.wall_time >= 0.0
        assert result.columns == ["trials", "bonus"]

    def test_runconfig_and_options_are_mutually_exclusive(self):
        with pytest.raises(TypeError):
            self._spec().run("quick", run=RunConfig(seed=0), seed=3)

    def test_runner_receives_run_config(self):
        received = {}

        def runner(params, run):
            received["run"] = run
            return []

        spec = ExperimentSpec(
            identifier="probe", title="Probe", paper_reference="none", runner=runner
        )
        config = RunConfig(seed=9, engine="compiled", jobs=3)
        spec.run("quick", run=config)
        assert received["run"] is config


class TestTrialBatchFallbackWarning:
    """An ignored ``--trial-batch`` is never silent: run_trials warns once per
    run, naming the reason, and runs the trials one at a time."""

    def _run(self, **config_fields):
        from repro.experiments.harness import run_trials
        from repro.processes.epidemic import TwoWayEpidemicProtocol

        config = RunConfig(
            seed=2, engine="compiled", stop="correct", trial_batch=4, **config_fields
        )
        return run_trials(lambda: TwoWayEpidemicProtocol(16), trials=4, run=config)

    def test_byzantine_fallback_warns_with_reason(self):
        from repro.adversary.byzantine import ByzantineSpec

        with pytest.warns(RuntimeWarning, match="byzantine overlays run per trial"):
            results = self._run(byzantine=ByzantineSpec(fraction=0.25))
        assert len(results) == 4

    def test_scheduler_fallback_warns_with_reason(self):
        from repro.adversary.schedulers import SchedulerSpec

        with pytest.warns(RuntimeWarning, match="adversarial schedulers run per trial"):
            self._run(scheduler=SchedulerSpec(kind="biased", hot_fraction=0.1, hot_weight=3.0))

    def test_fault_campaign_fallback_warns_with_reason(self):
        from repro.adversary.plan import FaultEvent, FaultPlan

        with pytest.warns(RuntimeWarning, match="fault campaigns run per trial"):
            self._run(faults=FaultPlan((FaultEvent(at=5, kind="reset", count=2),)))

    def test_warning_fires_once_per_run(self):
        import warnings as warnings_module

        from repro.adversary.byzantine import ByzantineSpec

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            self._run(byzantine=ByzantineSpec(fraction=0.25))
        fallback = [w for w in caught if "--trial-batch ignored" in str(w.message)]
        assert len(fallback) == 1

    def test_batchable_config_does_not_warn(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            self._run()
        assert not [w for w in caught if "--trial-batch" in str(w.message)]


class TestByzantineProvenance:
    def test_spec_run_stamps_byzantine_provenance(self, tmp_path):
        from repro.adversary.byzantine import ByzantineSpec

        spec = ExperimentSpec(
            identifier="probe",
            title="Probe",
            paper_reference="none",
            runner=lambda params, run: [{"x": 1}],
        )
        config = RunConfig(
            seed=1, byzantine=ByzantineSpec(fraction=0.2, strategy="random_reply")
        )
        result = spec.run("quick", run=config)
        assert result.byzantine == {"fraction": 0.2, "strategy": "random_reply"}
        path = result.save(tmp_path / "probe.json")
        assert ExperimentResult.load(path).byzantine == result.byzantine

    def test_byzantine_provenance_defaults_to_none(self):
        spec = ExperimentSpec(
            identifier="probe",
            title="Probe",
            paper_reference="none",
            runner=lambda params, run: [{"x": 1}],
        )
        assert spec.run("quick", run=RunConfig(seed=1)).byzantine is None
