"""Tests for the experiment harness."""

import pytest

from repro.core.fratricide import FratricideLeaderElection
from repro.core.silent_n_state import SilentNStateSSR
from repro.experiments.harness import (
    ExperimentSpec,
    measure_parallel_times,
    sweep_parallel_time,
)


class TestMeasureParallelTimes:
    def test_returns_requested_trial_count(self):
        stats = measure_parallel_times(
            lambda: FratricideLeaderElection(8), trials=4, seed=0, stop="correct"
        )
        assert stats.trials == 4 and stats.n == 8

    def test_reproducible_with_same_seed(self):
        first = measure_parallel_times(
            lambda: FratricideLeaderElection(8), trials=3, seed=1, stop="correct"
        )
        second = measure_parallel_times(
            lambda: FratricideLeaderElection(8), trials=3, seed=1, stop="correct"
        )
        assert first.values == second.values

    def test_configuration_factory(self):
        stats = measure_parallel_times(
            lambda: SilentNStateSSR(6),
            trials=2,
            seed=0,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert all(value > 0 for value in stats.values)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            measure_parallel_times(lambda: FratricideLeaderElection(8), trials=0)
        with pytest.raises(ValueError):
            measure_parallel_times(lambda: FratricideLeaderElection(8), trials=1, stop="bogus")
        with pytest.raises(ValueError):
            measure_parallel_times(
                lambda: FratricideLeaderElection(8), trials=1, engine="turbo"
            )

    def test_compiled_engine(self):
        stats = measure_parallel_times(
            lambda: SilentNStateSSR(12),
            trials=3,
            seed=0,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            engine="compiled",
        )
        assert stats.trials == 3
        assert all(value > 0 for value in stats.values)

    def test_engines_measure_comparable_times(self):
        loop = measure_parallel_times(
            lambda: SilentNStateSSR(10),
            trials=8,
            seed=4,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            engine="loop",
        )
        compiled = measure_parallel_times(
            lambda: SilentNStateSSR(10),
            trials=8,
            seed=4,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            engine="compiled",
        )
        assert 0.3 < compiled.mean / loop.mean < 3.0


class TestSweep:
    def test_one_result_per_population_size(self):
        results = sweep_parallel_time(
            [6, 12], lambda n: FratricideLeaderElection(n), trials=2, seed=0, stop="correct"
        )
        assert [stats.n for stats in results] == [6, 12]

    def test_max_interactions_factory_is_applied(self):
        results = sweep_parallel_time(
            [6],
            lambda n: FratricideLeaderElection(n),
            trials=1,
            seed=0,
            stop="correct",
            max_interactions_factory=lambda n: 10 * n * n,
        )
        assert results[0].mean <= 10 * 6


class TestExperimentSpec:
    def _spec(self):
        return ExperimentSpec(
            identifier="demo",
            title="Demo",
            paper_reference="none",
            runner=lambda trials=1, bonus=0: [{"trials": trials, "bonus": bonus}],
            quick_kwargs={"trials": 1},
            full_kwargs={"trials": 5},
        )

    def test_quick_and_full_scales(self):
        spec = self._spec()
        assert spec.run("quick")[0]["trials"] == 1
        assert spec.run("full")[0]["trials"] == 5

    def test_overrides(self):
        assert self._spec().run("quick", bonus=7)[0]["bonus"] == 7

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            self._spec().run("medium")
