"""ExperimentResult artifacts: round-trip properties and registry conformance.

Two contracts are enforced here:

* **Byte-identical persistence** -- for any result,
  ``from_json(to_json()).to_json() == to_json()`` (and likewise for JSONL and
  for files on disk), so saved artifacts are faithful records.
* **Registry-wide schema conformance** -- every registered experiment, run at
  a tiny parameterization through the uniform ``RunConfig`` path, returns a
  typed ``ExperimentResult`` whose rows fit its column schema and survive the
  round trip.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.run_config import RunConfig
from repro.experiments.registry import EXPERIMENTS, list_experiments
from repro.experiments.result import ExperimentResult, load_artifacts

#: Far-below-quick parameterizations keyed by registry identifier, so the
#: conformance sweep stays fast.  The completeness assertion below forces an
#: entry (and hence coverage) for every newly registered experiment.
TINY_PARAMS = {
    "table1": {"ns": (10,), "trials": 1},
    "silent_n_state_quadratic": {"ns": (8, 12), "trials": 2},
    "silent_lower_bound": {"ns": (10,), "trials": 2},
    "log_lower_bound": {"ns": (32,), "trials": 5},
    "fratricide_failure": {"n": 12, "horizon_factor": 10.0},
    "epidemic": {"ns": (32,), "trials": 5},
    "counts_scaling": {"ns": (64,), "trials": 2},
    "epidemic_convergence": {"ns": (64,), "trials": 2},
    "counts_table1": {"ns": (64,), "trials": 2},
    "roll_call": {"ns": (16,), "trials": 3},
    "all_agents_interact": {"ns": (32,), "trials": 5},
    "bounded_epidemic": {
        "ns": (32,),
        "ks": (1,),
        "trials": 3,
        "include_log_level": False,
    },
    "binary_tree_assignment": {"ns": (16,), "trials": 2},
    "optimal_silent": {"ns": (10,), "trials": 2},
    "propagate_reset": {"ns": (10,), "trials": 2},
    "sublinear_tradeoff": {"n": 10, "depths": (0,), "trials": 1},
    "sublinear_scaling": {"ns": (8,), "depth": 1, "trials": 1},
    "history_tree_safety": {"n": 8, "depth": 1, "trials": 1, "horizon_factor": 5.0},
    "state_complexity": {"ns": (8,), "interactions_factor": 5},
    "synthetic_coin": {"ns": (12,), "bits_needed": 4},
    "recovery_burst": {
        "n": 8,
        "burst_sizes": (2, 8),
        "burst_times": (0.5,),
        "trials": 1,
    },
    "recovery_scheduler": {
        "n": 8,
        "burst_size": 4,
        "burst_times": (0.5,),
        "trials": 1,
    },
    "byzantine_tolerance": {
        "protocols": ("silent-n-state",),
        "n": 8,
        "fractions": (0.2,),
        "trials": 1,
    },
    "epsilon_consensus": {"n": 8, "fractions": (0.2,), "trials": 1},
    "ablation_dormancy": {"n": 10, "dmax_factors": (4.0,), "trials": 1},
    "ablation_timer": {"n": 10, "timer_multipliers": (8.0,), "trials": 1},
    "ablation_sync_range": {"n": 10, "sync_values": (2,), "trials": 1},
}


def _tiny_result(identifier):
    return EXPERIMENTS[identifier].run(
        "quick", run=RunConfig(seed=0), **TINY_PARAMS[identifier]
    )


def test_tiny_params_cover_the_whole_registry():
    assert set(TINY_PARAMS) == set(list_experiments())


class TestRegistryConformance:
    @pytest.fixture(scope="class")
    def results(self):
        return {identifier: _tiny_result(identifier) for identifier in TINY_PARAMS}

    def test_every_experiment_returns_a_typed_result(self, results):
        for identifier, result in results.items():
            assert isinstance(result, ExperimentResult), identifier
            assert result.identifier == identifier
            assert result.rows, f"{identifier} returned no rows"

    def test_rows_conform_to_the_column_schema(self, results):
        for identifier, result in results.items():
            assert result.columns, identifier
            for row in result.rows:
                assert set(row) <= set(result.columns), identifier

    def test_provenance_is_stamped(self, results):
        for identifier, result in results.items():
            spec = EXPERIMENTS[identifier]
            assert result.title == spec.title
            assert result.paper_reference == spec.paper_reference
            assert result.scale == "quick"
            assert result.seed == 0
            assert result.engine == "loop"
            assert result.jobs == 1
            assert result.wall_time >= 0.0
            assert result.version

    def test_byte_identical_json_round_trip(self, results):
        for identifier, result in results.items():
            text = result.to_json()
            assert ExperimentResult.from_json(text).to_json() == text, identifier

    def test_byte_identical_jsonl_round_trip(self, results):
        for identifier, result in results.items():
            text = result.to_jsonl()
            assert ExperimentResult.from_jsonl(text).to_jsonl() == text, identifier

    def test_rows_are_json_native(self, results):
        """Coercion at construction: artifacts and live results render alike."""
        for identifier, result in results.items():
            for row in result.rows:
                for value in row.values():
                    assert value is None or isinstance(
                        value, (bool, int, float, str, list, dict)
                    ), (identifier, value)
            json.dumps(result.rows)


ROW_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
ROWS = st.lists(
    st.dictionaries(st.text(min_size=1, max_size=10), ROW_VALUES, max_size=5),
    max_size=5,
)


class TestRoundTripProperties:
    @given(rows=ROWS, seed=st.one_of(st.none(), st.integers(0, 2**31)))
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_json_round_trip_is_byte_identical(self, rows, seed):
        result = ExperimentResult(
            identifier="prop", rows=rows, title="t", paper_reference="p",
            scale="quick", seed=seed, wall_time=0.25,
        )
        text = result.to_json()
        reloaded = ExperimentResult.from_json(text)
        assert reloaded.to_json() == text
        assert reloaded.rows == result.rows
        assert reloaded.columns == result.columns

    @given(rows=ROWS)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_jsonl_round_trip_is_byte_identical(self, rows):
        result = ExperimentResult(identifier="prop", rows=rows)
        text = result.to_jsonl()
        reloaded = ExperimentResult.from_jsonl(text)
        assert reloaded.to_jsonl() == text
        assert reloaded.rows == result.rows


class TestFiles:
    def test_save_load_json_is_byte_identical(self, tmp_path):
        result = _tiny_result("fratricide_failure")
        path = result.save(tmp_path / "fratricide.json")
        first = path.read_bytes()
        ExperimentResult.load(path).save(path)
        assert path.read_bytes() == first

    def test_save_load_jsonl_is_byte_identical(self, tmp_path):
        result = _tiny_result("fratricide_failure")
        path = result.save(tmp_path / "fratricide.jsonl")
        first = path.read_bytes()
        ExperimentResult.load(path).save(path)
        assert path.read_bytes() == first

    def test_load_artifacts_from_directory(self, tmp_path):
        result = _tiny_result("fratricide_failure")
        result.save(tmp_path / "b.json")
        result.save(tmp_path / "a.jsonl")
        loaded = load_artifacts(tmp_path)
        assert len(loaded) == 2
        assert all(item.identifier == "fratricide_failure" for item in loaded)

    def test_load_artifacts_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifacts(tmp_path)

    def test_numpy_values_are_coerced(self):
        import numpy as np

        result = ExperimentResult(
            identifier="np",
            rows=[{"count": np.int64(3), "flag": np.bool_(True), "x": np.float64(0.5)}],
        )
        assert result.rows == [{"count": 3, "flag": True, "x": 0.5}]
        text = result.to_json()
        assert ExperimentResult.from_json(text).to_json() == text

    def test_non_jsonable_value_is_rejected(self):
        with pytest.raises(TypeError, match="not JSON-able"):
            ExperimentResult(identifier="bad", rows=[{"x": object()}])

    def test_non_finite_floats_become_null(self):
        """Artifacts must be strict JSON: no bare NaN/Infinity tokens."""
        import math

        result = ExperimentResult(
            identifier="nan",
            rows=[{"a": math.nan, "b": math.inf, "c": -math.inf, "d": 1.5}],
        )
        assert result.rows == [{"a": None, "b": None, "c": None, "d": 1.5}]
        for text in (result.to_json(), result.to_jsonl()):
            assert "NaN" not in text and "Infinity" not in text
