"""Tests for the constant ablation experiments."""

from repro.engine.run_config import RunConfig
from repro.experiments.ablations import (
    run_dormancy_ablation,
    run_sync_range_ablation,
    run_timer_ablation,
)


class TestDormancyAblation:
    def test_rows_cover_requested_factors(self):
        rows = run_dormancy_ablation(
            {"n": 16, "dmax_factors": (2.0, 6.0), "trials": 3}, RunConfig(seed=0)
        ).rows
        assert [row["D_max / n"] for row in rows] == [2.0, 6.0]
        assert all(row["mean stabilization time"] > 0 for row in rows)

    def test_all_settings_stabilize(self):
        rows = run_dormancy_ablation(
            {"n": 16, "dmax_factors": (1.0,), "trials": 3}, RunConfig(seed=1)
        ).rows
        assert rows[0]["max stabilization time"] < 4000 * 16  # far below the cap


class TestTimerAblation:
    def test_rows_report_effective_timer(self):
        rows = run_timer_ablation(
            {"n": 12, "depth": 1, "timer_multipliers": (1.0, 8.0), "trials": 3},
            RunConfig(seed=0),
        ).rows
        assert rows[0]["T_H"] < rows[1]["T_H"]
        assert all(row["mean detection time"] > 0 for row in rows)


class TestSyncRangeAblation:
    def test_zero_selects_paper_default(self):
        rows = run_sync_range_ablation(
            {"n": 12, "depth": 1, "sync_values": (4, 0), "trials": 3}, RunConfig(seed=0)
        ).rows
        by_request = {row["S_max"] for row in rows}
        assert 4 in by_request
        assert 2 * 12 * 12 in by_request

    def test_detection_happens_for_all_ranges(self):
        rows = run_sync_range_ablation(
            {"n": 12, "depth": 1, "sync_values": (2,), "trials": 3}, RunConfig(seed=1)
        ).rows
        assert rows[0]["mean detection time"] > 0
