"""``--trial-batch`` through the registry and CLI, and the counts_table1 sweep.

The contract: ``trial_batch`` rides the same provenance rails as every other
execution option -- stamped into the saved artifact, restored by
``ExperimentResult.load``, and invisible to the rendered table (``repro
report`` reproduces the ``repro run`` rendering byte-for-byte from the
artifact alone).  The ``counts_table1`` experiment is the registry's consumer
of the batched counts path, so its quick scale doubles as the end-to-end
smoke test.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.experiments.registry import get_experiment, run_experiment
from repro.experiments.result import ExperimentResult

EXPERIMENT = "counts_table1"
CLI_ARGS = [
    "run",
    EXPERIMENT,
    "--scale",
    "quick",
    "--seed",
    "3",
    "--engine",
    "counts",
    "--trial-batch",
    "4",
]


class TestCountsTable1:
    def test_registered_with_paper_reference(self):
        spec = get_experiment(EXPERIMENT)
        assert "Table 1" in spec.paper_reference
        assert spec.quick_params["trials"] >= 2

    def test_quick_sweep_rows_and_provenance(self):
        result = run_experiment(
            EXPERIMENT, scale="quick", seed=11, engine="counts", trial_batch=4
        )
        assert result.provenance()["trial_batch"] == 4
        assert [row["trial_batch"] for row in result.rows] == [4, 4]
        for row in result.rows:
            # Theta(log n) convergence: parallel time a small multiple of ln n.
            assert 0.5 < row["mean parallel time"] / np.log(row["n"]) < 3.0

    def test_default_trial_batch_is_the_trial_count(self):
        """Without an explicit override the sweep batches all trials at once."""
        result = run_experiment(EXPERIMENT, scale="quick", seed=11)
        trials = get_experiment(EXPERIMENT).quick_params["trials"]
        assert all(row["trial_batch"] == trials for row in result.rows)


class TestTrialBatchCli:
    def _run(self, capsys, tmp_path):
        assert main(CLI_ARGS + ["--output", str(tmp_path)]) == 0
        return capsys.readouterr().out

    def test_artifact_round_trips_with_trial_batch(self, capsys, tmp_path):
        self._run(capsys, tmp_path)
        artifact = tmp_path / f"{EXPERIMENT}.json"
        original = artifact.read_bytes()
        restored = ExperimentResult.load(artifact)
        assert restored.trial_batch == 4
        restored.save(artifact)
        assert artifact.read_bytes() == original

    def test_report_reproduces_the_run_rendering(self, capsys, tmp_path):
        run_output = self._run(capsys, tmp_path)
        table, separator, _ = run_output.partition("-- artifact:")
        assert separator
        assert main(["report", str(tmp_path)]) == 0
        assert capsys.readouterr().out == table

    def test_trial_batch_rejected_on_the_loop_engine(self, capsys):
        # RunConfig validation rejects the combo; the CLI reports the
        # message cleanly instead of surfacing the traceback.
        code = main(["run", EXPERIMENT, "--scale", "quick", "--trial-batch", "4"])
        output = capsys.readouterr().out
        assert code == 2
        assert "requires a table engine" in output
