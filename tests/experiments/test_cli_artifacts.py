"""CLI artifact persistence: ``repro run --output`` and ``repro report``.

The acceptance contract: ``repro report`` reproduces the rendered table from
the saved artifact alone -- no simulation re-run -- byte-for-byte equal to
the live ``repro run`` rendering.
"""

import pytest

from repro.cli import main
from repro.experiments.result import ExperimentResult

EXPERIMENT = "fratricide_failure"


def _run_with_output(capsys, tmp_path, extra=()):
    code = main(
        ["run", EXPERIMENT, "--scale", "quick", "--seed", "3", "--output", str(tmp_path)]
        + list(extra)
    )
    assert code == 0
    return capsys.readouterr().out


def _table_block(run_output: str) -> str:
    """The rendered table portion of a ``run --output`` transcript."""
    block, separator, _ = run_output.partition("-- artifact:")
    assert separator, "run --output should announce the artifact path"
    return block


class TestRunOutput:
    def test_artifact_is_written_and_loadable(self, capsys, tmp_path):
        output = _run_with_output(capsys, tmp_path)
        artifact = tmp_path / f"{EXPERIMENT}.json"
        assert str(artifact) in output
        result = ExperimentResult.load(artifact)
        assert result.identifier == EXPERIMENT
        assert result.seed == 3
        assert result.scale == "quick"
        assert result.rows

    def test_artifact_resave_is_byte_identical(self, capsys, tmp_path):
        _run_with_output(capsys, tmp_path)
        artifact = tmp_path / f"{EXPERIMENT}.json"
        original = artifact.read_bytes()
        ExperimentResult.load(artifact).save(artifact)
        assert artifact.read_bytes() == original


class TestReport:
    def test_report_reproduces_the_rendered_table(self, capsys, tmp_path):
        run_output = _run_with_output(capsys, tmp_path)
        assert main(["report", str(tmp_path)]) == 0
        report_output = capsys.readouterr().out
        assert report_output == _table_block(run_output)

    def test_report_single_file_markdown(self, capsys, tmp_path):
        run_output = _run_with_output(capsys, tmp_path, extra=["--markdown"])
        artifact = tmp_path / f"{EXPERIMENT}.json"
        assert main(["report", str(artifact), "--markdown"]) == 0
        report_output = capsys.readouterr().out
        assert report_output == _table_block(run_output)
        assert "|" in report_output

    def test_report_missing_artifact_fails(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope.json")])
