"""Tests for report rendering."""

from repro.experiments.report import format_table, rows_to_markdown


class TestFormatTable:
    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_contains_all_columns_and_values(self):
        rows = [{"n": 8, "time": 1.5}, {"n": 16, "time": 3.25}]
        text = format_table(rows)
        assert "n" in text and "time" in text
        assert "8" in text and "3.25" in text

    def test_title_is_included(self):
        assert format_table([{"a": 1}], title="My table").startswith("My table")

    def test_explicit_column_order(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.000123456, "y": 123456.0, "z": 0.5}])
        assert "0.000123" in text and "1.23e+05" in text and "0.500" in text


class TestMarkdown:
    def test_empty(self):
        assert rows_to_markdown([]) == "(no rows)"

    def test_structure(self):
        rows = [{"n": 8, "time": 1.0}]
        markdown = rows_to_markdown(rows)
        lines = markdown.splitlines()
        assert lines[0].startswith("| n | time |".replace(" |", " |"))
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert "| 8 |" in lines[2]
