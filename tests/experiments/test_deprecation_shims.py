"""The one-release compatibility shims: old call forms work, warn exactly once.

The pre-redesign API threaded ``seed``/``stop``/``engine``/``jobs`` as
parallel keywords through runners and the harness.  Each shim must (a)
reproduce the old behaviour bit-for-bit, (b) emit ``DeprecationWarning``
exactly once per call site per process -- loud enough to be seen, quiet
enough not to drown a sweep.
"""

import warnings

import pytest

from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.run_config import RunConfig
from repro.experiments.api import reset_deprecation_warnings
from repro.experiments.epidemic_experiments import run_epidemic
from repro.experiments.harness import measure_parallel_times, run_trials
from repro.experiments.registry import EXPERIMENTS


@pytest.fixture(autouse=True)
def _fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _collect_deprecations(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = fn()
    return value, [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestRunnerShims:
    def test_legacy_keywords_return_bare_rows(self):
        rows, _ = _collect_deprecations(lambda: run_epidemic(ns=(32,), trials=5, seed=0))
        assert isinstance(rows, list)
        assert rows and isinstance(rows[0], dict)

    def test_legacy_and_new_paths_agree(self):
        rows, _ = _collect_deprecations(lambda: run_epidemic(ns=(32,), trials=5, seed=0))
        result = run_epidemic({"ns": (32,), "trials": 5}, RunConfig(seed=0))
        assert result.rows == rows

    def test_warns_exactly_once_across_repeated_calls(self):
        def twice():
            run_epidemic(ns=(32,), trials=2, seed=0)
            run_epidemic(ns=(32,), trials=2, seed=1)

        _, deprecations = _collect_deprecations(twice)
        assert len(deprecations) == 1
        assert "deprecated" in str(deprecations[0].message)

    def test_new_style_call_does_not_warn(self):
        _, deprecations = _collect_deprecations(
            lambda: run_epidemic({"ns": (32,), "trials": 2}, RunConfig(seed=0))
        )
        assert deprecations == []

    def test_mixing_forms_is_an_error(self):
        with pytest.raises(TypeError, match="legacy keywords"):
            run_epidemic({"ns": (32,)}, trials=5)

    def test_legacy_default_seed_is_zero(self):
        first, _ = _collect_deprecations(lambda: run_epidemic(ns=(32,), trials=3))
        reset_deprecation_warnings()
        second, _ = _collect_deprecations(lambda: run_epidemic(ns=(32,), trials=3, seed=0))
        assert first == second


class TestHarnessShims:
    def _legacy(self):
        return run_trials(
            lambda: SilentNStateSSR(10),
            trials=3,
            seed=5,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            stop="stabilized",
            engine="loop",
            jobs=1,
        )

    def test_legacy_keywords_match_run_config(self):
        legacy, deprecations = _collect_deprecations(self._legacy)
        assert len(deprecations) == 1
        modern = run_trials(
            lambda: SilentNStateSSR(10),
            trials=3,
            run=RunConfig(seed=5, stop="stabilized", engine="loop", jobs=1),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert legacy == modern

    def test_warns_exactly_once_across_repeated_calls(self):
        def twice():
            self._legacy()
            self._legacy()

        _, deprecations = _collect_deprecations(twice)
        assert len(deprecations) == 1

    def test_positional_seed_still_works(self):
        legacy, _ = _collect_deprecations(
            lambda: measure_parallel_times(
                lambda: SilentNStateSSR(8),
                3,
                5,
                configuration_factory=lambda protocol, rng: (
                    protocol.worst_case_configuration()
                ),
            )
        )
        modern = measure_parallel_times(
            lambda: SilentNStateSSR(8),
            trials=3,
            run=RunConfig(seed=5),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert legacy.values == modern.values

    def test_unknown_keyword_is_a_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_trials(lambda: SilentNStateSSR(8), trials=1, turbo=True)


class TestSpecAliases:
    def test_quick_kwargs_alias_warns_once_and_matches(self):
        spec = EXPERIMENTS["epidemic"]

        def read_twice():
            return spec.quick_kwargs, spec.full_kwargs, spec.quick_kwargs

        (quick, full, again), deprecations = _collect_deprecations(read_twice)
        assert quick == spec.quick_params and full == spec.full_params
        assert quick is again or quick == again
        # one warning per alias property (quick_kwargs, full_kwargs)
        assert len(deprecations) == 2
