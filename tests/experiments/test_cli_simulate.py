"""Tests for the ``repro simulate`` CLI subcommand."""

import pytest

from repro.cli import SIMULATABLE_PROTOCOLS, main


class TestSimulateCommand:
    @pytest.mark.parametrize("protocol", ["silent-n-state", "optimal-silent", "fratricide"])
    def test_simulate_stabilizes_and_reports(self, protocol, capsys):
        code = main(["simulate", protocol, "--n", "12", "--seed", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "stabilized:    True" in output
        assert "parallel time:" in output

    def test_simulate_sublinear_with_depth(self, capsys):
        code = main(["simulate", "sublinear", "--n", "10", "--seed", "2", "--depth", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "Sublinear-Time-SSR" in output
        assert "ranks:" in output

    def test_simulate_clean_start(self, capsys):
        code = main(["simulate", "optimal-silent", "--n", "10", "--seed", "3", "--clean"])
        output = capsys.readouterr().out
        assert code == 0
        assert "start:         clean" in output

    def test_simulate_reports_adversarial_start_when_sampler_exists(self, capsys):
        code = main(["simulate", "silent-n-state", "--n", "8", "--seed", "1"])
        output = capsys.readouterr().out
        assert "start:         adversarial" in output

    def test_simulate_reports_clean_fallback_honestly(self, capsys, monkeypatch):
        """Regression: when ``random_configuration`` raises NotImplementedError
        and the run falls back to the clean initial configuration, the start
        line must say so instead of claiming an adversarial start."""
        from repro.core.fratricide import FratricideLeaderElection
        from repro.engine.protocol import PopulationProtocol

        # Remove the protocol's adversarial sampler so the base class raises.
        monkeypatch.setattr(
            FratricideLeaderElection, "random_state", PopulationProtocol.random_state
        )
        code = main(["simulate", "fratricide", "--n", "12", "--seed", "1"])
        output = capsys.readouterr().out
        assert code == 0
        assert "start:         clean (protocol defines no adversarial states)" in output
        assert "start:         adversarial" not in output

    def test_simulate_reports_leader_for_ranking_protocols(self, capsys):
        main(["simulate", "silent-n-state", "--n", "8", "--seed", "0"])
        output = capsys.readouterr().out
        assert "ranks:" in output

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "bogus"])

    def test_simulate_on_compiled_engine(self, capsys):
        code = main(
            ["simulate", "reset-wave", "--n", "300", "--seed", "5", "--engine", "compiled"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "engine:        compiled" in output
        assert "stabilized:    True" in output

    def test_compiled_engine_rejects_unsupported_protocol(self, capsys):
        code = main(
            ["simulate", "sublinear", "--n", "8", "--seed", "1", "--engine", "compiled"]
        )
        output = capsys.readouterr().out
        assert code == 2
        assert "enumerable state space" in output

    def test_protocol_list_is_exposed(self):
        assert set(SIMULATABLE_PROTOCOLS) == {
            "silent-n-state",
            "optimal-silent",
            "sublinear",
            "fratricide",
            "reset-wave",
        }
