"""Tests for the experiment registry and the CLI."""

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_all_design_doc_experiments_are_registered(self):
        expected = {
            "table1",
            "silent_n_state_quadratic",
            "silent_lower_bound",
            "log_lower_bound",
            "epidemic",
            "roll_call",
            "bounded_epidemic",
            "binary_tree_assignment",
            "optimal_silent",
            "propagate_reset",
            "sublinear_tradeoff",
            "history_tree_safety",
            "state_complexity",
            "synthetic_coin",
        }
        assert expected <= set(list_experiments())

    def test_every_spec_has_quick_and_full_kwargs(self):
        for spec in EXPERIMENTS.values():
            assert isinstance(spec.quick_kwargs, dict)
            assert isinstance(spec.full_kwargs, dict)
            assert spec.title and spec.paper_reference

    def test_get_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("nonexistent")

    def test_list_is_sorted(self):
        identifiers = list_experiments()
        assert identifiers == sorted(identifiers)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "epidemic" in output

    def test_run_small_experiment(self, capsys):
        code = main(
            ["run", "log_lower_bound", "--scale", "quick", "--seed", "1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "log_lower_bound" in output and "rows in" in output

    def test_run_markdown_output(self, capsys):
        code = main(["run", "fratricide_failure", "--markdown"])
        assert code == 0
        assert "|" in capsys.readouterr().out

    def test_run_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "does_not_exist"])

    def test_run_forwards_jobs_flag(self, capsys):
        from repro.experiments.harness import ExperimentSpec

        spec = ExperimentSpec(
            identifier="jobs_cli_demo",
            title="Jobs CLI demo",
            paper_reference="none",
            runner=lambda jobs=1: [{"jobs": jobs}],
        )
        EXPERIMENTS[spec.identifier] = spec
        try:
            assert main(["run", "jobs_cli_demo", "--jobs", "3"]) == 0
            output = capsys.readouterr().out
            assert "3" in output
        finally:
            del EXPERIMENTS[spec.identifier]
