"""Tests for the experiment registry and the CLI."""

import pytest

from repro.cli import main
from repro.engine.run_config import RunConfig
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_all_design_doc_experiments_are_registered(self):
        expected = {
            "table1",
            "silent_n_state_quadratic",
            "silent_lower_bound",
            "log_lower_bound",
            "epidemic",
            "roll_call",
            "bounded_epidemic",
            "binary_tree_assignment",
            "optimal_silent",
            "propagate_reset",
            "sublinear_tradeoff",
            "history_tree_safety",
            "state_complexity",
            "synthetic_coin",
        }
        assert expected <= set(list_experiments())

    def test_every_spec_has_quick_and_full_params(self):
        for spec in EXPERIMENTS.values():
            assert isinstance(spec.quick_params, dict)
            assert isinstance(spec.full_params, dict)
            assert spec.title and spec.paper_reference

    def test_get_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("nonexistent")

    def test_list_is_sorted(self):
        identifiers = list_experiments()
        assert identifiers == sorted(identifiers)

    def test_registration_rejects_mismatched_identifier(self):
        from repro.experiments.harness import ExperimentSpec
        from repro.experiments.registry import _register

        def runner(params, run):
            return []

        runner.experiment_identifier = "something_else"
        with pytest.raises(ValueError, match="something_else"):
            _register(
                ExperimentSpec(
                    identifier="mismatch",
                    title="Mismatch",
                    paper_reference="none",
                    runner=runner,
                )
            )


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "epidemic" in output

    def test_run_small_experiment(self, capsys):
        code = main(
            ["run", "log_lower_bound", "--scale", "quick", "--seed", "1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "log_lower_bound" in output and "rows in" in output

    def test_run_markdown_output(self, capsys):
        code = main(["run", "fratricide_failure", "--markdown"])
        assert code == 0
        assert "|" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "does_not_exist"]) == 2
        output = capsys.readouterr().out
        assert output.startswith("error: unknown experiment 'does_not_exist'")
        assert "known:" in output

    def test_run_forwards_jobs_flag(self, capsys):
        from repro.experiments.harness import ExperimentSpec

        spec = ExperimentSpec(
            identifier="jobs_cli_demo",
            title="Jobs CLI demo",
            paper_reference="none",
            runner=lambda params, run: [{"jobs": run.jobs}],
        )
        EXPERIMENTS[spec.identifier] = spec
        try:
            assert main(["run", "jobs_cli_demo", "--jobs", "3"]) == 0
            output = capsys.readouterr().out
            assert "3" in output
        finally:
            del EXPERIMENTS[spec.identifier]

    def test_run_forwards_engine_flag(self, capsys):
        spec_holder = {}

        def runner(params, run):
            spec_holder["config"] = run
            return [{"engine": run.engine}]

        from repro.experiments.harness import ExperimentSpec

        spec = ExperimentSpec(
            identifier="engine_cli_demo",
            title="Engine CLI demo",
            paper_reference="none",
            runner=runner,
        )
        EXPERIMENTS[spec.identifier] = spec
        try:
            assert main(["run", "engine_cli_demo", "--engine", "compiled"]) == 0
            assert spec_holder["config"] == RunConfig(engine="compiled", seed=0)
        finally:
            del EXPERIMENTS[spec.identifier]


class TestCliSeedRegression:
    """--seed makes experiment runs reproducible from the CLI."""

    def _capture(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_same_seed_same_table(self, capsys):
        first = self._capture(
            capsys, ["run", "log_lower_bound", "--scale", "quick", "--seed", "7"]
        )
        second = self._capture(
            capsys, ["run", "log_lower_bound", "--scale", "quick", "--seed", "7"]
        )
        assert first == second

    def test_different_seed_different_table(self, capsys):
        first = self._capture(
            capsys, ["run", "log_lower_bound", "--scale", "quick", "--seed", "7"]
        )
        second = self._capture(
            capsys, ["run", "log_lower_bound", "--scale", "quick", "--seed", "8"]
        )
        assert first != second

    def test_seed_reaches_runner_via_run_config(self, capsys):
        from repro.experiments.harness import ExperimentSpec

        seeds = []

        def runner(params, run):
            seeds.append(run.seed)
            return [{"seed": run.seed}]

        spec = ExperimentSpec(
            identifier="seed_cli_demo",
            title="Seed CLI demo",
            paper_reference="none",
            runner=runner,
        )
        EXPERIMENTS[spec.identifier] = spec
        try:
            assert main(["run", "seed_cli_demo", "--seed", "42"]) == 0
            assert main(["run", "seed_cli_demo"]) == 0  # default pins seed 0
            assert seeds == [42, 0]
        finally:
            del EXPERIMENTS[spec.identifier]
