"""Tests for the ``repro stress`` CLI subcommand.

The acceptance contract: stress campaigns run through the normal experiment
machinery, so ``--output`` artifacts round-trip through ``repro report``
byte-for-byte like any other experiment, and ``--engine`` selects either
engine.
"""

import pytest

from repro.cli import main
from repro.experiments.registry import STRESS_EXPERIMENTS, get_experiment
from repro.experiments.result import ExperimentResult

#: The cheap stress run used by the CLI tests (single trial, tiny bursts).
FAST_ARGS = ["--trials", "1", "--seed", "3"]


class TestStressCommand:
    def test_runs_every_stress_experiment_by_default(self, capsys):
        code = main(["stress"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        for identifier in STRESS_EXPERIMENTS:
            assert f"== {identifier}:" in output
        assert "mean recovery time" in output

    def test_single_experiment_selection(self, capsys):
        code = main(["stress", "recovery_scheduler"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        assert "recovery_scheduler" in output
        assert "recovery_burst" not in output
        assert "biased" in output and "epoch" in output

    def test_population_override(self, capsys):
        code = main(["stress", "recovery_scheduler", "--n", "8"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        assert "\n8 " in output  # the n column reflects the override

    def test_population_override_below_default_burst_sizes(self, capsys):
        # Regression: --n below the scale's largest default burst size used
        # to crash recovery_burst; oversized bursts now clamp to n.
        code = main(["stress", "--n", "8"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        for identifier in STRESS_EXPERIMENTS:
            assert f"== {identifier}:" in output
        # burst_sizes (2, 6, 12) collapse to (2, 6, 8) at n=8.
        assert "12" not in [row.split()[1] for row in output.splitlines() if row.startswith("8 ")]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["stress", "bogus"])

    def test_stress_registry_entries_are_registered(self):
        for identifier in STRESS_EXPERIMENTS:
            spec = get_experiment(identifier)
            assert spec.runner.experiment_identifier == identifier


class TestStressArtifacts:
    def test_artifacts_round_trip_through_report(self, capsys, tmp_path):
        code = main(
            ["stress", "recovery_burst", "--output", str(tmp_path)] + FAST_ARGS
        )
        assert code == 0
        run_output = capsys.readouterr().out
        table_block, separator, _ = run_output.partition("-- artifact:")
        assert separator, "stress --output should announce the artifact path"

        artifact = tmp_path / "recovery_burst.json"
        result = ExperimentResult.load(artifact)
        assert result.identifier == "recovery_burst"
        assert result.seed == 3
        assert result.rows

        assert main(["report", str(tmp_path)]) == 0
        report_output = capsys.readouterr().out
        assert report_output == table_block

    def test_artifact_resave_is_byte_identical(self, capsys, tmp_path):
        assert (
            main(["stress", "recovery_scheduler", "--output", str(tmp_path)] + FAST_ARGS)
            == 0
        )
        capsys.readouterr()
        artifact = tmp_path / "recovery_scheduler.json"
        original = artifact.read_bytes()
        ExperimentResult.load(artifact).save(artifact)
        assert artifact.read_bytes() == original
