"""Tests for the ``repro stress`` CLI subcommand.

The acceptance contract: stress campaigns run through the normal experiment
machinery, so ``--output`` artifacts round-trip through ``repro report``
byte-for-byte like any other experiment, and ``--engine`` selects either
engine.
"""

import pytest

from repro.cli import main
from repro.experiments.registry import (
    BYZANTINE_EXPERIMENTS,
    STRESS_EXPERIMENTS,
    get_experiment,
)
from repro.experiments.result import ExperimentResult

#: The cheap stress run used by the CLI tests (single trial, tiny bursts).
FAST_ARGS = ["--trials", "1", "--seed", "3"]


class TestStressCommand:
    def test_runs_every_stress_experiment_by_default(self, capsys):
        code = main(["stress"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        for identifier in STRESS_EXPERIMENTS:
            assert f"== {identifier}:" in output
        assert "mean recovery time" in output

    def test_single_experiment_selection(self, capsys):
        code = main(["stress", "recovery_scheduler"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        assert "recovery_scheduler" in output
        assert "recovery_burst" not in output
        assert "biased" in output and "epoch" in output

    def test_population_override(self, capsys):
        code = main(["stress", "recovery_scheduler", "--n", "8"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        assert "\n8 " in output  # the n column reflects the override

    def test_population_override_below_default_burst_sizes(self, capsys):
        # Regression: --n below the scale's largest default burst size used
        # to crash recovery_burst; oversized bursts now clamp to n.
        code = main(["stress", "--n", "8"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        for identifier in STRESS_EXPERIMENTS:
            assert f"== {identifier}:" in output
        # burst_sizes (2, 6, 12) collapse to (2, 6, 8) at n=8.
        assert "12" not in [row.split()[1] for row in output.splitlines() if row.startswith("8 ")]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["stress", "bogus"])

    def test_stress_registry_entries_are_registered(self):
        for identifier in STRESS_EXPERIMENTS:
            spec = get_experiment(identifier)
            assert spec.runner.experiment_identifier == identifier

    def test_unsupported_engine_combo_is_a_clean_error(self, capsys):
        # recovery_scheduler builds an epoch-partition scheduler, which the
        # counts engine rejects at RunConfig validation time; the CLI must
        # surface the message, not a traceback.
        code = main(["stress", "recovery_scheduler", "--engine", "counts"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 2
        assert "error: recovery_scheduler:" in output
        assert "epoch-partition scheduler" in output


class TestStressByzantine:
    def test_byzantine_flag_selects_the_byzantine_families(self, capsys):
        code = main(["stress", "--byzantine", "--n", "8"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        for identifier in BYZANTINE_EXPERIMENTS:
            assert f"== {identifier}:" in output
        for identifier in set(STRESS_EXPERIMENTS) - set(BYZANTINE_EXPERIMENTS):
            assert f"== {identifier}:" not in output
        assert "max tolerated f" in output
        assert "theory phases" in output

    def test_byzantine_flag_rejects_non_byzantine_experiments(self, capsys):
        code = main(["stress", "recovery_burst", "--byzantine"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 2
        assert "not a Byzantine experiment" in output

    def test_byzantine_families_are_stress_experiments(self):
        assert set(BYZANTINE_EXPERIMENTS) <= set(STRESS_EXPERIMENTS)
        for identifier in BYZANTINE_EXPERIMENTS:
            spec = get_experiment(identifier)
            assert spec.runner.experiment_identifier == identifier

    @pytest.mark.parametrize("engine", ["compiled", "counts"])
    def test_byzantine_artifacts_round_trip_on_table_engines(
        self, capsys, tmp_path, engine
    ):
        """The acceptance contract: both byzantine experiments run end to end
        on the table engines, and their artifacts re-render byte-identically
        through ``repro report``."""
        out_dir = tmp_path / engine
        code = main(
            ["stress", "byzantine_tolerance", "--n", "8", "--engine", engine]
            + ["--output", str(out_dir)]
            + FAST_ARGS
        )
        assert code == 0
        run_output = capsys.readouterr().out
        table_block, separator, _ = run_output.partition("-- artifact:")
        assert separator

        result = ExperimentResult.load(out_dir / "byzantine_tolerance.json")
        assert result.engine == engine
        assert {row["protocol"] for row in result.rows} >= {"silent-n-state"}

        assert main(["report", str(out_dir)]) == 0
        assert capsys.readouterr().out == table_block

    def test_epsilon_consensus_reports_theory_columns(self, capsys):
        code = main(["stress", "epsilon_consensus", "--n", "8"] + FAST_ARGS)
        output = capsys.readouterr().out
        assert code == 0
        assert "theory valid (n > 2f)" in output
        assert "time per theory phase" in output


class TestStressArtifacts:
    def test_artifacts_round_trip_through_report(self, capsys, tmp_path):
        code = main(
            ["stress", "recovery_burst", "--output", str(tmp_path)] + FAST_ARGS
        )
        assert code == 0
        run_output = capsys.readouterr().out
        table_block, separator, _ = run_output.partition("-- artifact:")
        assert separator, "stress --output should announce the artifact path"

        artifact = tmp_path / "recovery_burst.json"
        result = ExperimentResult.load(artifact)
        assert result.identifier == "recovery_burst"
        assert result.seed == 3
        assert result.rows

        assert main(["report", str(tmp_path)]) == 0
        report_output = capsys.readouterr().out
        assert report_output == table_block

    def test_artifact_resave_is_byte_identical(self, capsys, tmp_path):
        assert (
            main(["stress", "recovery_scheduler", "--output", str(tmp_path)] + FAST_ARGS)
            == 0
        )
        capsys.readouterr()
        artifact = tmp_path / "recovery_scheduler.json"
        original = artifact.read_bytes()
        ExperimentResult.load(artifact).save(artifact)
        assert artifact.read_bytes() == original
