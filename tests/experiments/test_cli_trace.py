"""CLI observability: ``run --trace/--profile``, ``repro trace``, ``repro jobs``."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.telemetry import metrics
from repro.telemetry.tracing import TRACE_FORMAT, read_trace

FAST_RUN = ["run", "epidemic_convergence", "--seed", "3"]


@pytest.fixture(autouse=True)
def clean_telemetry():
    yield
    metrics.reset_registry()
    metrics.disable()
    metrics.set_profiling(False)


class TestRunTrace:
    def test_trace_file_round_trips(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(FAST_RUN + ["--trace", str(trace)]) == 0
        output = capsys.readouterr().out
        assert f"-- trace: {trace}" in output

        records = read_trace(trace)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "header"
        assert records[0]["format"] == TRACE_FORMAT
        assert "trial" in kinds and "harness_call" in kinds
        assert "experiment" in kinds and "run" in kinds
        assert kinds[-1] == "metrics"  # closing snapshot for repro trace

        run_span = next(r for r in records if r["kind"] == "run")
        assert run_span["experiments"] == ["epidemic_convergence"]
        assert run_span["exit_code"] == 0
        assert run_span["dur"] > 0.0

        assert main(["trace", str(trace)]) == 0
        summary = capsys.readouterr().out
        assert "run_id:" in summary
        assert "interactions/s:" in summary
        assert "epidemic_convergence" in summary
        assert "window histogram" in summary

    def test_profile_prints_stage_breakdown(self, capsys):
        assert main(FAST_RUN + ["--profile"]) == 0
        output = capsys.readouterr().out
        assert "stage breakdown" in output
        assert "table_apply" in output and "stop_check" in output

    def test_plain_run_leaves_telemetry_off(self, capsys):
        assert main(FAST_RUN) == 0
        assert not metrics.enabled()
        assert metrics.registry().snapshot()["samples"] == []

    def test_instrumented_flags_restored_after_run(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(FAST_RUN + ["--trace", str(trace), "--profile"]) == 0
        assert not metrics.enabled() and not metrics.profiling()

    def test_traced_artifact_matches_plain(self, tmp_path, capsys):
        plain_dir, traced_dir = tmp_path / "plain", tmp_path / "traced"
        assert main(FAST_RUN + ["--output", str(plain_dir)]) == 0
        assert (
            main(
                FAST_RUN
                + [
                    "--output",
                    str(traced_dir),
                    "--trace",
                    str(tmp_path / "t.jsonl"),
                    "--profile",
                ]
            )
            == 0
        )
        capsys.readouterr()
        plain = json.loads((plain_dir / "epidemic_convergence.json").read_text())
        traced = json.loads((traced_dir / "epidemic_convergence.json").read_text())
        for artifact in (plain, traced):  # wall clock is the one allowed diff
            artifact["wall_time"] = 0.0
            artifact.get("provenance", {}).pop("wall_time", None)
        assert plain == traced


class TestTraceCommand:
    def test_area_restricts_sections(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(FAST_RUN + ["--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace), "--area", "trials"]) == 0
        output = capsys.readouterr().out
        assert "trials by engine" in output
        assert "run_id:" not in output and "per-phase" not in output

    def test_unknown_area_exits_2(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(FAST_RUN + ["--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace), "--area", "bogus"]) == 2
        output = capsys.readouterr().out
        assert output.startswith("error: unknown metric area 'bogus'")
        assert "run, phases, trials, windows" in output

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().out.startswith("error: no such trace file")

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "header"}\n{broken\n')
        assert main(["trace", str(bad)]) == 2
        output = capsys.readouterr().out
        assert output.startswith("error:") and "line 2 is not JSON" in output

    def test_wrong_format_header_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"kind": "trial"}) + "\n")
        assert main(["trace", str(bad)]) == 2
        assert "not a repro trace" in capsys.readouterr().out


class TestJobsCommand:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.serve.server import ReproServer

        instance = ReproServer(tmp_path / "queue", port=0, workers=1)
        instance.start()
        yield instance
        instance.stop()

    def _submit_and_wait(self, server):
        from repro.engine.run_config import RunConfig
        from repro.serve.cache import job_payload
        from repro.serve.server import http_json

        payload = job_payload(
            "epidemic_convergence",
            "quick",
            {"ns": [64], "trials": 1},
            RunConfig(seed=2, engine="counts"),
        )
        status, body = http_json("POST", f"{server.url}/jobs", payload)
        assert status == 200
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, record = http_json("GET", f"{server.url}/jobs/{body['job_id']}")
            if record["state"] in ("done", "failed"):
                return record
            time.sleep(0.02)
        raise TimeoutError("job never finished")

    def test_listing_prints_queue_depths(self, server, capsys):
        record = self._submit_and_wait(server)
        assert record["state"] == "done"
        assert main(["jobs", "--url", server.url]) == 0
        output = capsys.readouterr().out
        assert "queue:" in output
        assert "done=1" in output and "pending=0" in output
        assert record["job_id"] in output
        assert "warning:" not in output

    def test_listing_flags_stale_running_jobs(self, server, capsys):
        self._submit_and_wait(server)
        queue = server.queue
        stale = queue.submit(
            {
                "experiment": "epidemic_convergence",
                "scale": "quick",
                "params": {"ns": [64], "trials": 1},
                "run_config": {"seed": 77, "engine": "counts"},
            }
        )
        claimed = queue.claim(worker_pid=os.getpid())
        # The in-process worker may race us for the claim; pin the record to
        # a dead pid either way so the listing must flag it.
        assert claimed.job_id == stale.job_id
        claimed.worker_pid = 2**22 + 54321
        queue._write(claimed)
        assert main(["jobs", "--url", server.url]) == 0
        output = capsys.readouterr().out
        assert "running=1" in output
        assert f"{stale.job_id[:8]}" in output
        assert "(stale)" in output
        assert "warning: 1 running job(s) have a dead worker pid" in output
        queue.finish(stale.job_id)  # leave the worker thread nothing stale
