"""Smoke tests that each experiment runner produces sensible rows.

These use tiny parameterizations (far below the quick scale) so the full test
suite stays fast; the shape assertions are the ones the benchmarks rely on.
All runners are exercised through the uniform ``runner(params, run)``
contract; the rows under test live on the returned ``ExperimentResult``.
"""

import pytest

from repro.engine.run_config import RunConfig
from repro.experiments.epidemic_experiments import (
    run_all_agents_interact,
    run_bounded_epidemic,
    run_epidemic,
    run_roll_call,
)
from repro.experiments.lower_bounds import (
    run_fratricide_failure,
    run_log_lower_bound,
    run_silent_lower_bound,
)
from repro.experiments.optimal_silent_experiments import (
    run_binary_tree_assignment,
    run_optimal_silent_scaling,
    run_propagate_reset,
)
from repro.experiments.silent_n_state_experiments import run_silent_n_state_scaling
from repro.experiments.state_space_experiments import run_state_space
from repro.experiments.sublinear_experiments import run_safety, run_sublinear_tradeoff
from repro.experiments.synthetic_coin_experiments import run_synthetic_coin
from repro.experiments.table1 import run_table1

RUN = RunConfig(seed=0)


class TestProcessExperiments:
    def test_epidemic_rows_match_prediction(self):
        rows = run_epidemic({"ns": (64, 128), "trials": 50}, RUN).rows
        assert len(rows) == 2
        assert all(0.8 < row["mean / predicted"] < 1.2 for row in rows)

    def test_roll_call_rows(self):
        rows = run_roll_call({"ns": (32, 64), "trials": 15}, RUN).rows
        assert all(row["mean interactions"] > 0 for row in rows)

    def test_all_agents_interact_rows(self):
        rows = run_all_agents_interact({"ns": (64,), "trials": 30}, RUN).rows
        assert 0.5 < rows[0]["mean / predicted"] < 2.0

    def test_bounded_epidemic_rows_respect_bounds(self):
        rows = run_bounded_epidemic(
            {"ns": (64,), "ks": (1, 2), "trials": 10, "include_log_level": False}, RUN
        ).rows
        assert len(rows) == 2
        assert all(row["mean tau_k (parallel)"] <= 2.0 * row["paper bound"] for row in rows)


class TestProtocolExperiments:
    def test_silent_n_state_scaling_fits_quadratic(self):
        rows = run_silent_n_state_scaling({"ns": (16, 32, 64), "trials": 5}, RUN).rows
        assert rows[0]["fitted exponent"] > 1.5

    def test_silent_n_state_invalid_start(self):
        with pytest.raises(ValueError):
            run_silent_n_state_scaling({"start": "bogus"}, RUN)

    def test_binary_tree_assignment_is_roughly_linear(self):
        rows = run_binary_tree_assignment({"ns": (32, 64), "trials": 4}, RUN).rows
        assert all(row["mean time"] > 0 for row in rows)
        assert rows[-1]["fitted exponent"] < 1.8

    def test_optimal_silent_scaling_rows(self):
        rows = run_optimal_silent_scaling({"ns": (12, 24), "trials": 2}, RUN).rows
        assert len(rows) == 2 and all(row["mean time"] > 0 for row in rows)

    def test_optimal_silent_invalid_start(self):
        with pytest.raises(ValueError):
            run_optimal_silent_scaling({"start": "bogus"}, RUN)

    def test_propagate_reset_recovery(self):
        rows = run_propagate_reset({"ns": (12, 24), "trials": 3}, RUN).rows
        assert all(row["mean recovery time"] > 0 for row in rows)

    def test_sublinear_tradeoff_direct_slower_than_tree(self):
        rows = run_sublinear_tradeoff({"n": 16, "depths": (0, 1), "trials": 3}, RUN).rows
        detection = {row["H"]: row["mean detection time"] for row in rows}
        assert set(detection) == {0, 1}
        assert all(value > 0 for value in detection.values())

    def test_safety_rows_have_no_false_positives(self):
        rows = run_safety(
            {"n": 10, "depth": 1, "trials": 2, "horizon_factor": 10.0}, RUN
        ).rows
        assert rows[0]["clean runs with false positives"] == 0


class TestLowerBoundExperiments:
    def test_silent_lower_bound_rows(self):
        rows = run_silent_lower_bound({"ns": (12, 24), "trials": 5}, RUN).rows
        assert all(row["mean time to notice"] > 0 for row in rows)

    def test_log_lower_bound_rows(self):
        rows = run_log_lower_bound({"ns": (64,), "trials": 30}, RUN).rows
        assert rows[0]["mean all-interact time"] > 0

    def test_fratricide_failure_row(self):
        rows = run_fratricide_failure({"n": 16, "horizon_factor": 20.0}, RUN).rows
        assert rows[0]["leaders at end"] == 0
        assert rows[0]["self-stabilizing"] is False


class TestTableAndStateExperiments:
    def test_table1_has_four_rows_per_population_size(self):
        rows = run_table1({"ns": (10,), "trials": 2}, RUN).rows
        assert len(rows) == 4
        assert {row["protocol"] for row in rows} >= {
            "Silent-n-state-SSR [21]",
            "Optimal-Silent-SSR (Sec. 4)",
        }

    def test_state_space_rows(self):
        rows = run_state_space({"ns": (8,), "interactions_factor": 10}, RUN).rows
        assert len(rows) == 3
        observed = {row["protocol"]: row["observed states"] for row in rows}
        assert observed["Silent-n-state-SSR"] <= 8

    def test_synthetic_coin_rows(self):
        rows = run_synthetic_coin({"ns": (16,), "bits_needed": 8}, RUN).rows
        assert rows[0]["completed"]
        assert 0.3 < rows[0]["fraction of ones"] < 0.7


class TestParamValidation:
    """Misspelled experiment parameters fail loudly, as the old signatures did."""

    def test_unknown_param_raises(self):
        with pytest.raises(TypeError, match="trails"):
            run_epidemic({"ns": (32,), "trails": 5}, RUN)

    def test_unknown_override_via_spec_raises(self):
        from repro.experiments.registry import EXPERIMENTS

        with pytest.raises(TypeError, match="trails"):
            EXPERIMENTS["epidemic"].run("quick", trails=5)

    def test_unknown_legacy_keyword_raises(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="trails"):
                run_epidemic(ns=(32,), trails=5)


class TestCrossProcessReproducibility:
    """Same seed, same rows across interpreter runs (no salted str hashing)."""

    def _rows(self, hash_seed):
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        code = (
            "import json;"
            "from repro.engine.run_config import RunConfig;"
            "from repro.experiments.optimal_silent_experiments import run_optimal_silent_scaling;"
            "result = run_optimal_silent_scaling({'ns': (10,), 'trials': 2}, RunConfig(seed=1));"
            "print(json.dumps(result.rows))"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=str(src))
        output = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True,
            check=True,
        )
        return json.loads(output.stdout)

    def test_rows_identical_across_hash_seeds(self):
        assert self._rows("1") == self._rows("2")
