"""Tests for the process-parallel trial runner.

The contract under test: ``RunConfig.jobs`` redistributes work, never
randomness.  The same seed must yield **bit-identical**
:class:`SimulationResult` records for ``jobs=1`` and ``jobs=4``, on all
three engines -- per-trial streams are derived from ``SeedSequence``
children indexed by trial number, independent of the process layout.
"""

import numpy as np
import pytest

from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.run_config import RunConfig
from repro.processes.epidemic import TwoWayEpidemicProtocol
from repro.experiments.harness import (
    ExperimentSpec,
    measure_parallel_times,
    run_trials,
    sweep_parallel_time,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment


def loop_workload(jobs):
    return run_trials(
        lambda: SilentNStateSSR(12),
        trials=6,
        run=RunConfig(seed=21, stop="stabilized", engine="loop", jobs=jobs),
        configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
    )


def compiled_workload(jobs):
    return run_trials(
        lambda: ResetWaveProtocol(48, rmax=5, dmax=5),
        trials=5,
        run=RunConfig(seed=34, stop="stabilized", engine="compiled", jobs=jobs),
        configuration_factory=lambda protocol, rng: protocol.triggered_configuration(),
    )


def _one_infected_counts(protocol, compiled, rng):
    counts = np.zeros(compiled.num_states, dtype=np.int64)
    counts[compiled.encode_state(protocol.initial_state(0, rng))] += 1
    counts[compiled.encode_state(protocol.initial_state(1, rng))] += protocol.n - 1
    return counts


def counts_workload(jobs):
    return run_trials(
        lambda: TwoWayEpidemicProtocol(50_000),
        trials=5,
        run=RunConfig(seed=55, stop="correct", engine="counts", jobs=jobs),
        counts_factory=_one_infected_counts,
    )


class TestJobsDeterminism:
    """Same seed => bit-identical results regardless of the worker count."""

    def test_loop_engine_results_identical_across_jobs(self):
        sequential = loop_workload(jobs=1)
        parallel = loop_workload(jobs=4)
        assert sequential == parallel
        assert all(result.engine == "loop" for result in parallel)

    def test_compiled_engine_results_identical_across_jobs(self):
        sequential = compiled_workload(jobs=1)
        parallel = compiled_workload(jobs=4)
        assert sequential == parallel
        assert all(result.engine == "compiled" for result in parallel)

    def test_counts_engine_results_identical_across_jobs(self):
        sequential = counts_workload(jobs=1)
        parallel = counts_workload(jobs=4)
        assert sequential == parallel
        assert all(result.engine == "counts" for result in parallel)
        assert all(result.stopped for result in parallel)

    def test_statistics_identical_across_jobs(self):
        def measure(jobs):
            return measure_parallel_times(
                lambda: SilentNStateSSR(10),
                trials=5,
                run=RunConfig(seed=3, stop="stabilized", jobs=jobs),
                configuration_factory=lambda protocol, rng: (
                    protocol.worst_case_configuration()
                ),
            )

        assert measure(1).values == measure(3).values

    def test_sweep_identical_across_jobs(self):
        def sweep(jobs):
            return sweep_parallel_time(
                [6, 10],
                lambda n: SilentNStateSSR(n),
                trials=2,
                run=RunConfig(seed=0, stop="stabilized", jobs=jobs),
                configuration_factory=lambda protocol, rng: (
                    protocol.worst_case_configuration()
                ),
            )

        assert [s.values for s in sweep(1)] == [s.values for s in sweep(2)]


class TestRunTrials:
    def test_returns_results_in_trial_order(self):
        results = loop_workload(jobs=2)
        assert len(results) == 6
        assert all(result.stopped for result in results)

    def test_invalid_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            RunConfig(jobs=0)

    def test_single_trial_runs_inline(self):
        results = run_trials(
            lambda: SilentNStateSSR(6),
            trials=1,
            run=RunConfig(seed=0, jobs=8),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        )
        assert len(results) == 1


class TestTrialObserver:
    """on_trial_done fires in trial order on both execution paths."""

    def _observe(self, jobs):
        seen = []
        results = run_trials(
            lambda: SilentNStateSSR(10),
            trials=5,
            run=RunConfig(seed=7, jobs=jobs),
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            on_trial_done=lambda index, result: seen.append((index, result)),
        )
        return seen, results

    def test_sequential_observer_order_and_payload(self):
        seen, results = self._observe(jobs=1)
        assert [index for index, _ in seen] == [0, 1, 2, 3, 4]
        assert [result for _, result in seen] == results

    def test_parallel_observer_order_and_payload(self):
        seen, results = self._observe(jobs=4)
        assert [index for index, _ in seen] == [0, 1, 2, 3, 4]
        assert [result for _, result in seen] == results


class TestJobsThreading:
    """A RunConfig built from --jobs reaches runners through the registry."""

    def _spec(self):
        def runner(params, run):
            return [{"trials": params.get("trials", 1), "jobs": run.jobs}]

        return ExperimentSpec(
            identifier="jobs-demo",
            title="Jobs demo",
            paper_reference="none",
            runner=runner,
            quick_params={"trials": 2},
        )

    def test_jobs_reaches_runner_via_run_config(self):
        assert self._spec().run("quick", jobs=4).rows[0]["jobs"] == 4

    def test_run_experiment_forwards_jobs(self):
        spec = self._spec()
        EXPERIMENTS[spec.identifier] = spec
        try:
            result = run_experiment(spec.identifier, scale="quick", jobs=3)
            assert result.rows[0]["jobs"] == 3
            assert result.jobs == 3
        finally:
            del EXPERIMENTS[spec.identifier]

    def test_every_registered_runner_follows_the_uniform_contract(self):
        """The explicit contract replaced supports_jobs() introspection."""
        for identifier, spec in EXPERIMENTS.items():
            assert getattr(spec.runner, "experiment_identifier", None) == identifier
        assert not hasattr(next(iter(EXPERIMENTS.values())), "supports_jobs")
