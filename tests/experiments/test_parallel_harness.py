"""Tests for the process-parallel trial runner.

The contract under test: ``jobs`` redistributes work, never randomness.  The
same seed must yield **bit-identical** :class:`SimulationResult` records for
``--jobs 1`` and ``--jobs 4``, on both engines -- per-trial streams are
derived from ``SeedSequence`` children indexed by trial number, independent
of the process layout.
"""

import pytest

from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.experiments.harness import (
    ExperimentSpec,
    measure_parallel_times,
    run_trials,
    sweep_parallel_time,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment


def loop_workload(jobs):
    return run_trials(
        lambda: SilentNStateSSR(12),
        trials=6,
        seed=21,
        configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
        stop="stabilized",
        engine="loop",
        jobs=jobs,
    )


def compiled_workload(jobs):
    return run_trials(
        lambda: ResetWaveProtocol(48, rmax=5, dmax=5),
        trials=5,
        seed=34,
        configuration_factory=lambda protocol, rng: protocol.triggered_configuration(),
        stop="stabilized",
        engine="compiled",
        jobs=jobs,
    )


class TestJobsDeterminism:
    """Same seed => bit-identical results regardless of the worker count."""

    def test_loop_engine_results_identical_across_jobs(self):
        sequential = loop_workload(jobs=1)
        parallel = loop_workload(jobs=4)
        assert sequential == parallel
        assert all(result.engine == "loop" for result in parallel)

    def test_compiled_engine_results_identical_across_jobs(self):
        sequential = compiled_workload(jobs=1)
        parallel = compiled_workload(jobs=4)
        assert sequential == parallel
        assert all(result.engine == "compiled" for result in parallel)

    def test_statistics_identical_across_jobs(self):
        kwargs = dict(
            trials=5,
            seed=3,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            stop="stabilized",
        )
        sequential = measure_parallel_times(lambda: SilentNStateSSR(10), jobs=1, **kwargs)
        parallel = measure_parallel_times(lambda: SilentNStateSSR(10), jobs=3, **kwargs)
        assert sequential.values == parallel.values

    def test_sweep_identical_across_jobs(self):
        kwargs = dict(
            trials=2,
            seed=0,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            stop="stabilized",
        )
        sequential = sweep_parallel_time([6, 10], lambda n: SilentNStateSSR(n), **kwargs)
        parallel = sweep_parallel_time(
            [6, 10], lambda n: SilentNStateSSR(n), jobs=2, **kwargs
        )
        assert [s.values for s in sequential] == [s.values for s in parallel]


class TestRunTrials:
    def test_returns_results_in_trial_order(self):
        results = loop_workload(jobs=2)
        assert len(results) == 6
        assert all(result.stopped for result in results)

    def test_invalid_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            run_trials(lambda: SilentNStateSSR(6), trials=2, jobs=0)

    def test_single_trial_runs_inline(self):
        results = run_trials(
            lambda: SilentNStateSSR(6),
            trials=1,
            seed=0,
            configuration_factory=lambda protocol, rng: protocol.worst_case_configuration(),
            jobs=8,
        )
        assert len(results) == 1


class TestJobsThreading:
    """--jobs reaches runners through ExperimentSpec.run / run_experiment."""

    def _spec(self):
        def runner(trials=1, jobs=1):
            return [{"trials": trials, "jobs": jobs}]

        return ExperimentSpec(
            identifier="jobs-demo",
            title="Jobs demo",
            paper_reference="none",
            runner=runner,
            quick_kwargs={"trials": 2},
        )

    def test_jobs_forwarded_to_supporting_runner(self):
        assert self._spec().run("quick", jobs=4)[0]["jobs"] == 4

    def test_jobs_ignored_by_non_supporting_runner(self):
        spec = ExperimentSpec(
            identifier="no-jobs",
            title="No jobs",
            paper_reference="none",
            runner=lambda trials=1: [{"trials": trials}],
            quick_kwargs={"trials": 1},
        )
        assert spec.run("quick", jobs=4) == [{"trials": 1}]

    def test_preconfigured_jobs_kwarg_wins(self):
        def runner(trials=1, jobs=1):
            return [{"trials": trials, "jobs": jobs}]

        spec = ExperimentSpec(
            identifier="jobs-pinned",
            title="Jobs pinned",
            paper_reference="none",
            runner=runner,
            quick_kwargs={"trials": 2, "jobs": 2},
        )
        assert spec.run("quick", jobs=4)[0]["jobs"] == 2

    def test_run_experiment_forwards_jobs(self):
        spec = self._spec()
        EXPERIMENTS[spec.identifier] = spec
        try:
            rows = run_experiment(spec.identifier, scale="quick", jobs=3)
            assert rows[0]["jobs"] == 3
        finally:
            del EXPERIMENTS[spec.identifier]

    def test_registry_sweeps_support_jobs(self):
        """The sweep-style experiments advertise the jobs keyword."""
        for identifier in ("binary_tree_assignment", "optimal_silent"):
            assert EXPERIMENTS[identifier].supports_jobs()
