"""Tests for the roll-call process (Lemma 2.9)."""

import math

import pytest

from repro.analysis.theory import expected_roll_call_interactions
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from repro.processes.roll_call import RollCallProtocol, simulate_roll_call_interactions


class TestProtocol:
    def test_initial_rosters_are_singletons(self):
        protocol = RollCallProtocol(6)
        configuration = protocol.initial_configuration(make_rng(0))
        assert all(state.roster == frozenset({state.agent_id}) for state in configuration)

    def test_transition_takes_union(self):
        protocol = RollCallProtocol(6)
        configuration = protocol.initial_configuration(make_rng(0))
        a, b = configuration[0], configuration[1]
        protocol.transition(a, b, make_rng(0))
        assert a.roster == b.roster == frozenset({0, 1})

    def test_roster_sizes_never_decrease(self):
        protocol = RollCallProtocol(10)
        simulation = Simulation(protocol, rng=0)
        previous = protocol.minimum_roster_size(simulation.configuration)
        for _ in range(200):
            simulation.step()
            current = protocol.minimum_roster_size(simulation.configuration)
            assert current >= previous
            previous = current

    def test_completes_with_full_rosters(self):
        protocol = RollCallProtocol(12)
        simulation = Simulation(protocol, rng=1)
        result = simulation.run_until_correct()
        assert result.stopped
        assert all(len(state.roster) == 12 for state in simulation.configuration)


class TestFastSimulator:
    def test_single_agent(self):
        assert simulate_roll_call_interactions(1, rng=0) == 0

    def test_two_agents_take_one_interaction(self):
        assert simulate_roll_call_interactions(2, rng=0) == 1

    def test_mean_matches_lemma_2_9(self):
        n = 128
        rng = make_rng(0)
        trials = 60
        mean = sum(simulate_roll_call_interactions(n, rng) for _ in range(trials)) / trials
        predicted = expected_roll_call_interactions(n)
        assert abs(mean - predicted) / predicted < 0.15

    def test_roll_call_is_about_1_5x_epidemic(self):
        n = 128
        rng = make_rng(1)
        trials = 60
        mean = sum(simulate_roll_call_interactions(n, rng) for _ in range(trials)) / trials
        epidemic = (n - 1) * sum(1.0 / i for i in range(1, n))
        ratio = mean / epidemic
        assert 1.2 < ratio < 1.9

    def test_whp_bound(self):
        n = 64
        rng = make_rng(2)
        threshold = 3 * n * math.log(n)
        trials = 120
        exceed = sum(
            1 for _ in range(trials) if simulate_roll_call_interactions(n, rng) > threshold
        )
        assert exceed / trials < 0.05

    def test_invalid_population(self):
        with pytest.raises(ValueError):
            simulate_roll_call_interactions(0)
