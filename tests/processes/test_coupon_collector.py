"""Tests for the coupon-collector processes."""

import math

import pytest

from repro.engine.rng import make_rng
from repro.processes.coupon_collector import (
    expected_all_agents_interact_time,
    expected_coupon_collector_draws,
    simulate_all_agents_interact,
    simulate_coupon_collector,
)


class TestClassicCouponCollector:
    def test_single_coupon(self):
        assert simulate_coupon_collector(1, rng=0) >= 1

    def test_mean_matches_n_harmonic_n(self):
        n = 50
        rng = make_rng(0)
        trials = 300
        mean = sum(simulate_coupon_collector(n, rng) for _ in range(trials)) / trials
        predicted = expected_coupon_collector_draws(n)
        assert abs(mean - predicted) / predicted < 0.1

    def test_at_least_n_draws(self):
        rng = make_rng(1)
        assert all(simulate_coupon_collector(20, rng) >= 20 for _ in range(50))

    def test_invalid(self):
        with pytest.raises(ValueError):
            simulate_coupon_collector(0)
        with pytest.raises(ValueError):
            expected_coupon_collector_draws(0)


class TestAllAgentsInteract:
    def test_two_agents_need_one_interaction(self):
        assert simulate_all_agents_interact(2, rng=0) == 1

    def test_at_least_half_n_interactions(self):
        rng = make_rng(0)
        assert all(simulate_all_agents_interact(30, rng) >= 15 for _ in range(30))

    def test_mean_is_about_half_n_ln_n(self):
        n = 200
        rng = make_rng(1)
        trials = 200
        mean = sum(simulate_all_agents_interact(n, rng) for _ in range(trials)) / trials
        predicted = expected_all_agents_interact_time(n)
        # The asymptotic 0.5 n ln n ignores lower-order terms; allow 35% slack.
        assert abs(mean - predicted) / predicted < 0.35

    def test_invalid(self):
        with pytest.raises(ValueError):
            simulate_all_agents_interact(1)
        with pytest.raises(ValueError):
            expected_all_agents_interact_time(1)
