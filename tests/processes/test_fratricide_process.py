"""Tests for the fratricide process sampler (Lemma 4.2)."""

import pytest

from repro.analysis.theory import expected_fratricide_interactions
from repro.engine.rng import make_rng
from repro.processes.fratricide_process import simulate_fratricide_interactions


class TestFratricideProcess:
    def test_single_initial_leader_takes_zero_interactions(self):
        assert simulate_fratricide_interactions(10, initial_leaders=1, rng=0) == 0

    def test_two_leaders_take_at_least_one_interaction(self):
        assert simulate_fratricide_interactions(10, initial_leaders=2, rng=0) >= 1

    def test_default_starts_from_all_leaders(self):
        rng = make_rng(0)
        full = simulate_fratricide_interactions(20, rng=rng)
        assert full >= 19  # at least n - 1 demotions are needed

    def test_mean_matches_lemma_4_2(self):
        n = 64
        rng = make_rng(1)
        trials = 200
        mean = sum(simulate_fratricide_interactions(n, rng=rng) for _ in range(trials)) / trials
        predicted = expected_fratricide_interactions(n)
        assert abs(mean - predicted) / predicted < 0.15

    def test_expected_value_is_about_n_squared(self):
        n = 100
        predicted = expected_fratricide_interactions(n)
        assert 0.8 * n * n < predicted < 1.1 * n * n

    def test_more_initial_leaders_take_longer_in_expectation(self):
        assert expected_fratricide_interactions(50, 10) < expected_fratricide_interactions(50, 50)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_fratricide_interactions(1)
        with pytest.raises(ValueError):
            simulate_fratricide_interactions(10, initial_leaders=0)
        with pytest.raises(ValueError):
            simulate_fratricide_interactions(10, initial_leaders=11)
        with pytest.raises(ValueError):
            expected_fratricide_interactions(10, 0)
