"""Tests for the bounded epidemic / level propagation process (Lemmas 2.10, 2.11)."""

import math

import pytest

from repro.analysis.theory import expected_bounded_epidemic_time
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from repro.processes.bounded_epidemic import (
    UNREACHED,
    BoundedEpidemicProtocol,
    simulate_bounded_epidemic_levels,
    simulate_level_hitting_times,
)


class TestProtocol:
    def test_initial_levels(self):
        protocol = BoundedEpidemicProtocol(6, source=0, target=3, k=1)
        configuration = protocol.initial_configuration(make_rng(0))
        assert configuration[0].level == 0
        assert all(configuration[i].level == UNREACHED for i in range(1, 6))

    def test_transition_propagates_levels(self):
        protocol = BoundedEpidemicProtocol(4, k=1)
        configuration = protocol.initial_configuration(make_rng(0))
        source, other = configuration[0], configuration[2]
        protocol.transition(other, source, make_rng(0))
        assert other.level == 1

    def test_levels_never_increase(self):
        protocol = BoundedEpidemicProtocol(10, k=2)
        simulation = Simulation(protocol, rng=0)
        previous = [state.level for state in simulation.configuration]
        for _ in range(300):
            simulation.step()
            current = [state.level for state in simulation.configuration]
            assert all(c <= p for c, p in zip(current, previous))
            previous = current

    def test_correctness_is_target_level(self):
        protocol = BoundedEpidemicProtocol(12, source=0, target=5, k=2)
        simulation = Simulation(protocol, rng=1)
        result = simulation.run_until_correct()
        assert result.stopped
        assert simulation.configuration[5].level <= 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BoundedEpidemicProtocol(6, source=1, target=1)
        with pytest.raises(ValueError):
            BoundedEpidemicProtocol(6, k=0)
        with pytest.raises(ValueError):
            BoundedEpidemicProtocol(6, source=7, target=1)


class TestHittingTimes:
    def test_hitting_times_are_monotone_in_k(self):
        hitting = simulate_level_hitting_times(64, max_level=5, rng=make_rng(0))
        for k in range(2, 6):
            assert hitting[k] <= hitting[k - 1]

    def test_returns_all_requested_levels(self):
        hitting = simulate_level_hitting_times(32, max_level=4, rng=make_rng(1))
        assert set(hitting) == {1, 2, 3, 4}

    def test_tau_1_mean_is_about_half_n(self):
        n = 32
        rng = make_rng(2)
        trials = 100
        mean_parallel = (
            sum(simulate_bounded_epidemic_levels(n, 1, rng) for _ in range(trials)) / trials / n
        )
        # E[tau_1] = (n - 1) / 2 parallel time (direct meeting of an ordered pair).
        assert abs(mean_parallel - (n - 1) / 2) / ((n - 1) / 2) < 0.3

    def test_tau_2_respects_lemma_2_10_bound(self):
        n = 100
        rng = make_rng(3)
        trials = 40
        mean_parallel = (
            sum(simulate_bounded_epidemic_levels(n, 2, rng) for _ in range(trials)) / trials / n
        )
        assert mean_parallel <= expected_bounded_epidemic_time(n, 2) * 1.5

    def test_log_level_respects_lemma_2_11_bound(self):
        n = 128
        k = 3 * math.ceil(math.log2(n))
        rng = make_rng(4)
        trials = 30
        mean_parallel = (
            sum(simulate_bounded_epidemic_levels(n, k, rng) for _ in range(trials)) / trials / n
        )
        # Lemma 2.11: tau_{3 log2 n} <= 3 ln n with high probability.
        assert mean_parallel <= 3 * math.log(n) * 1.5

    def test_larger_k_is_faster_on_average(self):
        n = 64
        rng = make_rng(5)
        trials = 40
        totals = {k: 0 for k in (1, 3)}
        for _ in range(trials):
            hitting = simulate_level_hitting_times(n, max_level=3, rng=rng)
            totals[1] += hitting[1]
            totals[3] += hitting[3]
        assert totals[3] < totals[1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_level_hitting_times(1, max_level=1)
        with pytest.raises(ValueError):
            simulate_level_hitting_times(8, max_level=0)
        with pytest.raises(ValueError):
            simulate_level_hitting_times(8, max_level=2, source=3, target=3)
