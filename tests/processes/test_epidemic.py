"""Tests for the two-way epidemic process (Lemma 2.7 / Corollary 2.8)."""

import math

import pytest

from repro.analysis.theory import expected_epidemic_interactions
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from repro.processes.epidemic import TwoWayEpidemicProtocol, simulate_epidemic_interactions


class TestProtocol:
    def test_initial_configuration_has_one_infected(self):
        protocol = TwoWayEpidemicProtocol(10)
        configuration = protocol.initial_configuration(make_rng(0))
        assert protocol.infected_count(configuration) == 1

    def test_transition_spreads_infection_both_ways(self):
        protocol = TwoWayEpidemicProtocol(4)
        configuration = protocol.initial_configuration(make_rng(0))
        infected = configuration[0]
        healthy = configuration[1]
        protocol.transition(healthy, infected, make_rng(0))
        assert healthy.infected and infected.infected

    def test_transition_between_healthy_agents_is_null(self):
        protocol = TwoWayEpidemicProtocol(4)
        configuration = protocol.initial_configuration(make_rng(0))
        a, b = configuration[1], configuration[2]
        protocol.transition(a, b, make_rng(0))
        assert not a.infected and not b.infected

    def test_monotonicity_infected_count_never_decreases(self):
        protocol = TwoWayEpidemicProtocol(12)
        simulation = Simulation(protocol, rng=1)
        previous = protocol.infected_count(simulation.configuration)
        for _ in range(300):
            simulation.step()
            current = protocol.infected_count(simulation.configuration)
            assert current >= previous
            previous = current

    def test_completes_and_is_correct(self):
        protocol = TwoWayEpidemicProtocol(16)
        simulation = Simulation(protocol, rng=2)
        result = simulation.run_until_correct()
        assert result.stopped
        assert protocol.infected_count(simulation.configuration) == 16

    def test_invalid_initially_infected(self):
        with pytest.raises(ValueError):
            TwoWayEpidemicProtocol(4, initially_infected=0)
        with pytest.raises(ValueError):
            TwoWayEpidemicProtocol(4, initially_infected=5)

    def test_state_count(self):
        assert TwoWayEpidemicProtocol(4).theoretical_state_count() == 2


class TestFastSimulator:
    def test_zero_time_when_everyone_infected(self):
        assert simulate_epidemic_interactions(8, rng=0, initially_infected=8) == 0

    def test_single_agent_population(self):
        assert simulate_epidemic_interactions(1, rng=0) == 0

    def test_mean_matches_lemma_2_7(self):
        n = 128
        rng = make_rng(0)
        trials = 300
        mean = sum(simulate_epidemic_interactions(n, rng) for _ in range(trials)) / trials
        predicted = expected_epidemic_interactions(n)
        assert abs(mean - predicted) / predicted < 0.1

    def test_whp_bound_of_corollary_2_8(self):
        n = 64
        rng = make_rng(1)
        threshold = 3 * n * math.log(n)
        trials = 300
        exceed = sum(
            1 for _ in range(trials) if simulate_epidemic_interactions(n, rng) > threshold
        )
        # Corollary 2.8 promises probability < 1/n^2 = 0.00024; allow slack.
        assert exceed / trials < 0.02

    def test_agent_level_and_fast_simulator_agree_in_distribution(self):
        n = 24
        rng = make_rng(2)
        trials = 60
        fast = [simulate_epidemic_interactions(n, rng) for _ in range(trials)]
        agent_level = []
        for seed in range(trials):
            protocol = TwoWayEpidemicProtocol(n)
            simulation = Simulation(protocol, rng=seed)
            agent_level.append(simulation.run_until_correct(check_interval=1).interactions)
        fast_mean = sum(fast) / trials
        agent_mean = sum(agent_level) / trials
        assert abs(fast_mean - agent_mean) / agent_mean < 0.25

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_epidemic_interactions(0)
        with pytest.raises(ValueError):
            simulate_epidemic_interactions(4, initially_infected=0)
