"""Tests for Optimal-Silent-SSR (Protocols 3 + 4, Section 4)."""

import pytest

from repro.core.optimal_silent import (
    FOLLOWER,
    LEADER,
    SETTLED,
    UNSETTLED,
    OptimalSilentSSR,
    OptimalSilentState,
)
from repro.core.propagate_reset import RESETTING
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from tests.conftest import make_optimal_silent


class TestConfigurations:
    def test_stable_configuration_is_correct_and_silent(self):
        protocol = make_optimal_silent(10)
        configuration = protocol.stable_configuration()
        assert protocol.is_correct(configuration)
        assert protocol.is_silent(configuration)
        assert protocol.has_stabilized(configuration)

    def test_stable_configuration_children_counts_match_binary_tree(self):
        protocol = make_optimal_silent(10)
        configuration = protocol.stable_configuration()
        by_rank = {state.rank: state for state in configuration}
        assert by_rank[1].children == 2  # children 2 and 3 exist
        assert by_rank[5].children == 1  # child 10 exists, 11 does not
        assert by_rank[6].children == 0  # children 12, 13 do not exist

    def test_single_leader_awakening_configuration(self):
        protocol = make_optimal_silent(8)
        configuration = protocol.single_leader_awakening_configuration()
        roles = protocol.role_counts(configuration)
        assert roles[SETTLED] == 1 and roles[UNSETTLED] == 7

    def test_duplicate_rank_configuration_not_correct(self):
        protocol = make_optimal_silent(8)
        configuration = protocol.duplicate_rank_configuration()
        assert not protocol.is_correct(configuration)

    def test_all_dormant_configuration_roles(self):
        protocol = make_optimal_silent(8)
        configuration = protocol.all_dormant_configuration(leaders=3)
        assert all(state.role == RESETTING for state in configuration)
        leaders = sum(1 for state in configuration if state.leader == LEADER)
        assert leaders == 3

    def test_invalid_configuration_arguments(self):
        protocol = make_optimal_silent(8)
        with pytest.raises(ValueError):
            protocol.duplicate_rank_configuration(rank=9)
        with pytest.raises(ValueError):
            protocol.all_dormant_configuration(leaders=9)

    def test_random_state_roles_are_valid(self):
        protocol = make_optimal_silent(8)
        rng = make_rng(0)
        roles = {protocol.random_state(rng).role for _ in range(60)}
        assert roles == {SETTLED, UNSETTLED, RESETTING}


class TestTransitionRules:
    def test_rank_collision_triggers_reset(self):
        protocol = make_optimal_silent(8)
        a = OptimalSilentState(role=SETTLED, rank=3, children=0)
        b = OptimalSilentState(role=SETTLED, rank=3, children=1)
        protocol.transition(a, b, make_rng(0))
        assert a.role == RESETTING and b.role == RESETTING
        assert a.resetcount == protocol.rmax and b.resetcount == protocol.rmax
        assert a.leader == LEADER and b.leader == LEADER

    def test_distinct_settled_ranks_do_nothing(self):
        protocol = make_optimal_silent(8)
        a = OptimalSilentState(role=SETTLED, rank=3, children=0)
        b = OptimalSilentState(role=SETTLED, rank=4, children=0)
        protocol.transition(a, b, make_rng(0))
        assert a.role == SETTLED and b.role == SETTLED
        assert a.rank == 3 and b.rank == 4

    def test_settled_assigns_first_child_rank(self):
        protocol = make_optimal_silent(8)
        parent = OptimalSilentState(role=SETTLED, rank=2, children=0)
        child = OptimalSilentState(role=UNSETTLED, errorcount=protocol.emax)
        protocol.transition(parent, child, make_rng(0))
        assert child.role == SETTLED and child.rank == 4
        assert parent.children == 1

    def test_settled_assigns_second_child_rank(self):
        protocol = make_optimal_silent(8)
        parent = OptimalSilentState(role=SETTLED, rank=2, children=1)
        child = OptimalSilentState(role=UNSETTLED, errorcount=protocol.emax)
        protocol.transition(parent, child, make_rng(0))
        assert child.rank == 5 and parent.children == 2

    def test_full_parent_does_not_recruit(self):
        protocol = make_optimal_silent(8)
        parent = OptimalSilentState(role=SETTLED, rank=2, children=2)
        child = OptimalSilentState(role=UNSETTLED, errorcount=protocol.emax)
        protocol.transition(parent, child, make_rng(0))
        assert child.role == UNSETTLED

    def test_child_rank_may_equal_n(self):
        """Regression for the <= n boundary (paper pseudocode says < n)."""
        protocol = make_optimal_silent(8)
        parent = OptimalSilentState(role=SETTLED, rank=4, children=0)
        child = OptimalSilentState(role=UNSETTLED, errorcount=protocol.emax)
        protocol.transition(parent, child, make_rng(0))
        assert child.role == SETTLED and child.rank == 8

    def test_child_rank_never_exceeds_n(self):
        protocol = make_optimal_silent(8)
        parent = OptimalSilentState(role=SETTLED, rank=4, children=1)  # next child would be 9
        child = OptimalSilentState(role=UNSETTLED, errorcount=protocol.emax)
        protocol.transition(parent, child, make_rng(0))
        assert child.role == UNSETTLED

    def test_unsettled_countdown_and_timeout_triggers_reset(self):
        protocol = make_optimal_silent(8)
        a = OptimalSilentState(role=UNSETTLED, errorcount=1)
        b = OptimalSilentState(role=SETTLED, rank=4, children=2)
        protocol.transition(a, b, make_rng(0))
        assert a.role == RESETTING and b.role == RESETTING

    def test_unsettled_countdown_without_timeout(self):
        protocol = make_optimal_silent(8)
        a = OptimalSilentState(role=UNSETTLED, errorcount=5)
        b = OptimalSilentState(role=UNSETTLED, errorcount=7)
        protocol.transition(a, b, make_rng(0))
        assert a.errorcount == 4 and b.errorcount == 6
        assert a.role == UNSETTLED and b.role == UNSETTLED

    def test_dormant_leader_election_demotes_responder(self):
        protocol = make_optimal_silent(8)
        a = OptimalSilentState(role=RESETTING, leader=LEADER, resetcount=0, delaytimer=5)
        b = OptimalSilentState(role=RESETTING, leader=LEADER, resetcount=0, delaytimer=5)
        protocol.transition(a, b, make_rng(0))
        assert a.leader == LEADER and b.leader == FOLLOWER

    def test_reset_turns_leader_into_rank_one(self):
        protocol = make_optimal_silent(8)
        state = OptimalSilentState(role=RESETTING, leader=LEADER, resetcount=0, delaytimer=0)
        protocol._reset(state, make_rng(0))
        assert state.role == SETTLED and state.rank == 1 and state.children == 0

    def test_reset_turns_follower_into_unsettled(self):
        protocol = make_optimal_silent(8)
        state = OptimalSilentState(role=RESETTING, leader=FOLLOWER, resetcount=0, delaytimer=0)
        protocol._reset(state, make_rng(0))
        assert state.role == UNSETTLED and state.errorcount == protocol.emax


class TestPredicates:
    def test_correct_requires_all_settled(self):
        protocol = make_optimal_silent(4)
        configuration = protocol.stable_configuration()
        configuration[0] = OptimalSilentState(role=UNSETTLED, errorcount=protocol.emax)
        assert not protocol.is_correct(configuration)

    def test_correct_requires_permutation(self):
        protocol = make_optimal_silent(4)
        configuration = protocol.stable_configuration()
        configuration[0].rank = 2  # duplicate
        assert not protocol.is_correct(configuration)

    def test_state_count_is_linear(self):
        for n in (8, 16, 32):
            protocol = make_optimal_silent(n)
            assert protocol.theoretical_state_count() <= 60 * n

    def test_signature_depends_on_role_fields_only(self):
        a = OptimalSilentState(role=SETTLED, rank=2, children=1)
        b = OptimalSilentState(role=SETTLED, rank=2, children=1, errorcount=99)
        assert a.signature() == b.signature()


class TestStabilization:
    def test_stabilizes_from_clean_start(self):
        protocol = make_optimal_silent(16)
        simulation = Simulation(protocol, rng=0)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert sorted(state.rank for state in simulation.configuration) == list(range(1, 17))

    def test_stabilizes_from_single_leader_awakening(self):
        protocol = make_optimal_silent(16)
        simulation = Simulation(
            protocol, configuration=protocol.single_leader_awakening_configuration(), rng=1
        )
        result = simulation.run_until_stabilized()
        assert result.stopped

    def test_stabilizes_from_duplicate_ranks(self):
        protocol = make_optimal_silent(12)
        simulation = Simulation(
            protocol, configuration=protocol.duplicate_rank_configuration(), rng=2
        )
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    @pytest.mark.parametrize("seed", range(3))
    def test_stabilizes_from_adversarial_configuration(self, seed):
        protocol = make_optimal_silent(12)
        configuration = protocol.random_configuration(make_rng(seed))
        simulation = Simulation(protocol, configuration=configuration, rng=seed)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_stable_configuration_remains_stable(self):
        protocol = make_optimal_silent(10)
        simulation = Simulation(protocol, configuration=protocol.stable_configuration(), rng=3)
        simulation.run(5000)
        assert protocol.is_correct(simulation.configuration)
