"""Tests for the top-level Sublinear-Time-SSR protocol (Protocols 5 + 6)."""

import pytest

from repro.core.propagate_reset import RESETTING
from repro.core.sublinear import COLLECTING, SublinearState, SublinearTimeSSR
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from tests.conftest import make_sublinear


class TestConstruction:
    def test_default_depth_is_log_n(self):
        assert SublinearTimeSSR(16).depth == 4
        assert SublinearTimeSSR(32).depth == 5

    def test_depth_zero_uses_direct_detection(self):
        protocol = SublinearTimeSSR(8, depth=0)
        from repro.core.sublinear.collision import DirectCollisionDetector

        assert isinstance(protocol.detector, DirectCollisionDetector)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            SublinearTimeSSR(8, depth=-1)

    def test_dmax_is_long_enough_for_a_fresh_name(self):
        protocol = make_sublinear(16)
        assert protocol.dmax >= 3 * protocol.name_length

    def test_state_bits_grow_with_depth(self):
        shallow = make_sublinear(12, depth=1).theoretical_state_bits()
        deep = make_sublinear(12, depth=2).theoretical_state_bits()
        assert deep > shallow


class TestConfigurations:
    def test_unique_names_configuration(self):
        protocol = make_sublinear(10)
        configuration = protocol.unique_names_configuration(make_rng(0))
        names = [state.name for state in configuration]
        assert len(set(names)) == 10
        assert all(len(name) == protocol.name_length for name in names)
        assert all(state.roster == frozenset({state.name}) for state in configuration)

    def test_planted_collision_configuration(self):
        protocol = make_sublinear(10)
        configuration = protocol.planted_collision_configuration(make_rng(0), duplicates=3)
        names = [state.name for state in configuration]
        assert len(set(names)) == 8
        assert names.count(configuration[0].name) == 3

    def test_planted_collision_invalid_duplicates(self):
        protocol = make_sublinear(10)
        with pytest.raises(ValueError):
            protocol.planted_collision_configuration(make_rng(0), duplicates=1)

    def test_ghostly_configuration(self):
        protocol = make_sublinear(10)
        configuration = protocol.ghostly_configuration(make_rng(0), ghosts=2)
        real_names = {state.name for state in configuration}
        all_roster_names = set().union(*(state.roster for state in configuration))
        assert len(all_roster_names - real_names) == 2

    def test_ranked_configuration_is_stabilized(self):
        protocol = make_sublinear(10)
        configuration = protocol.ranked_configuration(make_rng(0))
        assert protocol.is_correct(configuration)
        assert protocol.has_stabilized(configuration)

    def test_random_state_roles(self):
        protocol = make_sublinear(10)
        rng = make_rng(1)
        roles = {protocol.random_state(rng).role for _ in range(60)}
        assert roles == {COLLECTING, RESETTING}


class TestTransition:
    def test_roster_union_on_interaction(self):
        protocol = make_sublinear(10)
        configuration = protocol.unique_names_configuration(make_rng(0))
        a, b = configuration[0], configuration[1]
        protocol.transition(a, b, make_rng(0))
        assert a.roster == b.roster == frozenset({a.name, b.name})

    def test_rank_assigned_when_roster_full(self):
        protocol = make_sublinear(4)
        configuration = protocol.ranked_configuration(make_rng(0))
        # Clear two ranks and let one interaction restore them.
        a, b = configuration[0], configuration[1]
        a.rank = None
        b.rank = None
        protocol.transition(a, b, make_rng(0))
        ordered = sorted(state.name for state in configuration)
        assert a.rank == ordered.index(a.name) + 1
        assert b.rank == ordered.index(b.name) + 1

    def test_oversized_roster_triggers_reset(self):
        protocol = make_sublinear(4)
        configuration = protocol.unique_names_configuration(make_rng(0))
        a, b = configuration[0], configuration[1]
        # Plant enough ghost names to exceed the population size.
        ghosts = frozenset({"g1" * protocol.name_length, "g2" * protocol.name_length,
                            "g3" * protocol.name_length, "g4" * protocol.name_length})
        a.roster = a.roster | ghosts
        protocol.transition(a, b, make_rng(0))
        assert a.role == RESETTING and b.role == RESETTING
        assert a.resetcount == protocol.rmax

    def test_direct_name_collision_triggers_reset_in_direct_mode(self):
        protocol = make_sublinear(4, depth=0)
        a = SublinearState(role=COLLECTING, name="00", roster=frozenset({"00"}))
        b = SublinearState(role=COLLECTING, name="00", roster=frozenset({"00"}))
        protocol.transition(a, b, make_rng(0))
        assert a.role == RESETTING and b.role == RESETTING

    def test_propagating_agent_clears_name(self):
        protocol = make_sublinear(6)
        configuration = protocol.unique_names_configuration(make_rng(0))
        a, b = configuration[0], configuration[1]
        protocol.reset_machinery.trigger(a, make_rng(0))
        protocol.transition(a, b, make_rng(0))
        assert a.name == ""
        # The partner was recruited and is now resetting as well.
        assert b.role == RESETTING

    def test_dormant_agent_grows_a_fresh_name(self):
        protocol = make_sublinear(6)
        a = SublinearState(role=RESETTING, name="", resetcount=0, delaytimer=protocol.dmax)
        b = SublinearState(role=RESETTING, name="", resetcount=0, delaytimer=protocol.dmax)
        rng = make_rng(0)
        protocol.transition(a, b, rng)
        assert len(a.name) == 1 and len(b.name) == 1

    def test_reset_restores_collecting_role(self):
        protocol = make_sublinear(6)
        state = SublinearState(role=RESETTING, name="010101", resetcount=0, delaytimer=0)
        protocol._reset(state, make_rng(0))
        assert state.role == COLLECTING
        assert state.roster == frozenset({"010101"})
        assert state.tree is not None and state.tree.name == "010101"


class TestPredicates:
    def test_correct_requires_all_collecting(self):
        protocol = make_sublinear(6)
        configuration = protocol.ranked_configuration(make_rng(0))
        protocol.reset_machinery.trigger(configuration[0], make_rng(0))
        assert not protocol.is_correct(configuration)

    def test_stabilized_requires_full_rosters(self):
        protocol = make_sublinear(6)
        configuration = protocol.ranked_configuration(make_rng(0))
        configuration[0].roster = frozenset({configuration[0].name})
        assert not protocol.has_stabilized(configuration)

    def test_stabilized_requires_unique_names(self):
        protocol = make_sublinear(6)
        configuration = protocol.ranked_configuration(make_rng(0))
        configuration[0].name = configuration[1].name
        assert not protocol.has_stabilized(configuration)

    def test_protocol_reports_non_silent(self):
        protocol = make_sublinear(6)
        assert not protocol.is_silent(protocol.ranked_configuration(make_rng(0)))

    def test_diagnostics(self):
        protocol = make_sublinear(6)
        configuration = protocol.ranked_configuration(make_rng(0))
        assert protocol.role_counts(configuration)[COLLECTING] == 6
        assert protocol.distinct_names(configuration) == 6
        assert protocol.max_tree_size(configuration) == 1


class TestStabilization:
    @pytest.mark.parametrize("depth", [0, 1, 2])
    def test_stabilizes_from_planted_collision(self, depth):
        n = 10
        protocol = make_sublinear(n, depth=depth)
        configuration = protocol.planted_collision_configuration(make_rng(depth))
        simulation = Simulation(protocol, configuration=configuration, rng=depth)
        result = simulation.run_until_stabilized(max_interactions=400 * n * n, check_interval=n)
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_stabilizes_from_ghostly_configuration(self):
        n = 10
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.ghostly_configuration(make_rng(3))
        simulation = Simulation(protocol, configuration=configuration, rng=3)
        result = simulation.run_until_stabilized(max_interactions=400 * n * n, check_interval=n)
        assert result.stopped

    def test_stabilizes_from_unique_names_without_reset(self):
        n = 10
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.unique_names_configuration(make_rng(4))
        simulation = Simulation(protocol, configuration=configuration, rng=4)
        result = simulation.run_until_stabilized(max_interactions=200 * n * n, check_interval=n)
        assert result.stopped
        # Names never change when no collision is detected.
        assert protocol.distinct_names(simulation.configuration) == n

    def test_stabilizes_from_adversarial_configuration(self):
        n = 8
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.random_configuration(make_rng(5))
        simulation = Simulation(protocol, configuration=configuration, rng=5)
        result = simulation.run_until_stabilized(max_interactions=600 * n * n, check_interval=n)
        assert result.stopped

    def test_stabilized_configuration_keeps_its_ranks(self):
        n = 8
        protocol = make_sublinear(n, depth=1)
        configuration = protocol.ranked_configuration(make_rng(6))
        ranks_before = [state.rank for state in configuration]
        simulation = Simulation(protocol, configuration=configuration, rng=6)
        simulation.run(3000)
        assert [state.rank for state in simulation.configuration] == ranks_before
