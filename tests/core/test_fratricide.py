"""Tests for the initialized fratricide leader election."""

import pytest

from repro.core.fratricide import FratricideLeaderElection, FratricideState
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation


class TestTransition:
    def test_two_leaders_demote_responder(self):
        protocol = FratricideLeaderElection(4)
        a, b = FratricideState(True), FratricideState(True)
        protocol.transition(a, b, make_rng(0))
        assert a.leader and not b.leader

    def test_leader_follower_is_null(self):
        protocol = FratricideLeaderElection(4)
        a, b = FratricideState(True), FratricideState(False)
        protocol.transition(a, b, make_rng(0))
        assert a.leader and not b.leader

    def test_followers_never_become_leaders(self):
        protocol = FratricideLeaderElection(4)
        a, b = FratricideState(False), FratricideState(False)
        protocol.transition(a, b, make_rng(0))
        assert not a.leader and not b.leader


class TestConvergence:
    def test_elects_unique_leader_from_all_leaders(self):
        protocol = FratricideLeaderElection(32)
        simulation = Simulation(protocol, rng=0)
        result = simulation.run_until_correct()
        assert result.stopped
        assert protocol.leader_count(simulation.configuration) == 1

    def test_leader_count_is_monotone(self):
        protocol = FratricideLeaderElection(16)
        simulation = Simulation(protocol, rng=1)
        previous = protocol.leader_count(simulation.configuration)
        for _ in range(500):
            simulation.step()
            current = protocol.leader_count(simulation.configuration)
            assert current <= previous
            previous = current

    def test_convergence_time_is_roughly_linear(self):
        times = {}
        for n in (16, 64):
            protocol = FratricideLeaderElection(n)
            simulation = Simulation(protocol, rng=2)
            times[n] = simulation.run_until_correct().parallel_time
        # Theta(n) parallel time: quadrupling n should increase the time clearly.
        assert times[64] > times[16]


class TestSelfStabilizationFailure:
    def test_all_followers_configuration_never_recovers(self):
        """The motivating failure from Section 1: no leader can ever be created."""
        protocol = FratricideLeaderElection(12)
        configuration = protocol.all_followers_configuration()
        simulation = Simulation(protocol, configuration=configuration, rng=3)
        simulation.run(5000)
        assert protocol.leader_count(simulation.configuration) == 0

    def test_stabilized_means_single_leader_forever(self):
        protocol = FratricideLeaderElection(8)
        simulation = Simulation(protocol, rng=4)
        simulation.run_until_correct()
        simulation.run(2000)
        assert protocol.leader_count(simulation.configuration) == 1


class TestMisc:
    def test_state_count(self):
        assert FratricideLeaderElection(5).theoretical_state_count() == 2

    def test_random_state_values(self):
        protocol = FratricideLeaderElection(5)
        rng = make_rng(0)
        values = {protocol.random_state(rng).leader for _ in range(30)}
        assert values == {True, False}
