"""Tests for the initialized leader-driven ranking protocol (Lemma 4.1 standalone)."""

import pytest

from repro.analysis.scaling import fit_power_law
from repro.core.initialized_ranking import (
    SETTLED,
    UNSETTLED,
    InitializedLeaderDrivenRanking,
    InitializedRankingState,
)
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation


class TestBasics:
    def test_initial_configuration_has_one_leader(self):
        protocol = InitializedLeaderDrivenRanking(8)
        configuration = protocol.initial_configuration(make_rng(0))
        assert protocol.settled_count(configuration) == 1
        assert configuration[0].rank == 1

    def test_transition_assigns_binary_tree_children(self):
        protocol = InitializedLeaderDrivenRanking(8)
        parent = InitializedRankingState(role=SETTLED, rank=3, children=0)
        child = InitializedRankingState(role=UNSETTLED)
        protocol.transition(parent, child, make_rng(0))
        assert child.rank == 6 and parent.children == 1

    def test_rank_n_is_assignable(self):
        protocol = InitializedLeaderDrivenRanking(8)
        parent = InitializedRankingState(role=SETTLED, rank=4, children=0)
        child = InitializedRankingState(role=UNSETTLED)
        protocol.transition(parent, child, make_rng(0))
        assert child.rank == 8

    def test_rank_above_n_is_never_assigned(self):
        protocol = InitializedLeaderDrivenRanking(8)
        parent = InitializedRankingState(role=SETTLED, rank=5, children=0)
        child = InitializedRankingState(role=UNSETTLED)
        protocol.transition(parent, child, make_rng(0))
        assert child.role == UNSETTLED

    def test_state_count_is_linear(self):
        assert InitializedLeaderDrivenRanking(20).theoretical_state_count() == 61


class TestConvergence:
    @pytest.mark.parametrize("n", [4, 9, 16, 33])
    def test_reaches_a_valid_ranking(self, n):
        protocol = InitializedLeaderDrivenRanking(n)
        simulation = Simulation(protocol, rng=n)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert sorted(state.rank for state in simulation.configuration) == list(range(1, n + 1))

    def test_settled_count_is_monotone(self):
        protocol = InitializedLeaderDrivenRanking(16)
        simulation = Simulation(protocol, rng=0)
        previous = protocol.settled_count(simulation.configuration)
        for _ in range(400):
            simulation.step()
            current = protocol.settled_count(simulation.configuration)
            assert current >= previous
            previous = current

    def test_correct_configuration_is_silent(self):
        protocol = InitializedLeaderDrivenRanking(8)
        simulation = Simulation(protocol, rng=1)
        simulation.run_until_stabilized()
        assert protocol.is_silent(simulation.configuration)

    def test_linear_time_shape(self):
        """Lemma 4.1 without the reset machinery: time grows ~linearly in n."""
        ns = [16, 32, 64, 128]
        means = []
        for n in ns:
            times = []
            for seed in range(5):
                protocol = InitializedLeaderDrivenRanking(n)
                simulation = Simulation(protocol, rng=(n, seed))
                times.append(simulation.run_until_stabilized().parallel_time)
            means.append(sum(times) / len(times))
        exponent, _, _ = fit_power_law(ns, means)
        assert exponent < 1.6


class TestNotSelfStabilizing:
    def test_leaderless_configuration_never_completes(self):
        protocol = InitializedLeaderDrivenRanking(8)
        configuration = protocol.all_unsettled_configuration()
        simulation = Simulation(protocol, configuration=configuration, rng=0)
        simulation.run(20_000)
        assert protocol.settled_count(simulation.configuration) == 0
        assert protocol.is_silent(simulation.configuration)
        assert not protocol.is_correct(simulation.configuration)
