"""Tests for the Observation 2.5 protocol (SSLE without ranking)."""

import pytest

from repro.core.observation25 import (
    FOLLOWERS,
    LEADER,
    STATE_SET,
    ThreeAgentSSLEWithoutRanking,
    ThreeAgentState,
    ranking_assignment_exists,
)
from repro.engine.configuration import Configuration
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation


def config(labels):
    return Configuration([ThreeAgentState(label) for label in labels])


class TestStates:
    def test_state_set_size(self):
        assert len(STATE_SET) == 6

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            ThreeAgentState("x")

    def test_population_size_is_fixed(self):
        with pytest.raises(ValueError):
            ThreeAgentSSLEWithoutRanking(4)

    def test_follower_index(self):
        assert ThreeAgentState("f3").follower_index == 3
        assert ThreeAgentState(LEADER).follower_index == -1


class TestSilentConfigurations:
    def test_there_are_exactly_five(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        assert len(set(protocol.silent_configurations())) == 5

    def test_adjacent_followers_with_leader_is_silent(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        assert protocol.is_silent(config([LEADER, "f0", "f1"]))
        assert protocol.is_silent(config([LEADER, "f4", "f0"]))

    def test_non_adjacent_followers_not_silent(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        assert not protocol.is_silent(config([LEADER, "f0", "f2"]))

    def test_two_leaders_not_silent(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        assert not protocol.is_silent(config([LEADER, LEADER, "f0"]))

    def test_no_leader_not_silent(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        assert not protocol.is_silent(config(["f0", "f1", "f2"]))


class TestStabilization:
    @pytest.mark.parametrize("seed", range(6))
    def test_stabilizes_from_random_configuration(self, seed):
        protocol = ThreeAgentSSLEWithoutRanking()
        configuration = protocol.random_configuration(make_rng(seed))
        simulation = Simulation(protocol, configuration=configuration, rng=seed)
        result = simulation.run_until_stabilized(max_interactions=200_000, check_interval=1)
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_stabilizes_from_all_leaders(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        configuration = config([LEADER, LEADER, LEADER])
        simulation = Simulation(protocol, configuration=configuration, rng=0)
        assert simulation.run_until_stabilized(max_interactions=200_000).stopped

    def test_silent_configuration_is_stable(self):
        protocol = ThreeAgentSSLEWithoutRanking()
        configuration = config([LEADER, "f2", "f3"])
        simulation = Simulation(protocol, configuration=configuration, rng=1)
        simulation.run(1000)
        assert protocol.is_silent(simulation.configuration)


class TestObservation:
    def test_no_consistent_ranking_assignment_exists(self):
        """The executable form of Observation 2.5's parity argument."""
        assert not ranking_assignment_exists()

    def test_state_count(self):
        assert ThreeAgentSSLEWithoutRanking().theoretical_state_count() == 6
