"""Tests for the name utilities of Sublinear-Time-SSR."""

import math

import pytest

from repro.core.sublinear.names import (
    distinct_random_names,
    lexicographic_ranks,
    name_length,
    random_name,
    rank_of,
)
from repro.engine.rng import make_rng


class TestNameLength:
    def test_is_three_log_two_n(self):
        assert name_length(16) == 12
        assert name_length(64) == 18

    def test_rounds_up(self):
        assert name_length(10) == math.ceil(3 * math.log2(10))

    def test_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            name_length(1)


class TestRandomName:
    def test_length_and_alphabet(self):
        name = random_name(make_rng(0), 12)
        assert len(name) == 12 and set(name) <= {"0", "1"}

    def test_zero_length(self):
        assert random_name(make_rng(0), 0) == ""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            random_name(make_rng(0), -3)

    def test_collision_probability_is_low(self):
        rng = make_rng(1)
        length = name_length(32)
        names = [random_name(rng, length) for _ in range(32)]
        assert len(set(names)) >= 31  # collisions should be very rare


class TestDistinctNames:
    def test_count_and_distinctness(self):
        names = distinct_random_names(make_rng(0), 20, 12)
        assert len(names) == 20 and len(set(names)) == 20

    def test_impossible_request_rejected(self):
        with pytest.raises(ValueError):
            distinct_random_names(make_rng(0), 5, 2)


class TestRanks:
    def test_lexicographic_ranks_are_one_based_and_ordered(self):
        ranks = lexicographic_ranks(["10", "00", "01"])
        assert ranks == {"00": 1, "01": 2, "10": 3}

    def test_duplicate_names_share_rank(self):
        ranks = lexicographic_ranks(["0", "0", "1"])
        assert ranks == {"0": 1, "1": 2}

    def test_rank_of(self):
        assert rank_of("01", ["10", "00", "01"]) == 2

    def test_rank_of_missing_name(self):
        with pytest.raises(ValueError):
            rank_of("11", ["00", "01"])
