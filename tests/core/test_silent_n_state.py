"""Tests for Protocol 1 (Silent-n-state-SSR) and the barrier-rank invariant."""

import pytest

from repro.core.silent_n_state import (
    SilentNStateSSR,
    SilentNStateState,
    barrier_invariant_holds,
    find_barrier_rank,
    rank_counts,
    simulate_silent_n_state,
)
from repro.engine.configuration import Configuration
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation


class TestTransition:
    def test_collision_moves_responder_up(self):
        protocol = SilentNStateSSR(5)
        a, b = SilentNStateState(2), SilentNStateState(2)
        protocol.transition(a, b, make_rng(0))
        assert a.rank == 2 and b.rank == 3

    def test_rank_wraps_modulo_n(self):
        protocol = SilentNStateSSR(5)
        a, b = SilentNStateState(4), SilentNStateState(4)
        protocol.transition(a, b, make_rng(0))
        assert b.rank == 0

    def test_distinct_ranks_do_nothing(self):
        protocol = SilentNStateSSR(5)
        a, b = SilentNStateState(1), SilentNStateState(2)
        protocol.transition(a, b, make_rng(0))
        assert (a.rank, b.rank) == (1, 2)


class TestPredicatesAndConfigurations:
    def test_clean_initial_configuration_is_already_ranked(self):
        protocol = SilentNStateSSR(6)
        configuration = protocol.initial_configuration(make_rng(0))
        assert protocol.is_correct(configuration)
        assert protocol.is_silent(configuration)
        assert protocol.has_stabilized(configuration)

    def test_worst_case_configuration_shape(self):
        protocol = SilentNStateSSR(6)
        counts = rank_counts(protocol.worst_case_configuration(), 6)
        assert counts[0] == 2 and counts[5] == 0 and all(c == 1 for c in counts[1:5])

    def test_all_same_rank_configuration(self):
        protocol = SilentNStateSSR(4)
        configuration = protocol.all_same_rank_configuration(2)
        assert rank_counts(configuration, 4) == [0, 0, 4, 0]
        assert not protocol.is_correct(configuration)

    def test_all_same_rank_invalid_rank(self):
        with pytest.raises(ValueError):
            SilentNStateSSR(4).all_same_rank_configuration(4)

    def test_theoretical_state_count_is_n(self):
        assert SilentNStateSSR(17).theoretical_state_count() == 17

    def test_random_state_in_range(self):
        protocol = SilentNStateSSR(9)
        rng = make_rng(0)
        assert all(0 <= protocol.random_state(rng).rank < 9 for _ in range(50))


class TestBarrierRank:
    def test_find_barrier_satisfies_invariant(self):
        counts = [2, 1, 1, 1, 1, 0]
        k = find_barrier_rank(counts)
        assert barrier_invariant_holds(counts, k)

    def test_barrier_rank_has_at_most_one_agent(self):
        counts = [3, 0, 2, 0, 1, 0]
        k = find_barrier_rank(counts)
        assert counts[k] <= 1

    def test_invariant_rejects_bad_candidate(self):
        counts = [2, 1, 1, 1, 1, 0]
        # Rank 0 holds two agents, so it cannot be a barrier.
        assert not barrier_invariant_holds(counts, 0)

    def test_counts_must_sum_to_n(self):
        with pytest.raises(ValueError):
            find_barrier_rank([2, 2, 1])  # sums to 5 but describes only 3 ranks

    def test_invariant_candidate_out_of_range(self):
        with pytest.raises(ValueError):
            barrier_invariant_holds([1, 1], 5)

    def test_barrier_is_preserved_by_execution(self):
        """Lemma 2.3: once (1) holds for k it holds forever."""
        protocol = SilentNStateSSR(8)
        configuration = protocol.random_configuration(make_rng(3))
        k = find_barrier_rank(rank_counts(configuration, 8))
        simulation = Simulation(protocol, configuration=configuration, rng=4)
        for _ in range(40):
            simulation.run(10)
            assert barrier_invariant_holds(rank_counts(simulation.configuration, 8), k)


class TestStabilization:
    def test_stabilizes_from_worst_case(self):
        protocol = SilentNStateSSR(8)
        simulation = Simulation(protocol, configuration=protocol.worst_case_configuration(), rng=0)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_stabilizes_from_all_same_rank(self):
        protocol = SilentNStateSSR(8)
        simulation = Simulation(
            protocol, configuration=protocol.all_same_rank_configuration(), rng=1
        )
        result = simulation.run_until_stabilized()
        assert result.stopped

    def test_stabilizes_from_random_configuration(self):
        protocol = SilentNStateSSR(10)
        simulation = Simulation(protocol, configuration=protocol.random_configuration(make_rng(2)), rng=2)
        assert simulation.run_until_stabilized().stopped


class TestFastSimulator:
    def test_zero_for_already_ranked(self):
        assert simulate_silent_n_state(6, initial_ranks=[0, 1, 2, 3, 4, 5], rng=0) == 0

    def test_agrees_with_engine_in_distribution(self):
        n = 8
        trials = 40
        rng = make_rng(5)
        fast = [simulate_silent_n_state(n, rng=rng) for _ in range(trials)]
        engine_times = []
        protocol = SilentNStateSSR(n)
        for seed in range(trials):
            simulation = Simulation(
                protocol, configuration=protocol.worst_case_configuration(), rng=seed
            )
            engine_times.append(simulation.run_until_stabilized(check_interval=1).interactions)
        fast_mean = sum(fast) / trials
        engine_mean = sum(engine_times) / trials
        assert abs(fast_mean - engine_mean) / engine_mean < 0.35

    def test_quadratic_growth(self):
        rng = make_rng(6)
        trials = 10
        mean16 = sum(simulate_silent_n_state(16, rng=rng) for _ in range(trials)) / trials / 16
        mean48 = sum(simulate_silent_n_state(48, rng=rng) for _ in range(trials)) / trials / 48
        # Theta(n^2) parallel time: tripling n should grow time by far more than 3x.
        assert mean48 / mean16 > 4.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_silent_n_state(1)
        with pytest.raises(ValueError):
            simulate_silent_n_state(4, initial_ranks=[0, 1])
        with pytest.raises(ValueError):
            simulate_silent_n_state(4, initial_ranks=[0, 1, 2, 9])

    def test_max_interactions_cap(self):
        with pytest.raises(RuntimeError):
            simulate_silent_n_state(32, rng=0, max_interactions=10)
