"""Tests for the composition combinator (Section 1: composability of SSR)."""

import pytest

from repro.core.composition import ComposedProtocol, ComposedState
from repro.core.fratricide import FratricideLeaderElection
from repro.core.initialized_ranking import InitializedLeaderDrivenRanking
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from tests.conftest import make_optimal_silent


def make_composition(n=10, interference=0.5):
    upstream = FratricideLeaderElection(n)
    downstream = SilentNStateSSR(n)
    return ComposedProtocol(upstream, downstream, interference_probability=interference)


class TestConstruction:
    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            ComposedProtocol(FratricideLeaderElection(4), SilentNStateSSR(5))

    def test_invalid_interference_rejected(self):
        with pytest.raises(ValueError):
            make_composition(interference=1.5)

    def test_name_combines_both_protocols(self):
        protocol = make_composition()
        assert "fratricide" in protocol.name and "Silent-n-state" in protocol.name

    def test_state_count_is_product(self):
        protocol = make_composition(n=7)
        assert protocol.theoretical_state_count() == 2 * 7


class TestStates:
    def test_initial_state_has_both_layers(self):
        protocol = make_composition(n=6)
        state = protocol.initial_state(0, make_rng(0))
        assert isinstance(state, ComposedState)
        assert state.upstream.leader is True
        assert state.downstream.rank == 0

    def test_clone_is_deep(self):
        protocol = make_composition(n=6)
        state = protocol.initial_state(0, make_rng(0))
        copy = state.clone()
        copy.downstream.rank = 5
        assert state.downstream.rank == 0

    def test_signature_combines_layers(self):
        protocol = make_composition(n=6)
        a = protocol.initial_state(0, make_rng(0))
        b = protocol.initial_state(1, make_rng(0))
        assert a.signature() != b.signature()  # different downstream ranks

    def test_random_state(self):
        protocol = make_composition(n=6)
        state = protocol.random_state(make_rng(0))
        assert isinstance(state.upstream.leader, bool)
        assert 0 <= state.downstream.rank < 6


class TestDynamics:
    def test_both_layers_progress(self):
        protocol = make_composition(n=12, interference=0.0)
        simulation = Simulation(protocol, rng=0)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.is_correct(simulation.configuration)

    def test_projections(self):
        protocol = make_composition(n=8, interference=0.0)
        configuration = protocol.initial_configuration(make_rng(0))
        upstream = protocol.upstream_configuration(configuration)
        downstream = protocol.downstream_configuration(configuration)
        assert all(state.leader for state in upstream)
        assert sorted(state.rank for state in downstream) == list(range(8))

    def test_downstream_recovers_despite_interference(self):
        """The composition claim: S is self-stabilizing, so P's interference is survived."""
        protocol = make_composition(n=10, interference=1.0)
        simulation = Simulation(protocol, rng=1)
        result = simulation.run_until_stabilized()
        assert result.stopped
        downstream = protocol.downstream_configuration(simulation.configuration)
        assert protocol.downstream.is_correct(downstream)

    def test_interference_actually_perturbs_downstream(self):
        protocol = make_composition(n=10, interference=1.0)
        simulation = Simulation(protocol, rng=2)
        simulation.run(30)
        downstream = protocol.downstream_configuration(simulation.configuration)
        # The downstream layer started as a perfect ranking; total interference
        # while the upstream layer is still changing must have corrupted it.
        ranks = sorted(state.rank for state in downstream)
        assert ranks != list(range(10)) or not protocol.downstream.is_correct(downstream)

    def test_composition_with_ssr_downstream_and_ranking_upstream(self):
        upstream = InitializedLeaderDrivenRanking(10)
        downstream = make_optimal_silent(10)
        protocol = ComposedProtocol(upstream, downstream, interference_probability=0.3)
        simulation = Simulation(protocol, rng=3)
        result = simulation.run_until_stabilized()
        assert result.stopped
        assert protocol.has_stabilized(simulation.configuration)
