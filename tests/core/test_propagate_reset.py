"""Tests for the Propagate-Reset subprotocol (Protocol 2, Section 3)."""

import pytest

from repro.core.propagate_reset import RESETTING, PropagateReset, default_rmax
from repro.engine.configuration import Configuration
from repro.engine.rng import make_rng
from repro.engine.state import AgentState


class HostState(AgentState):
    """Minimal host state: Computing or Resetting with the Protocol 2 fields."""

    def __init__(self, role="Computing"):
        self.role = role
        self.resetcount = None
        self.delaytimer = None
        self.resets_executed = 0


def make_machinery(rmax=5, dmax=10):
    def reset(state, rng):
        state.role = "Computing"
        state.resetcount = None
        state.delaytimer = None
        state.resets_executed += 1

    return PropagateReset(rmax=rmax, dmax=dmax, reset=reset)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_machinery(rmax=0)
        with pytest.raises(ValueError):
            make_machinery(dmax=0)

    def test_default_rmax_is_60_ln_n(self):
        assert default_rmax(100) == pytest.approx(60 * 4.6052, abs=1.0)

    def test_default_rmax_invalid_n(self):
        with pytest.raises(ValueError):
            default_rmax(1)


class TestClassification:
    def test_trigger_sets_full_resetcount(self):
        machinery = make_machinery()
        state = HostState()
        machinery.trigger(state, make_rng(0))
        assert machinery.is_triggered(state)
        assert machinery.is_propagating(state)
        assert not machinery.is_dormant(state)
        assert not machinery.is_computing(state)

    def test_computing_state_classification(self):
        machinery = make_machinery()
        state = HostState()
        assert machinery.is_computing(state)
        assert not machinery.is_resetting(state)

    def test_configuration_level_predicates(self):
        machinery = make_machinery()
        computing = HostState()
        triggered = HostState()
        machinery.trigger(triggered, make_rng(0))
        configuration = Configuration([computing, triggered])
        assert machinery.partially_triggered(configuration)
        assert machinery.partially_computing(configuration)
        assert not machinery.fully_computing(configuration)
        assert not machinery.fully_dormant(configuration)


class TestInteraction:
    def test_requires_a_resetting_agent(self):
        machinery = make_machinery()
        with pytest.raises(ValueError):
            machinery.interact(HostState(), HostState(), make_rng(0))

    def test_propagating_agent_recruits_computing_partner(self):
        machinery = make_machinery(rmax=5)
        a, b = HostState(), HostState()
        machinery.trigger(a, make_rng(0))
        machinery.interact(a, b, make_rng(0))
        assert machinery.is_resetting(b)
        # Both propagate downward: max(5 - 1, 0 - 1, 0) = 4.
        assert a.resetcount == b.resetcount == 4

    def test_resetcount_propagates_as_max_minus_one(self):
        machinery = make_machinery(rmax=10)
        a, b = HostState(), HostState()
        machinery.trigger(a, make_rng(0))
        machinery.trigger(b, make_rng(0))
        a.resetcount = 7
        b.resetcount = 3
        machinery.interact(a, b, make_rng(0))
        assert a.resetcount == b.resetcount == 6

    def test_dormant_agent_decrements_delay_timer(self):
        machinery = make_machinery(dmax=10)
        a, b = HostState(), HostState()
        machinery.trigger(a, make_rng(0))
        machinery.trigger(b, make_rng(0))
        a.resetcount = 0
        a.delaytimer = 5
        b.resetcount = 0
        b.delaytimer = 7
        machinery.interact(a, b, make_rng(0))
        assert a.delaytimer == 4 and b.delaytimer == 6

    def test_delay_timer_expiry_triggers_reset(self):
        machinery = make_machinery(dmax=10)
        a, b = HostState(), HostState()
        for state in (a, b):
            machinery.trigger(state, make_rng(0))
            state.resetcount = 0
        a.delaytimer = 1
        b.delaytimer = 9
        machinery.interact(a, b, make_rng(0))
        assert a.resets_executed == 1 and a.role == "Computing"
        assert b.resets_executed == 0 and machinery.is_dormant(b)

    def test_computing_partner_awakens_dormant_agent(self):
        machinery = make_machinery(dmax=10)
        dormant, computing = HostState(), HostState()
        machinery.trigger(dormant, make_rng(0))
        dormant.resetcount = 0
        dormant.delaytimer = 9
        machinery.interact(dormant, computing, make_rng(0))
        assert dormant.resets_executed == 1
        assert dormant.role == "Computing"

    def test_just_dormant_agent_gets_fresh_delay_timer(self):
        machinery = make_machinery(rmax=1, dmax=10)
        a, b = HostState(), HostState()
        machinery.trigger(a, make_rng(0))  # resetcount = 1
        machinery.trigger(b, make_rng(0))
        machinery.interact(a, b, make_rng(0))
        # Both dropped to 0 this interaction, so both get delaytimer = D_max.
        assert a.resetcount == b.resetcount == 0
        assert a.delaytimer == b.delaytimer == 10

    def test_order_of_arguments_does_not_matter(self):
        machinery = make_machinery(rmax=5)
        for flipped in (False, True):
            resetting, computing = HostState(), HostState()
            machinery.trigger(resetting, make_rng(0))
            pair = (computing, resetting) if flipped else (resetting, computing)
            machinery.interact(*pair, make_rng(0))
            assert machinery.is_resetting(computing)


class TestResetWave:
    def _run_wave(self, n=24, seed=0, max_interactions=300_000):
        """Drive a full reset wave with paper-style constants.

        With ``R_max = 60 ln n`` the recruitment epidemic covers the whole
        population long before anyone goes dormant and wakes up, so each agent
        resets exactly once per wave (the property Theorem 3.4 relies on).
        """
        rmax = default_rmax(n)
        machinery = make_machinery(rmax=rmax, dmax=int(2.5 * rmax))
        rng = make_rng(seed)
        states = [HostState() for _ in range(n)]
        machinery.trigger(states[0], rng)
        for _ in range(max_interactions):
            i, j = rng.integers(0, n), rng.integers(0, n - 1)
            j = int(j + (j >= i))
            i = int(i)
            if machinery.is_resetting(states[i]) or machinery.is_resetting(states[j]):
                machinery.interact(states[i], states[j], rng)
            if all(
                not machinery.is_resetting(state) and state.resets_executed >= 1
                for state in states
            ):
                break
        return machinery, states

    def test_every_agent_eventually_resets_exactly_once(self):
        machinery, states = self._run_wave()
        assert all(state.resets_executed == 1 for state in states)

    def test_population_returns_to_computing(self):
        machinery, states = self._run_wave(seed=1)
        configuration = Configuration(states)
        assert machinery.fully_computing(configuration)
        assert all(state.resets_executed >= 1 for state in states)
