"""Tests for the history-tree data structure (Protocols 7 and 8 internals)."""

import pytest

from repro.core.sublinear.history_tree import TreeEdge, TreeNode, check_path_consistency


def chain_tree(names, syncs, timers=None):
    """Build a path-shaped tree root -> names[0] -> names[1] -> ..."""
    root = TreeNode.singleton(names[0])
    node = root
    for index, child_name in enumerate(names[1:]):
        child = TreeNode.singleton(child_name)
        timer = timers[index] if timers is not None else 5
        node.attach(child, sync=syncs[index], timer=timer)
        node = child
    return root


class TestBasics:
    def test_singleton(self):
        tree = TreeNode.singleton("a")
        assert tree.node_count() == 1 and tree.depth() == 0 and list(tree.iter_edges()) == []

    def test_attach_and_counts(self):
        tree = TreeNode.singleton("a")
        tree.attach(TreeNode.singleton("b"), sync=1, timer=3)
        tree.attach(TreeNode.singleton("c"), sync=2, timer=3)
        assert tree.node_count() == 3 and tree.depth() == 1

    def test_copy_is_deep(self):
        tree = chain_tree(["a", "b", "c"], [1, 2])
        copy = tree.copy()
        copy.edges[0].child.name = "z"
        assert tree.edges[0].child.name == "b"

    def test_copy_truncates_depth(self):
        tree = chain_tree(["a", "b", "c", "d"], [1, 2, 3])
        assert tree.copy(max_depth=1).depth() == 1
        assert tree.copy(max_depth=0).node_count() == 1
        assert tree.copy(max_depth=None).depth() == 3

    def test_signature_ignores_edge_order(self):
        left = TreeNode.singleton("a")
        left.attach(TreeNode.singleton("b"), sync=1, timer=1)
        left.attach(TreeNode.singleton("c"), sync=2, timer=1)
        right = TreeNode.singleton("a")
        right.attach(TreeNode.singleton("c"), sync=2, timer=1)
        right.attach(TreeNode.singleton("b"), sync=1, timer=1)
        assert left.signature() == right.signature()


class TestMutations:
    def test_remove_depth_one_child(self):
        tree = TreeNode.singleton("a")
        tree.attach(TreeNode.singleton("b"), sync=1, timer=1)
        tree.attach(TreeNode.singleton("c"), sync=2, timer=1)
        tree.remove_depth_one_child("b")
        assert [edge.child.name for edge in tree.edges] == ["c"]

    def test_remove_depth_one_child_keeps_deeper_nodes(self):
        tree = chain_tree(["a", "b", "c"], [1, 2])
        tree.remove_depth_one_child("c")  # c is at depth 2, must survive
        assert tree.node_count() == 3

    def test_remove_subtrees_named_removes_at_any_depth(self):
        tree = chain_tree(["a", "b", "c", "d"], [1, 2, 3])
        tree.remove_subtrees_named("c")
        assert tree.node_count() == 2  # a -> b only

    def test_decrement_timers_floors_at_zero(self):
        tree = chain_tree(["a", "b", "c"], [1, 2], timers=[1, 0])
        tree.decrement_timers()
        assert [edge.timer for edge in tree.iter_edges()] == [0, 0]

    def test_zero_all_timers(self):
        tree = chain_tree(["a", "b", "c"], [1, 2])
        tree.zero_all_timers()
        assert tree.max_live_timer() == 0

    def test_simply_labelled_detection(self):
        good = chain_tree(["a", "b", "c"], [1, 2])
        assert good.is_simply_labelled()
        bad = chain_tree(["a", "b", "a"], [1, 2])
        assert not bad.is_simply_labelled()

    def test_same_name_in_different_branches_is_simply_labelled(self):
        tree = TreeNode.singleton("a")
        tree.attach(chain_tree(["b", "d"], [1]), sync=1, timer=1)
        tree.attach(chain_tree(["c", "d"], [2]), sync=2, timer=1)
        assert tree.is_simply_labelled()


class TestLivePaths:
    def test_finds_path_to_target(self):
        tree = chain_tree(["a", "b", "c"], [1, 2])
        paths = tree.live_paths_to("c")
        assert len(paths) == 1
        assert [edge.sync for edge in paths[0]] == [1, 2]

    def test_expired_timer_blocks_path(self):
        tree = chain_tree(["a", "b", "c"], [1, 2], timers=[5, 0])
        assert tree.live_paths_to("c") == []

    def test_multiple_paths_to_same_name(self):
        tree = TreeNode.singleton("a")
        tree.attach(chain_tree(["b", "d"], [7]), sync=1, timer=3)
        tree.attach(chain_tree(["c", "d"], [8]), sync=2, timer=3)
        assert len(tree.live_paths_to("d")) == 2

    def test_no_path_to_unknown_name(self):
        tree = chain_tree(["a", "b"], [1])
        assert tree.live_paths_to("z") == []


class TestCheckPathConsistency:
    def test_direct_edge_match_is_consistent(self):
        # a has path a -> b with sync 1; b has a -> edge back to a with sync 1.
        a_tree = chain_tree(["a", "b"], [1])
        b_tree = chain_tree(["b", "a"], [1])
        path = a_tree.live_paths_to("b")[0]
        assert check_path_consistency(b_tree, path, "a")

    def test_mismatched_sync_is_inconsistent(self):
        a_tree = chain_tree(["a", "b"], [1])
        b_tree = chain_tree(["b", "a"], [9])
        path = a_tree.live_paths_to("b")[0]
        assert not check_path_consistency(b_tree, path, "a")

    def test_partner_with_no_knowledge_is_inconsistent(self):
        a_tree = chain_tree(["a", "b"], [1])
        b_tree = TreeNode.singleton("b")
        path = a_tree.live_paths_to("b")[0]
        assert not check_path_consistency(b_tree, path, "a")

    def test_figure2_left_example(self):
        """d's path d->c->b->a matches a's suffix a->b on the final sync value."""
        d_tree = chain_tree(["d", "c", "b", "a"], [3, 2, 1])
        a_tree = chain_tree(["a", "b"], [1])
        path = d_tree.live_paths_to("a")[0]
        assert check_path_consistency(a_tree, path, "d")

    def test_figure2_right_example(self):
        """After a and b re-sync (value 7), a's deeper edge b->c (sync 2) still matches."""
        d_tree = chain_tree(["d", "c", "b", "a"], [3, 2, 1])
        a_tree = chain_tree(["a", "b", "c"], [7, 2])
        path = d_tree.live_paths_to("a")[0]
        assert check_path_consistency(a_tree, path, "d")

    def test_figure2_right_example_with_no_matching_sync(self):
        d_tree = chain_tree(["d", "c", "b", "a"], [3, 2, 1])
        a_tree = chain_tree(["a", "b", "c"], [7, 9])  # neither 7 nor 9 matches 1 or 2
        path = d_tree.live_paths_to("a")[0]
        assert not check_path_consistency(a_tree, path, "d")

    def test_empty_path_is_consistent(self):
        assert check_path_consistency(TreeNode.singleton("b"), [], "a")
