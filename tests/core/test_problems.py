"""Tests for the leader-election / ranking problem predicates."""

import pytest

from repro.core.optimal_silent import SETTLED, OptimalSilentState
from repro.core.problems import (
    count_leaders,
    has_unique_leader,
    is_valid_ranking,
    leaders_from_ranks,
    ranking_defects,
)
from repro.engine.configuration import Configuration


def settled(rank):
    return OptimalSilentState(role=SETTLED, rank=rank, children=0)


class TestIsValidRanking:
    def test_valid_permutation(self):
        assert is_valid_ranking([3, 1, 2], 3)

    def test_rejects_duplicates(self):
        assert not is_valid_ranking([1, 1, 3], 3)

    def test_rejects_missing_and_extra(self):
        assert not is_valid_ranking([1, 2, 4], 3)

    def test_rejects_none(self):
        assert not is_valid_ranking([1, None, 3], 3)

    def test_rejects_wrong_length(self):
        assert not is_valid_ranking([1, 2], 3)
        assert not is_valid_ranking([1, 2, 3, 4], 3)

    def test_zero_based_ranking(self):
        assert is_valid_ranking([0, 2, 1], 3, lowest_rank=0)
        assert not is_valid_ranking([1, 2, 3], 3, lowest_rank=0)


class TestRankingDefects:
    def test_no_defects_for_valid_ranking(self):
        defects = ranking_defects([2, 3, 1], 3)
        assert defects == {"missing": [], "duplicated": [], "out_of_range": []}

    def test_missing_implies_duplicate_by_pigeonhole(self):
        defects = ranking_defects([1, 1, 3], 3)
        assert defects["missing"] == [2]
        assert defects["duplicated"] == [1]

    def test_out_of_range_and_none(self):
        defects = ranking_defects([1, 7, None], 3)
        assert 7 in defects["out_of_range"]
        assert -1 in defects["out_of_range"]
        assert defects["missing"] == [2, 3]


class TestLeaders:
    def test_count_leaders_from_rank(self):
        configuration = Configuration([settled(1), settled(2), settled(3)])
        assert count_leaders(configuration) == 1
        assert has_unique_leader(configuration)

    def test_multiple_leaders(self):
        configuration = Configuration([settled(1), settled(1), settled(3)])
        assert count_leaders(configuration) == 2
        assert not has_unique_leader(configuration)

    def test_custom_leader_predicate(self):
        configuration = Configuration([settled(4), settled(2), settled(3)])
        assert count_leaders(configuration, is_leader=lambda s: s.rank == 4) == 1

    def test_leader_field_takes_precedence(self):
        class WithLeaderBit(OptimalSilentState):
            pass

        state = WithLeaderBit(role=SETTLED, rank=2, children=0)
        state.leader = "L"
        configuration = Configuration([state, settled(1)])
        # One agent via its leader field, one via rank 1.
        assert count_leaders(configuration) == 2

    def test_leaders_from_ranks(self):
        configuration = Configuration([settled(2), settled(1), settled(3)])
        assert leaders_from_ranks(configuration) == [1]

    def test_leaders_from_ranks_custom_leader_rank(self):
        configuration = Configuration([settled(2), settled(1), settled(3)])
        assert leaders_from_ranks(configuration, leader_rank=3) == [2]
