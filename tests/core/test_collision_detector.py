"""Tests for Detect-Name-Collision (Protocol 7)."""

import pytest

from repro.core.sublinear.collision import (
    DirectCollisionDetector,
    HistoryTreeCollisionDetector,
)
from repro.core.sublinear.protocol import SublinearState
from repro.engine.rng import make_rng


def collecting(name, detector):
    return SublinearState(
        role="Collecting", name=name, roster=frozenset({name}), tree=detector.fresh_tree(name)
    )


class TestDirectDetector:
    def test_detects_equal_names(self):
        detector = DirectCollisionDetector()
        a, b = collecting("x", detector), collecting("x", detector)
        assert detector.detect(a, b, make_rng(0))

    def test_no_detection_for_distinct_names(self):
        detector = DirectCollisionDetector()
        a, b = collecting("x", detector), collecting("y", detector)
        assert not detector.detect(a, b, make_rng(0))

    def test_no_tree_state(self):
        detector = DirectCollisionDetector()
        assert detector.fresh_tree("x") is None
        assert detector.state_bits(16) == 0.0


class TestHistoryTreeDetectorConstruction:
    def test_default_parameters(self):
        detector = HistoryTreeCollisionDetector(16, depth=1)
        assert detector.sync_values == 2 * 16 * 16
        assert detector.timer_max >= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HistoryTreeCollisionDetector(1, depth=1)
        with pytest.raises(ValueError):
            HistoryTreeCollisionDetector(8, depth=0)
        with pytest.raises(ValueError):
            HistoryTreeCollisionDetector(8, depth=1, sync_values=1)
        with pytest.raises(ValueError):
            HistoryTreeCollisionDetector(8, depth=1, timer_max=0)

    def test_state_bits_grow_with_depth(self):
        shallow = HistoryTreeCollisionDetector(8, depth=1).state_bits(8)
        deep = HistoryTreeCollisionDetector(8, depth=2).state_bits(8)
        assert deep > shallow


class TestTreeUpdates:
    def test_interaction_records_partner_at_depth_one(self):
        detector = HistoryTreeCollisionDetector(8, depth=2)
        a, b = collecting("a", detector), collecting("b", detector)
        assert not detector.detect(a, b, make_rng(0))
        assert [edge.child.name for edge in a.tree.edges] == ["b"]
        assert [edge.child.name for edge in b.tree.edges] == ["a"]

    def test_interaction_shares_a_single_sync_value(self):
        detector = HistoryTreeCollisionDetector(8, depth=2)
        a, b = collecting("a", detector), collecting("b", detector)
        detector.detect(a, b, make_rng(0))
        assert a.tree.edges[0].sync == b.tree.edges[0].sync

    def test_repeat_interaction_replaces_depth_one_subtree(self):
        detector = HistoryTreeCollisionDetector(8, depth=2)
        a, b = collecting("a", detector), collecting("b", detector)
        detector.detect(a, b, make_rng(0))
        detector.detect(a, b, make_rng(1))
        # The old depth-1 subtree for b is removed and replaced, not duplicated.
        assert [edge.child.name for edge in a.tree.edges] == ["b"]
        assert a.tree.edges[0].timer == detector.timer_max - 1

    def test_trees_stay_simply_labelled(self):
        detector = HistoryTreeCollisionDetector(8, depth=2)
        rng = make_rng(0)
        agents = [collecting(str(i), detector) for i in range(5)]
        for _ in range(300):
            i, j = rng.integers(0, 5), rng.integers(0, 4)
            j = j + (j >= i)
            detector.detect(agents[i], agents[j], rng)
        assert all(agent.tree.is_simply_labelled() for agent in agents)

    def test_tree_depth_never_exceeds_h(self):
        detector = HistoryTreeCollisionDetector(8, depth=2)
        rng = make_rng(1)
        agents = [collecting(str(i), detector) for i in range(6)]
        for _ in range(300):
            i, j = rng.integers(0, 6), rng.integers(0, 5)
            j = j + (j >= i)
            detector.detect(agents[i], agents[j], rng)
        assert all(agent.tree.depth() <= 2 for agent in agents)

    def test_own_name_never_appears_in_own_tree(self):
        detector = HistoryTreeCollisionDetector(8, depth=3)
        rng = make_rng(2)
        agents = [collecting(str(i), detector) for i in range(5)]
        for _ in range(300):
            i, j = rng.integers(0, 5), rng.integers(0, 4)
            j = j + (j >= i)
            detector.detect(agents[i], agents[j], rng)
        for agent in agents:
            names_in_tree = {edge.child.name for edge in agent.tree.iter_edges()}
            assert agent.name not in names_in_tree

    def test_timers_decrement_each_interaction(self):
        detector = HistoryTreeCollisionDetector(8, depth=1, timer_max=5)
        a, b, c = (collecting(name, detector) for name in "abc")
        detector.detect(a, b, make_rng(0))
        timer_after_first = a.tree.edges[0].timer
        detector.detect(a, c, make_rng(1))
        edge_to_b = next(edge for edge in a.tree.edges if edge.child.name == "b")
        assert edge_to_b.timer == timer_after_first - 1


class TestDetection:
    def test_no_false_positive_among_unique_names(self):
        detector = HistoryTreeCollisionDetector(10, depth=2)
        rng = make_rng(3)
        agents = [collecting(f"name{i}", detector) for i in range(10)]
        for _ in range(2000):
            i, j = rng.integers(0, 10), rng.integers(0, 9)
            j = j + (j >= i)
            assert not detector.detect(agents[i], agents[j], rng)

    def test_duplicate_detected_through_intermediary(self):
        """The H = 1 mechanism: b meets a, then meets the impostor a'."""
        detector = HistoryTreeCollisionDetector(8, depth=1)
        a = collecting("dup", detector)
        impostor = collecting("dup", detector)
        b = collecting("other", detector)
        rng = make_rng(4)
        assert not detector.detect(a, b, rng)
        assert detector.detect(b, impostor, rng)

    def test_duplicate_detected_through_two_hops_with_depth_two(self):
        """The H = 2 mechanism: a -> b -> c, then c meets the impostor a'."""
        detector = HistoryTreeCollisionDetector(8, depth=2)
        a = collecting("dup", detector)
        impostor = collecting("dup", detector)
        b = collecting("b", detector)
        c = collecting("c", detector)
        rng = make_rng(5)
        assert not detector.detect(a, b, rng)
        assert not detector.detect(b, c, rng)
        assert detector.detect(c, impostor, rng)

    def test_two_hop_chain_not_detected_with_depth_one(self):
        """With H = 1 the two-hop history is truncated away, so no detection."""
        detector = HistoryTreeCollisionDetector(8, depth=1)
        a = collecting("dup", detector)
        impostor = collecting("dup", detector)
        b = collecting("b", detector)
        c = collecting("c", detector)
        rng = make_rng(6)
        detector.detect(a, b, rng)
        detector.detect(b, c, rng)
        assert not detector.detect(c, impostor, rng)

    def test_direct_meeting_of_fresh_duplicates_is_not_detected(self):
        """Protocol 7 never checks paths ending in the agent's own name.

        Two fresh duplicates meeting directly therefore go unnoticed by the
        tree detector; the collision is caught once an intermediary has heard
        of one of them (the previous tests), which the paper shows happens
        within O(T_H) time anyway.
        """
        detector = HistoryTreeCollisionDetector(8, depth=1)
        a = collecting("dup", detector)
        impostor = collecting("dup", detector)
        assert not detector.detect(a, impostor, make_rng(7))
        # The exchanged subtrees rooted at the agents' own name are pruned.
        assert a.tree.node_count() == 1 and impostor.tree.node_count() == 1

    def test_expired_timers_suppress_checking(self):
        detector = HistoryTreeCollisionDetector(8, depth=1, timer_max=1)
        a = collecting("dup", detector)
        impostor = collecting("dup", detector)
        b = collecting("b", detector)
        c = collecting("c", detector)
        rng = make_rng(8)
        detector.detect(a, b, rng)
        # b's edge to "dup" had timer 1 and is decremented to 0 in that same
        # interaction, so when b later meets the impostor the stale path is
        # not checked and no collision is declared.
        assert not detector.detect(b, impostor, rng)
