"""Tests for the synthetic-coin derandomization (Section 6)."""

import pytest

from repro.derandomize.synthetic_coin import (
    ALG,
    FLIP,
    SyntheticCoinProtocol,
    SyntheticCoinState,
    expected_interactions_per_bit,
)
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation


class TestRoles:
    def test_roles_toggle_every_interaction(self):
        protocol = SyntheticCoinProtocol(4, bits_needed=0)
        a = SyntheticCoinState(coin_role=ALG)
        b = SyntheticCoinState(coin_role=FLIP)
        protocol.transition(a, b, make_rng(0))
        assert a.coin_role == FLIP and b.coin_role == ALG

    def test_initiator_in_alg_with_flip_partner_harvests_one(self):
        protocol = SyntheticCoinProtocol(4, bits_needed=4)
        a = SyntheticCoinState(coin_role=ALG, bits_needed=4)
        b = SyntheticCoinState(coin_role=FLIP, bits_needed=4)
        protocol.transition(a, b, make_rng(0))
        assert a.bits == "1" and b.bits == ""

    def test_responder_in_alg_with_flip_partner_harvests_zero(self):
        protocol = SyntheticCoinProtocol(4, bits_needed=4)
        a = SyntheticCoinState(coin_role=FLIP, bits_needed=4)
        b = SyntheticCoinState(coin_role=ALG, bits_needed=4)
        protocol.transition(a, b, make_rng(0))
        assert b.bits == "0" and a.bits == ""

    def test_same_roles_harvest_nothing(self):
        protocol = SyntheticCoinProtocol(4, bits_needed=4)
        a = SyntheticCoinState(coin_role=ALG, bits_needed=4)
        b = SyntheticCoinState(coin_role=ALG, bits_needed=4)
        protocol.transition(a, b, make_rng(0))
        assert a.bits == "" and b.bits == ""

    def test_done_agent_stops_harvesting(self):
        protocol = SyntheticCoinProtocol(4, bits_needed=1)
        a = SyntheticCoinState(coin_role=ALG, bits="1", bits_needed=1)
        b = SyntheticCoinState(coin_role=FLIP, bits_needed=1)
        protocol.transition(a, b, make_rng(0))
        assert a.bits == "1"


class TestStatistics:
    def test_all_agents_collect_their_bits(self):
        protocol = SyntheticCoinProtocol(24, bits_needed=8)
        simulation = Simulation(protocol, rng=0)
        result = simulation.run_until_correct(max_interactions=200_000)
        assert result.stopped
        assert all(len(state.bits) == 8 for state in simulation.configuration)

    def test_bits_are_roughly_unbiased(self):
        protocol = SyntheticCoinProtocol(32, bits_needed=24)
        simulation = Simulation(protocol, rng=1)
        simulation.run_until_correct(max_interactions=400_000)
        bits = "".join(protocol.harvested_bits(simulation.configuration))
        fraction = bits.count("1") / len(bits)
        assert 0.42 < fraction < 0.58

    def test_harvest_rate_close_to_four_interactions_per_bit(self):
        protocol = SyntheticCoinProtocol(32, bits_needed=16)
        simulation = Simulation(protocol, rng=2)
        simulation.run_until_correct(max_interactions=400_000)
        total_interactions = sum(state.interactions for state in simulation.configuration)
        total_bits = sum(len(state.bits) for state in simulation.configuration)
        rate = total_interactions / total_bits
        # Agents that finish early keep interacting, so the aggregate rate is
        # biased upward; it must still be in the vicinity of 4.
        assert 3.0 < rate < 8.0

    def test_expected_interactions_constant(self):
        assert expected_interactions_per_bit() == 4.0

    def test_invalid_bits_needed(self):
        with pytest.raises(ValueError):
            SyntheticCoinProtocol(8, bits_needed=-1)
