"""Metrics registry: families, snapshot/merge, Prometheus rendering."""

import math

import pytest

from repro.telemetry import metrics
from repro.telemetry.metrics import MetricsRegistry, WINDOW_BUCKETS


@pytest.fixture(autouse=True)
def clean_state():
    """Each test gets pristine module flags and a fresh global registry."""
    metrics.reset_registry()
    yield
    metrics.reset_registry()
    metrics.disable()
    metrics.set_profiling(False)


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "help", engine="loop").inc()
        registry.counter("repro_test_total", "help", engine="loop").inc(2.5)
        sample = registry.snapshot()["samples"][0]
        assert sample["value"] == 3.5
        assert sample["labels"] == {"engine": "loop"}

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("repro_depth", "help", state="pending").set(4)
        registry.gauge("repro_depth", "help", state="pending").set(1)
        assert registry.snapshot()["samples"][0]["value"] == 1.0

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_sizes", "help", buckets=(1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        sample = registry.snapshot()["samples"][0]
        assert sample["buckets"] == [1, 1, 1, 1]  # one per bucket incl. +Inf
        assert sample["count"] == 4
        assert sample["sum"] == 555.5

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "help", engine="loop").inc()
        registry.counter("repro_x_total", "help", engine="counts").inc(3)
        values = {
            sample["labels"]["engine"]: sample["value"]
            for sample in registry.snapshot()["samples"]
        }
        assert values == {"loop": 1.0, "counts": 3.0}

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "help").inc()
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_x_total", "help")

    def test_bucket_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", "help", buckets=(1, 2))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("repro_h", "help", buckets=(1, 2, 3))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name", "help")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("repro_ok", "help", **{"bad-label": "x"})

    def test_unsorted_histogram_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted and unique"):
            MetricsRegistry().histogram("repro_h", "help", buckets=(3, 1, 2))


class TestSnapshotMerge:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        source = MetricsRegistry()
        source.counter("repro_c_total", "help").inc(2)
        source.gauge("repro_g", "help").set(7)
        source.histogram("repro_h", "help", buckets=(1, 10)).observe(5)

        target = MetricsRegistry()
        target.counter("repro_c_total", "help").inc(1)
        target.gauge("repro_g", "help").set(99)
        target.histogram("repro_h", "help", buckets=(1, 10)).observe(0.5)
        target.merge(source.snapshot())

        samples = {s["name"]: s for s in target.snapshot()["samples"]}
        assert samples["repro_c_total"]["value"] == 3.0
        assert samples["repro_g"]["value"] == 7.0
        assert samples["repro_h"]["buckets"] == [1, 1, 0]
        assert samples["repro_h"]["count"] == 2

    def test_merge_into_empty_registry_reconstructs(self):
        source = MetricsRegistry()
        source.histogram("repro_h", "help", buckets=(2, 4)).observe(3)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_rejects_orphan_sample(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError, match="no family entry"):
            target.merge({"families": {}, "samples": [{"name": "repro_x", "value": 1}]})

    def test_snapshot_is_json_safe_and_detached(self):
        import json

        registry = MetricsRegistry()
        registry.counter("repro_c_total", "help").inc()
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        registry.counter("repro_c_total", "help").inc()
        assert snapshot["samples"][0]["value"] == 1.0  # detached copy


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Jobs processed.", outcome="done").inc(4)
        registry.gauge("repro_queue_depth", "Queue depth.", state="pending").set(2)
        text = registry.render_prometheus()
        assert "# HELP repro_jobs_total Jobs processed.\n" in text
        assert "# TYPE repro_jobs_total counter\n" in text
        assert 'repro_jobs_total{outcome="done"} 4\n' in text
        assert "# TYPE repro_queue_depth gauge\n" in text
        assert 'repro_queue_depth{state="pending"} 2\n' in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_window_size", "Windows.", buckets=(1, 4), engine="counts"
        )
        for value in (1, 3, 100):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'repro_window_size_bucket{engine="counts",le="1"} 1\n' in text
        assert 'repro_window_size_bucket{engine="counts",le="4"} 2\n' in text
        assert 'repro_window_size_bucket{engine="counts",le="+Inf"} 3\n' in text
        assert 'repro_window_size_sum{engine="counts"} 104\n' in text
        assert 'repro_window_size_count{engine="counts"} 3\n' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "help", kind='we"ird\\').inc()
        text = registry.render_prometheus()
        assert 'kind="we\\"ird\\\\"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_rendered_format_parses_back(self):
        """Every non-comment line is `name{labels} value` with a float value."""
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "help", engine="loop").inc(2)
        registry.histogram("repro_b", "help", buckets=WINDOW_BUCKETS).observe(8)
        for line in registry.render_prometheus().splitlines():
            if line.startswith("#"):
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part
            float(value_part.replace("+Inf", "inf"))


class TestProbeGuards:
    def test_probes_are_noops_when_disabled(self):
        metrics.record_window("loop", 16)
        metrics.record_trial("loop", 100)
        metrics.record_fault_injection("crash", 3)
        metrics.heartbeat("worker-0")
        assert metrics.registry().snapshot()["samples"] == []

    def test_probes_record_when_enabled(self):
        with metrics.telemetry_session():
            metrics.record_window("counts", 64)
            metrics.record_halving(2)
            metrics.record_drift_cap()
        samples = {s["name"]: s for s in metrics.registry().snapshot()["samples"]
                   if "labels" not in s or s["labels"].get("engine") != "loop"}
        assert samples["repro_windows_total"]["value"] == 1.0
        assert samples["repro_interactions_total"]["value"] == 64.0
        assert samples["repro_feasibility_halvings_total"]["value"] == 2.0
        assert samples["repro_drift_cap_events_total"]["value"] == 1.0

    def test_telemetry_session_restores_flags(self):
        assert not metrics.enabled() and not metrics.profiling()
        with metrics.telemetry_session(profile=True):
            assert metrics.enabled() and metrics.profiling()
        assert not metrics.enabled() and not metrics.profiling()

    def test_stage_breakdown_sorted_desc(self):
        with metrics.telemetry_session(profile=True):
            metrics.record_stage_seconds("loop", "table_apply", 0.5)
            metrics.record_stage_seconds("loop", "stop_check", 0.1)
            metrics.record_stage_seconds("loop", "table_apply", 0.25)
        rows = metrics.stage_breakdown(metrics.registry().snapshot())
        assert rows == [
            {"engine": "loop", "stage": "table_apply", "seconds": 0.75},
            {"engine": "loop", "stage": "stop_check", "seconds": 0.1},
        ]

    def test_window_buckets_cover_tau_leap_range(self):
        assert WINDOW_BUCKETS[0] == 1 and WINDOW_BUCKETS[-1] >= 10**6
        assert list(WINDOW_BUCKETS) == sorted(WINDOW_BUCKETS)
        assert not math.isinf(WINDOW_BUCKETS[-1])
