"""Trace writer/reader: format, context scopes, spans, malformed inputs."""

import json
import threading

import pytest

import repro
from repro.telemetry.tracing import (
    TRACE_FORMAT,
    TraceError,
    TraceWriter,
    current_tracer,
    read_trace,
    set_tracer,
    trace_to,
)


class TestWriter:
    def test_header_first_with_format_and_version(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        TraceWriter(path).close()
        records = read_trace(path)
        assert records[0]["kind"] == "header"
        assert records[0]["format"] == TRACE_FORMAT
        assert records[0]["version"] == repro.__version__

    def test_events_carry_run_id_and_fields(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path, run_id="abc123")
        writer.emit("trial", engine="loop", interactions=42)
        writer.close()
        header, trial = read_trace(path)
        assert header["run_id"] == trial["run_id"] == "abc123"
        assert trial["engine"] == "loop"
        assert trial["interactions"] == 42
        assert trial["ts"] >= header["ts"]

    def test_context_tags_scope_only(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        with writer.context(job="j1"):
            writer.emit("claim")
            with writer.context(worker="w0"):
                writer.emit("trial")
        writer.emit("outside")
        writer.close()
        _, claim, trial, outside = read_trace(path)
        assert claim["job"] == "j1" and "worker" not in claim
        assert trial["job"] == "j1" and trial["worker"] == "w0"
        assert "job" not in outside

    def test_context_is_thread_local(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        barrier = threading.Barrier(2)

        def tagged(job):
            with writer.context(job=job):
                barrier.wait(timeout=10)  # both threads inside their scopes
                writer.emit("trial", source=job)

        threads = [threading.Thread(target=tagged, args=(j,)) for j in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        writer.close()
        trials = [r for r in read_trace(path) if r["kind"] == "trial"]
        assert len(trials) == 2
        for record in trials:
            assert record["job"] == record["source"]  # never cross-tagged

    def test_span_measures_duration_and_merges_extra(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        with writer.span("job", job="j1") as extra:
            extra["outcome"] = "done"
        writer.close()
        record = read_trace(path)[-1]
        assert record["kind"] == "job"
        assert record["dur"] >= 0.0
        assert record["outcome"] == "done"

    def test_append_mode_preserves_existing_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = TraceWriter(path, run_id="one")
        first.emit("trial")
        first.close()
        second = TraceWriter(path, run_id="two", append=True)
        second.emit("trial")
        second.close()
        run_ids = [r["run_id"] for r in read_trace(path)]
        assert run_ids == ["one", "one", "two", "two"]

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        writer.close()
        writer.emit("late")
        assert len(read_trace(path)) == 1

    def test_records_written_counter(self, tmp_path):
        writer = TraceWriter(tmp_path / "trace.jsonl")
        assert writer.records_written == 1  # the header
        writer.emit("trial")
        writer.close()
        assert writer.records_written == 2

    def test_non_json_fields_fall_back_to_str(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        writer.emit("trial", where=path)  # Path is not JSON-serializable
        writer.close()
        assert read_trace(path)[-1]["where"] == str(path)


class TestGlobalTracer:
    def test_set_tracer_returns_previous(self, tmp_path):
        assert current_tracer() is None
        writer = TraceWriter(tmp_path / "trace.jsonl")
        try:
            assert set_tracer(writer) is None
            assert current_tracer() is writer
        finally:
            assert set_tracer(None) is writer
            writer.close()

    def test_trace_to_scope_restores(self, tmp_path):
        with trace_to(tmp_path / "trace.jsonl") as writer:
            assert current_tracer() is writer
            writer.emit("trial")
        assert current_tracer() is None
        assert len(read_trace(tmp_path / "trace.jsonl")) == 2


class TestReader:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="no such trace file"):
            read_trace(tmp_path / "nope.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty trace file"):
            read_trace(path)

    def test_non_json_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "header"}\nnot json\n')
        with pytest.raises(TraceError, match="line 2 is not JSON"):
            read_trace(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(TraceError, match="not a trace record"):
            read_trace(path)

    def test_record_without_kind(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ts": 1}\n')
        with pytest.raises(TraceError, match="not a trace record"):
            read_trace(path)

    def test_first_record_must_be_tagged_header(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "trial"}\n')
        with pytest.raises(TraceError, match="not a repro trace"):
            read_trace(path)
        path.write_text(json.dumps({"kind": "header", "format": "other/v9"}) + "\n")
        with pytest.raises(TraceError, match="not a repro trace"):
            read_trace(path)

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        writer.emit("trial")
        writer.close()
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert len(read_trace(path)) == 2
