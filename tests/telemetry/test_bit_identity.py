"""The telemetry bit-identity guarantee, test-gated as promised in ISSUE/docs.

Telemetry must be a pure observer: enabling metrics, per-stage profiling,
and tracing together must leave every engine's RNG stream untouched and
every artifact byte-identical.  The matrix covers the three engines, both
``--jobs`` layouts, and telemetry on vs off.
"""

import itertools

import pytest

from repro.engine.rng import make_rng
from repro.engine.run_config import RunConfig, make_simulation
from repro.experiments.registry import get_experiment
from repro.processes.epidemic import TwoWayEpidemicProtocol
from repro.serve.cache import canonicalize_artifact
from repro.telemetry import metrics, tracing

ENGINES = ("loop", "compiled", "counts")

#: Reduced epidemic_convergence parameters: small but multi-trial and
#: multi-population so the harness seed-derivation paths are all exercised.
PARAMS = {"ns": [64], "trials": 4}


def run_artifact(engine: str, jobs: int, telemetry_on: bool, tmp_path) -> bytes:
    spec = get_experiment("epidemic_convergence")
    config = RunConfig(seed=11, engine=engine, jobs=jobs)
    if not telemetry_on:
        result = spec.run(scale="quick", run=config, **PARAMS)
    else:
        metrics.reset_registry()
        trace_path = tmp_path / f"{engine}-{jobs}.jsonl"
        with metrics.telemetry_session(profile=True):
            with tracing.trace_to(trace_path):
                result = spec.run(scale="quick", run=config, **PARAMS)
        assert len(tracing.read_trace(trace_path)) > 1  # trials were traced
        snapshot = metrics.registry().snapshot()
        assert any(
            sample["name"] == "repro_trials_total"
            for sample in snapshot["samples"]
        )  # metrics were collected, not just enabled
    return canonicalize_artifact(result).to_json().encode("utf-8")


@pytest.mark.parametrize("engine,jobs", itertools.product(ENGINES, (1, 2)))
def test_artifacts_identical_with_and_without_telemetry(engine, jobs, tmp_path):
    plain = run_artifact(engine, jobs, telemetry_on=False, tmp_path=tmp_path)
    instrumented = run_artifact(engine, jobs, telemetry_on=True, tmp_path=tmp_path)
    assert plain == instrumented


@pytest.mark.parametrize("engine", ENGINES)
def test_rng_stream_untouched_by_telemetry(engine):
    """Stronger than artifact equality: the generator state itself matches."""

    def converge(telemetry_on: bool):
        protocol = TwoWayEpidemicProtocol(64)
        rng = make_rng(23)
        config = RunConfig(seed=23, engine=engine, stop="correct")
        simulation = make_simulation(protocol, config, rng=rng)
        if telemetry_on:
            metrics.reset_registry()
            with metrics.telemetry_session(profile=True):
                result = simulation.run(config)
        else:
            result = simulation.run(config)
        return result, rng.bit_generator.state

    plain_result, plain_state = converge(telemetry_on=False)
    traced_result, traced_state = converge(telemetry_on=True)
    assert plain_result.interactions == traced_result.interactions
    assert plain_result.parallel_time == traced_result.parallel_time
    assert plain_result.stopped == traced_result.stopped
    assert plain_state == traced_state


@pytest.mark.parametrize("engine", ("compiled", "counts"))
def test_trial_batch_identical_with_and_without_telemetry(engine, tmp_path):
    """The trial-batched vectorized paths are observers too."""
    spec = get_experiment("epidemic_convergence")
    config = RunConfig(seed=11, engine=engine, trial_batch=2)
    plain = canonicalize_artifact(
        spec.run(scale="quick", run=config, **PARAMS)
    ).to_json()
    metrics.reset_registry()
    with metrics.telemetry_session(profile=True):
        instrumented = canonicalize_artifact(
            spec.run(scale="quick", run=config, **PARAMS)
        ).to_json()
    assert plain == instrumented
