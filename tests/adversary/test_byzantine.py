"""Tests for the persistent Byzantine overlay (:mod:`repro.adversary.byzantine`).

Four layers, mirroring the engine-equivalence suite:

1. **Spec contract** -- validation, count clamping, serialization round trip.
2. **Table structure** -- exhaustive checks on the extended table: the
   honest/honest block *is* the base table, adversarial indices stay frozen,
   Byzantine/Byzantine pairs are null, ``cheat_then_punish`` flips exactly on
   null base entries.
3. **Selection determinism** -- the adversarial agent set is bit-identical
   across the loop/compiled/counts engines and across ``--jobs`` layouts at
   matched seeds (the acceptance contract of the byzantine experiments).
4. **Outcome law** -- stabilization-time distributions under the overlay are
   KS-indistinguishable across the three engines, and a Hypothesis property
   checks that Byzantine agents never leave their hostile table (and honest
   agents never enter it) over arbitrary strategies, fractions, and seeds.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.adversary.byzantine import (
    BYZANTINE_AGENTS_KEY,
    BYZANTINE_COUNT_KEY,
    BYZANTINE_DIGEST_KEY,
    BYZANTINE_STATE_COUNTS_KEY,
    BYZANTINE_STRATEGIES,
    BYZANTINE_STRATEGY_KEY,
    HONEST_TAG,
    ByzantineSpec,
    TaggedState,
    build_byzantine_overlay,
)
from repro.core.epsilon_consensus import EpsilonConsensusProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.compiled import ProtocolCompiler, _as_raw_tables
from repro.engine.rng import make_rng
from repro.engine.run_config import ENGINES, RunConfig, make_simulation
from repro.experiments.harness import run_trials
from repro.processes.epidemic import TwoWayEpidemicProtocol

KS_ALPHA = 0.001


# -- spec contract -------------------------------------------------------------------


class TestByzantineSpec:
    def test_strategies_catalogue(self):
        assert BYZANTINE_STRATEGIES == (
            "worst_case",
            "random_reply",
            "cheat_then_punish",
        )

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.1, 1.5])
    def test_fraction_must_be_in_open_unit_interval(self, fraction):
        with pytest.raises(ValueError, match="fraction"):
            ByzantineSpec(fraction=fraction)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            ByzantineSpec(fraction=0.2, strategy="bogus")

    def test_count_rounds_and_clamps(self):
        assert ByzantineSpec(fraction=0.25).count(12) == 3
        # At least one adversary and at least one honest agent.
        assert ByzantineSpec(fraction=0.01).count(10) == 1
        assert ByzantineSpec(fraction=0.99).count(10) == 9

    def test_dict_round_trip(self):
        spec = ByzantineSpec(fraction=0.35, strategy="cheat_then_punish")
        assert ByzantineSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            ByzantineSpec.from_dict({"fraction": 0.2, "colour": "red"})

    def test_describe_names_fraction_and_strategy(self):
        text = ByzantineSpec(fraction=0.2, strategy="random_reply").describe()
        assert "20%" in text and "random_reply" in text


# -- extended-table structure (exhaustive on small protocols) ------------------------


def overlay_for(protocol, strategy, fraction=0.25):
    compiled = ProtocolCompiler().compile(protocol)
    return build_byzantine_overlay(
        protocol, compiled, ByzantineSpec(fraction=fraction, strategy=strategy)
    )


@pytest.mark.parametrize("strategy", BYZANTINE_STRATEGIES)
class TestOverlayTables:
    def test_honest_block_is_the_base_table(self, strategy):
        """Tag-0/tag-0 entries agree with the base table branch for branch."""
        protocol = SilentNStateSSR(6)
        overlay = overlay_for(protocol, strategy)
        base = _as_raw_tables(overlay.base)
        ext = _as_raw_tables(overlay.compiled)
        size, ext_size = base["num_states"], ext["num_states"]
        assert ext_size == overlay.tags * size
        for a in range(size):
            for b in range(size):
                row, ext_row = a * size + b, a * ext_size + b
                assert bool(ext["changes"][ext_row]) == bool(base["changes"][row])
                base_branches = {
                    (int(base["initiator"][row, k]), int(base["responder"][row, k])): float(
                        base["probability"][row, k]
                    )
                    for k in range(base["initiator"].shape[1])
                    if base["probability"][row, k] > 0
                }
                ext_branches = {}
                for k in range(ext["initiator"].shape[1]):
                    if ext["probability"][ext_row, k] > 0:
                        key = (
                            int(ext["initiator"][ext_row, k]),
                            int(ext["responder"][ext_row, k]),
                        )
                        ext_branches[key] = ext_branches.get(key, 0.0) + float(
                            ext["probability"][ext_row, k]
                        )
                assert ext_branches == pytest.approx(base_branches)

    def test_byzantine_indices_never_reach_honest_tags(self, strategy):
        """No positive-probability branch maps a tagged state back to tag 0.

        This is the table-level form of "Byzantine agents never leave their
        hostile table": every outcome of a tagged participant stays tagged.
        """
        protocol = SilentNStateSSR(6)
        overlay = overlay_for(protocol, strategy)
        ext = _as_raw_tables(overlay.compiled)
        size = overlay.num_base_states
        ext_size = ext["num_states"]
        for a in range(ext_size):
            for b in range(ext_size):
                row = a * ext_size + b
                for k in range(ext["initiator"].shape[1]):
                    if ext["probability"][row, k] <= 0:
                        continue
                    if a >= size:
                        assert int(ext["initiator"][row, k]) >= size
                    if b >= size:
                        assert int(ext["responder"][row, k]) >= size

    def test_honest_outcomes_stay_honest(self, strategy):
        """Symmetrically: an honest participant never acquires a tag."""
        protocol = SilentNStateSSR(6)
        overlay = overlay_for(protocol, strategy)
        ext = _as_raw_tables(overlay.compiled)
        size = overlay.num_base_states
        ext_size = ext["num_states"]
        for a in range(ext_size):
            for b in range(ext_size):
                row = a * ext_size + b
                for k in range(ext["initiator"].shape[1]):
                    if ext["probability"][row, k] <= 0:
                        continue
                    if a < size:
                        assert int(ext["initiator"][row, k]) < size
                    if b < size:
                        assert int(ext["responder"][row, k]) < size

    def test_branch_probabilities_sum_to_one(self, strategy):
        protocol = SilentNStateSSR(6)
        overlay = overlay_for(protocol, strategy)
        ext = _as_raw_tables(overlay.compiled)
        totals = ext["probability"].sum(axis=1)
        assert np.allclose(totals, 1.0)


class TestStrategySpecificTables:
    def test_worst_case_freezes_the_adversary_and_nulls_byz_pairs(self):
        protocol = TwoWayEpidemicProtocol(8)
        overlay = overlay_for(protocol, "worst_case")
        ext = _as_raw_tables(overlay.compiled)
        size, ext_size = overlay.num_base_states, ext["num_states"]
        for a in range(ext_size):
            for b in range(ext_size):
                row = a * ext_size + b
                if a >= size:  # adversarial initiator: its own index is frozen
                    assert all(
                        int(ext["initiator"][row, k]) == a
                        for k in range(ext["initiator"].shape[1])
                        if ext["probability"][row, k] > 0
                    )
                if b >= size:
                    assert all(
                        int(ext["responder"][row, k]) == b
                        for k in range(ext["responder"].shape[1])
                        if ext["probability"][row, k] > 0
                    )
                if a >= size and b >= size:
                    assert not ext["changes"][row]

    def test_worst_case_claim_maximizes_damage_on_epidemic(self):
        """On the epidemic, the worst claim against a susceptible responder is
        'infected' (it flips the responder), and no claim moves an infected
        responder -- so the byz/susceptible entry changes and byz/infected
        does not."""
        protocol = TwoWayEpidemicProtocol(8)
        overlay = overlay_for(protocol, "worst_case")
        compiled = overlay.compiled
        base = overlay.base
        ext = _as_raw_tables(compiled)
        ext_size = ext["num_states"]
        infected = {
            s: base.states[s].infected for s in range(base.num_states)
        }
        for b, is_infected in infected.items():
            row = (overlay.num_base_states + 0) * ext_size + b
            # The two-way epidemic infects in both directions, so any honest
            # partner that can change, does under the worst-case claim.
            assert bool(ext["changes"][row]) == (not is_infected)

    def test_cheat_then_punish_flips_on_null_interactions_only(self):
        protocol = SilentNStateSSR(6)
        overlay = overlay_for(protocol, "cheat_then_punish")
        assert overlay.tags == 3
        base = _as_raw_tables(overlay.base)
        ext = _as_raw_tables(overlay.compiled)
        size, ext_size = overlay.num_base_states, ext["num_states"]
        for a in range(size):
            for b in range(size):
                base_row = a * size + b
                # Cooperating cheater as initiator against an honest responder.
                row = (size + a) * ext_size + b
                outcomes = [
                    (int(ext["initiator"][row, k]), int(ext["responder"][row, k]))
                    for k in range(ext["initiator"].shape[1])
                    if ext["probability"][row, k] > 0
                ]
                if base["changes"][base_row]:
                    # Active base pair: the cheater keeps cooperating (tag 1).
                    assert all(size <= out_i < 2 * size for out_i, _ in outcomes)
                else:
                    # Null base pair: permanent flip to the punish tag (tag 2).
                    assert outcomes == [(2 * size + a, b)]
                assert ext["changes"][row]

    def test_random_reply_merges_duplicate_outcomes(self):
        """The epidemic collapses both claims to at most two outcomes, so the
        byz/honest mixture rows stay within the base branch budget and their
        probabilities are a convex combination over the claims."""
        protocol = TwoWayEpidemicProtocol(8)
        overlay = overlay_for(protocol, "random_reply")
        ext = _as_raw_tables(overlay.compiled)
        size, ext_size = overlay.num_base_states, ext["num_states"]
        susceptible = next(
            s for s in range(size) if not overlay.base.states[s].infected
        )
        row = (size + 0) * ext_size + susceptible
        branches = {
            int(ext["responder"][row, k]): float(ext["probability"][row, k])
            for k in range(ext["responder"].shape[1])
            if ext["probability"][row, k] > 0
        }
        # A random claim is 'infected' half the time: the susceptible honest
        # responder is infected with probability 1/2.
        infected = next(s for s in range(size) if overlay.base.states[s].infected)
        assert branches == pytest.approx({infected: 0.5, susceptible: 0.5})


# -- cross-engine selection determinism ----------------------------------------------


def byzantine_trials(engine, spec, *, seed=11, trials=3, jobs=1):
    """The acceptance harness: identical per-trial seeds on every engine."""
    return run_trials(
        protocol_factory=lambda: SilentNStateSSR(12),
        trials=trials,
        run=RunConfig(
            engine=engine,
            stop="stabilized",
            seed=seed,
            jobs=jobs,
            byzantine=spec,
            max_interactions=40_000,
        ),
        configuration_factory=lambda protocol, rng: protocol.random_configuration(rng),
    )


@pytest.mark.parametrize("strategy", BYZANTINE_STRATEGIES)
class TestSelectionEquivalence:
    def test_marked_state_counts_identical_across_all_engines(self, strategy):
        """The per-state adversary histogram is bit-identical on all three
        engines at matched seeds (the counts engine's whole selection)."""
        spec = ByzantineSpec(fraction=0.25, strategy=strategy)
        per_engine = {
            engine: [
                result.extra[BYZANTINE_STATE_COUNTS_KEY]
                for result in byzantine_trials(engine, spec)
            ]
            for engine in ENGINES
        }
        assert per_engine["loop"] == per_engine["compiled"] == per_engine["counts"]
        for counts_list in per_engine["loop"]:
            assert sum(counts_list) == spec.count(12)

    def test_marked_agent_ids_identical_on_identity_engines(self, strategy):
        """Loop and compiled agree on *which* agents turn Byzantine."""
        spec = ByzantineSpec(fraction=0.25, strategy=strategy)
        loop = byzantine_trials("loop", spec)
        compiled = byzantine_trials("compiled", spec)
        for left, right in zip(loop, compiled):
            assert left.extra[BYZANTINE_AGENTS_KEY] == right.extra[BYZANTINE_AGENTS_KEY]
            assert left.extra[BYZANTINE_DIGEST_KEY] == right.extra[BYZANTINE_DIGEST_KEY]
            assert len(left.extra[BYZANTINE_AGENTS_KEY]) == spec.count(12)

    @pytest.mark.parametrize("engine", ["compiled", "counts"])
    def test_selection_and_results_invariant_under_jobs(self, strategy, engine):
        """--jobs redistributes work, never randomness: same digests, same
        stabilization times for every worker layout."""
        spec = ByzantineSpec(fraction=0.25, strategy=strategy)
        sequential = byzantine_trials(engine, spec, trials=4, jobs=1)
        parallel = byzantine_trials(engine, spec, trials=4, jobs=3)
        assert [r.extra[BYZANTINE_DIGEST_KEY] for r in sequential] == [
            r.extra[BYZANTINE_DIGEST_KEY] for r in parallel
        ]
        assert [r.parallel_time for r in sequential] == [
            r.parallel_time for r in parallel
        ]
        assert [r.stopped for r in sequential] == [r.stopped for r in parallel]


class TestAnnotation:
    def test_extra_keys_present_and_consistent(self):
        spec = ByzantineSpec(fraction=0.3, strategy="worst_case")
        (result,) = byzantine_trials("compiled", spec, trials=1)
        assert result.extra[BYZANTINE_STRATEGY_KEY] == "worst_case"
        assert result.extra[BYZANTINE_COUNT_KEY] == spec.count(12)
        assert sum(result.extra[BYZANTINE_STATE_COUNTS_KEY]) == spec.count(12)
        assert isinstance(result.extra[BYZANTINE_DIGEST_KEY], int)

    def test_counts_engine_has_no_agent_ids(self):
        """Count vectors carry no identities; the counts engine records the
        per-state histogram (cross-engine comparable) but no id list."""
        spec = ByzantineSpec(fraction=0.3, strategy="worst_case")
        (result,) = byzantine_trials("counts", spec, trials=1)
        assert BYZANTINE_AGENTS_KEY not in result.extra
        assert sum(result.extra[BYZANTINE_STATE_COUNTS_KEY]) == spec.count(12)


# -- outcome-distribution equivalence ------------------------------------------------


class TestOutcomeEquivalence:
    TRIALS = 40
    ENGINE_SEEDS = {"loop": 1234, "compiled": 5678, "counts": 9012}

    def stabilization_times(self, engine, seed):
        results = run_trials(
            protocol_factory=lambda: EpsilonConsensusProtocol(16),
            trials=self.TRIALS,
            run=RunConfig(
                engine=engine,
                stop="stabilized",
                seed=seed,
                byzantine=ByzantineSpec(fraction=0.25, strategy="random_reply"),
                max_interactions=60_000,
            ),
        )
        assert all(result.stopped for result in results)
        return np.asarray([result.parallel_time for result in results])

    def test_engines_agree_on_byzantine_stabilization_law(self):
        """One law, three samplers, under a persistent adversary."""
        times = {
            engine: self.stabilization_times(engine, seed)
            for engine, seed in self.ENGINE_SEEDS.items()
        }
        for first, second in itertools.combinations(self.ENGINE_SEEDS, 2):
            ks = stats.ks_2samp(times[first], times[second])
            assert ks.pvalue > KS_ALPHA, (
                f"byzantine stabilization distributions differ between "
                f"{first} and {second} (KS p={ks.pvalue:.2e})"
            )
            ratio = times[second].mean() / times[first].mean()
            assert 0.5 < ratio < 2.0, (
                f"mean byzantine stabilization times diverge between "
                f"{first} and {second} (ratio {ratio:.2f})"
            )


# -- the hostility invariant (Hypothesis) --------------------------------------------


@st.composite
def byzantine_runs(draw):
    strategy = draw(st.sampled_from(BYZANTINE_STRATEGIES))
    fraction = draw(st.floats(min_value=0.1, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return strategy, fraction, seed


class TestHostilityInvariant:
    @given(byzantine_runs())
    @settings(max_examples=20, deadline=None)
    def test_byzantine_agents_never_leave_the_hostile_table(self, data):
        """Marked agents carry a hostile tag at every step of a loop run,
        honest agents never acquire one, and ``cheat_then_punish`` tags are
        monotone (a punisher never resumes cooperating)."""
        strategy, fraction, seed = data
        spec = ByzantineSpec(fraction=fraction, strategy=strategy)
        protocol = SilentNStateSSR(8)
        rng = make_rng(seed)
        configuration = protocol.random_configuration(rng)
        config = RunConfig(
            engine="loop", stop="stabilized", byzantine=spec, max_interactions=0
        )
        simulation = make_simulation(
            protocol, config, configuration=configuration, rng=rng
        )
        simulation.run(config)  # installs the overlay, runs no interactions
        marked = {int(agent) for agent in simulation._byzantine.marked_ids}
        assert len(marked) == spec.count(8)
        last_tags = {}
        for _ in range(6):
            simulation.run(30)
            for agent, state in enumerate(simulation.configuration):
                assert isinstance(state, TaggedState)
                if agent in marked:
                    assert state.tag != HONEST_TAG
                    if strategy == "cheat_then_punish":
                        assert state.tag >= last_tags.get(agent, 1)
                        last_tags[agent] = state.tag
                else:
                    assert state.tag == HONEST_TAG
