"""Tests for mid-run fault campaigns on both engines.

The determinism contract under test: a campaign's victim/state draws come
from the engine generator's *seed sequence* (not its stream), so the same
seed produces bit-identical injections on the loop engine, the compiled
engine, and any ``jobs`` layout -- even though the engines' trajectories
between events only agree statistically.
"""

import multiprocessing

import numpy as np
import pytest

from repro.adversary.campaign import (
    FAULT_DIGEST_KEY,
    FAULT_EVENTS_KEY,
    FaultCampaign,
    LAST_FAULT_AT_KEY,
)
from repro.adversary.plan import FaultEvent, FaultPlan
from repro.adversary.schedulers import BiasedPairScheduler, SchedulerSpec
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import ProtocolCompiler
from repro.engine.counts_simulation import CountsSimulation
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.harness import run_trials


def make_small_optimal_silent(n: int = 6) -> OptimalSilentSSR:
    """Compile-friendly instance (same constants as the equivalence matrix)."""
    return OptimalSilentSSR(n, rmax_multiplier=1.0, dmax_factor=2.0, emax_factor=3.0)


@pytest.fixture(scope="module")
def optimal_silent_compiled():
    """One shared compiled table for every batch-engine test in this module."""
    return ProtocolCompiler().compile(make_small_optimal_silent())


def _run_loop(plan, seed, protocol_factory=make_small_optimal_silent, **config_kwargs):
    simulation = Simulation(protocol_factory(), rng=np.random.default_rng(seed))
    result = simulation.run(RunConfig(engine="loop", faults=plan, **config_kwargs))
    return simulation, result


def _run_batch(plan, seed, compiled, **config_kwargs):
    simulation = BatchSimulation(
        make_small_optimal_silent(), rng=np.random.default_rng(seed), compiled=compiled
    )
    result = simulation.run(RunConfig(engine="compiled", faults=plan, **config_kwargs))
    return simulation, result


def _run_counts(plan, seed, compiled, **config_kwargs):
    simulation = CountsSimulation(
        make_small_optimal_silent(), rng=np.random.default_rng(seed), compiled=compiled
    )
    result = simulation.run(RunConfig(engine="counts", faults=plan, **config_kwargs))
    return simulation, result


class TestCrossEngineEquivalence:
    def test_two_reseed_bursts_give_identical_checkpoint_state_counts(
        self, optimal_silent_compiled
    ):
        # The acceptance scenario: >= 2 timed bursts on Optimal-Silent-SSR,
        # same seed, both engines -> identical state counts at every
        # checkpoint (reseed redraws the full configuration, so the
        # checkpoint is adversary-determined and engine-independent).
        plan = FaultPlan.reseeds([30, 120])
        loop_sim, loop_result = _run_loop(plan, seed=7)
        batch_sim, batch_result = _run_batch(plan, seed=7, compiled=optimal_silent_compiled)
        assert len(loop_sim.campaign.checkpoints) == 2
        for loop_cp, batch_cp in zip(
            loop_sim.campaign.checkpoints, batch_sim.campaign.checkpoints
        ):
            assert loop_cp.signature_counts == batch_cp.signature_counts
            assert loop_cp.victims == batch_cp.victims
            assert loop_cp.digest == batch_cp.digest
        assert (
            loop_result.extra[FAULT_DIGEST_KEY] == batch_result.extra[FAULT_DIGEST_KEY]
        )
        assert loop_result.stopped and batch_result.stopped

    def test_corrupt_all_bursts_give_identical_checkpoints(self, optimal_silent_compiled):
        n = 6
        plan = FaultPlan.bursts([(20, n), (90, n)])
        loop_sim, _ = _run_loop(plan, seed=11)
        batch_sim, _ = _run_batch(plan, seed=11, compiled=optimal_silent_compiled)
        for loop_cp, batch_cp in zip(
            loop_sim.campaign.checkpoints, batch_sim.campaign.checkpoints
        ):
            assert loop_cp.signature_counts == batch_cp.signature_counts

    def test_partial_bursts_inject_identical_victims_and_states(
        self, optimal_silent_compiled
    ):
        # With count < n the surviving agents differ between engines (their
        # trajectories only agree statistically), but the injected faults
        # themselves must be bit-identical.
        plan = FaultPlan.bursts([(15, 3), (60, 4)])
        loop_sim, _ = _run_loop(plan, seed=13)
        batch_sim, _ = _run_batch(plan, seed=13, compiled=optimal_silent_compiled)
        for loop_cp, batch_cp in zip(
            loop_sim.campaign.checkpoints, batch_sim.campaign.checkpoints
        ):
            assert loop_cp.victims == batch_cp.victims
            assert loop_cp.injected_signatures == batch_cp.injected_signatures

    def test_reseed_bursts_give_identical_checkpoints_on_the_counts_engine(
        self, optimal_silent_compiled
    ):
        # The PR 5 acceptance scenario replayed on the counts engine: reseed
        # payloads are adversary-determined (per-event rngs derive from the
        # original seed, not the engine's consumed stream), so checkpoint
        # signatures, victims, and digests must be bit-identical to the
        # compiled engine's even though the engines sample interactions
        # completely differently.
        plan = FaultPlan.reseeds([30, 120])
        batch_sim, batch_result = _run_batch(plan, seed=7, compiled=optimal_silent_compiled)
        counts_sim, counts_result = _run_counts(
            plan, seed=7, compiled=optimal_silent_compiled
        )
        assert len(counts_sim.campaign.checkpoints) == 2
        for batch_cp, counts_cp in zip(
            batch_sim.campaign.checkpoints, counts_sim.campaign.checkpoints
        ):
            assert batch_cp.signature_counts == counts_cp.signature_counts
            assert batch_cp.victims == counts_cp.victims
            assert batch_cp.digest == counts_cp.digest
        assert (
            batch_result.extra[FAULT_DIGEST_KEY] == counts_result.extra[FAULT_DIGEST_KEY]
        )
        assert batch_result.stopped and counts_result.stopped

    def test_campaign_digest_is_reproducible(self):
        plan = FaultPlan.reseeds([10, 40])
        _, first = _run_loop(plan, seed=3)
        _, second = _run_loop(plan, seed=3)
        assert first.extra[FAULT_DIGEST_KEY] == second.extra[FAULT_DIGEST_KEY]
        _, other_seed = _run_loop(plan, seed=4)
        assert first.extra[FAULT_DIGEST_KEY] != other_seed.extra[FAULT_DIGEST_KEY]


class TestCampaignExecution:
    def test_recovery_after_bursts(self):
        protocol = SilentNStateSSR(8)
        simulation = Simulation(protocol, rng=np.random.default_rng(0))
        plan = FaultPlan.bursts([(50, 4), (200, 8)])
        result = simulation.run(RunConfig(faults=plan, stop="stabilized"))
        assert result.stopped
        assert result.interactions > plan.last_fault_at
        assert protocol.is_correct(simulation.configuration)

    def test_result_extra_records_campaign_provenance(self):
        plan = FaultPlan.bursts([(25, 2), (75, 3)])
        _, result = _run_loop(plan, seed=1)
        assert result.extra[FAULT_EVENTS_KEY] == 2.0
        assert result.extra[LAST_FAULT_AT_KEY] == 75.0
        assert FAULT_DIGEST_KEY in result.extra

    def test_events_fire_at_their_interaction_counts(self):
        plan = FaultPlan.bursts([(40, 2), (90, 2)])
        simulation, _ = _run_loop(plan, seed=2)
        assert [checkpoint.at for checkpoint in simulation.campaign.checkpoints] == [40, 90]

    def test_empty_plan_behaves_like_no_faults(self):
        protocol = SilentNStateSSR(8)
        with_plan = Simulation(protocol, rng=np.random.default_rng(5))
        result = with_plan.run(RunConfig(faults=FaultPlan(), stop="stabilized"))
        baseline = Simulation(SilentNStateSSR(8), rng=np.random.default_rng(5))
        expected = baseline.run(RunConfig(stop="stabilized"))
        assert result.interactions == expected.interactions
        assert with_plan.campaign is None

    def test_reset_event_restores_clean_states(self):
        protocol = SilentNStateSSR(8)
        simulation = Simulation(protocol, rng=np.random.default_rng(6))
        plan = FaultPlan((FaultEvent(at=0, kind="reset", agent_ids=(1, 4)),))
        simulation.run(RunConfig(faults=plan, stop="stabilized"))
        checkpoint = simulation.campaign.checkpoints[0]
        probe_rng = np.random.default_rng(0)
        expected = [
            protocol.initial_state(victim, probe_rng).signature() for victim in (1, 4)
        ]
        assert checkpoint.victims == [1, 4]
        assert checkpoint.injected_signatures == expected


class TestEdgeCases:
    def test_zero_count_event_is_a_recorded_no_op(self):
        plan = FaultPlan((FaultEvent(at=10, kind="corrupt", count=0),))
        simulation, result = _run_loop(plan, seed=0)
        checkpoint = simulation.campaign.checkpoints[0]
        assert checkpoint.victims == []
        assert result.extra[FAULT_EVENTS_KEY] == 1.0

    def test_full_population_burst(self, optimal_silent_compiled):
        plan = FaultPlan.bursts([(5, 6)])
        simulation, _ = _run_batch(plan, seed=9, compiled=optimal_silent_compiled)
        assert sorted(simulation.campaign.checkpoints[0].victims) == list(range(6))

    def test_interaction_cap_truncates_the_fault_timeline(self, optimal_silent_compiled):
        # Regression: events scheduled beyond max_interactions must not drag
        # the run past the cap -- the cap is absolute for the whole plan.
        plan = FaultPlan.bursts([(50, 2), (50_000, 2)])
        for run in (
            lambda: _run_loop(plan, seed=0, max_interactions=100),
            lambda: _run_batch(
                plan, seed=0, compiled=optimal_silent_compiled, max_interactions=100
            ),
        ):
            simulation, result = run()
            assert result.interactions <= 100
            # Only the first event fired, and recovery is measured from it.
            assert len(simulation.campaign.checkpoints) == 1
            assert result.extra[LAST_FAULT_AT_KEY] == 50.0

    def test_count_exceeding_population_rejected(self):
        plan = FaultPlan.bursts([(5, 7)])
        with pytest.raises(ValueError, match="exceeds"):
            _run_loop(plan, seed=0)

    def test_out_of_range_agent_ids_rejected_on_both_engines(
        self, optimal_silent_compiled
    ):
        plan = FaultPlan((FaultEvent(at=0, kind="corrupt", agent_ids=(2, 99)),))
        with pytest.raises(ValueError, match="out of range"):
            _run_loop(plan, seed=0)
        with pytest.raises(ValueError, match="out of range"):
            _run_batch(plan, seed=0, compiled=optimal_silent_compiled)

    def test_batch_apply_fault_rejects_duplicates_and_bad_indices(
        self, optimal_silent_compiled
    ):
        simulation = BatchSimulation(
            make_small_optimal_silent(), rng=0, compiled=optimal_silent_compiled
        )
        with pytest.raises(ValueError, match="duplicates"):
            simulation.apply_fault(np.array([1, 1]), np.array([0, 0], dtype=np.int32))
        with pytest.raises(ValueError, match="state indices"):
            simulation.apply_fault(np.array([1]), np.array([10**6], dtype=np.int32))

    def test_batch_apply_fault_updates_counts_incrementally(
        self, optimal_silent_compiled
    ):
        simulation = BatchSimulation(
            make_small_optimal_silent(), rng=0, compiled=optimal_silent_compiled
        )
        before = simulation.state_counts.copy()  # materialize the cache
        simulation.apply_fault(np.array([0, 3]), np.array([0, 1], dtype=np.int32))
        counts = simulation.state_counts
        recomputed = optimal_silent_compiled.state_counts(simulation.indices)
        assert np.array_equal(counts, recomputed)
        assert int(before.sum()) == int(counts.sum()) == 6


class TestRunConfigIntegration:
    def test_faults_field_type_checked(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            RunConfig(faults={"events": []})

    def test_scheduler_field_type_checked(self):
        with pytest.raises(TypeError, match="SchedulerSpec"):
            RunConfig(scheduler="biased")

    def test_scheduler_spec_installed_by_run(self):
        spec = SchedulerSpec(kind="biased", hot_fraction=0.5, hot_weight=4.0)
        simulation = Simulation(SilentNStateSSR(8), rng=0)
        simulation.run(RunConfig(stop="stabilized", scheduler=spec))
        assert isinstance(simulation.scheduler, BiasedPairScheduler)

    def test_scheduler_spec_installed_on_batch_engine(self):
        simulation = BatchSimulation(SilentNStateSSR(8), rng=0)
        spec = SchedulerSpec(kind="epoch", blocks=2, split_time=1.0)
        result = simulation.run(RunConfig(engine="compiled", stop="stabilized", scheduler=spec))
        assert result.stopped
        assert simulation.scheduler.split_interactions == 8

    def test_run_config_dict_round_trip_with_adversary_fields(self):
        config = RunConfig(
            engine="compiled",
            faults=FaultPlan.bursts([(10, 2)]),
            scheduler=SchedulerSpec(kind="biased", hot_fraction=0.1, hot_weight=2.0),
        )
        assert RunConfig.from_dict(config.to_dict()) == config


class TestJobsInvariance:
    def test_fault_stream_is_bit_identical_across_jobs(self):
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable")
        plan = FaultPlan.bursts([(30, 3), (120, 5)])

        def measure(jobs):
            results = run_trials(
                protocol_factory=lambda: SilentNStateSSR(8),
                trials=4,
                run=RunConfig(seed=42, stop="stabilized", faults=plan, jobs=jobs),
            )
            return [result.to_dict() for result in results]

        assert measure(1) == measure(2)
