"""Tests for transient fault injection."""

import pytest

from repro.adversary.faults import inject_transient_faults
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from tests.conftest import make_optimal_silent


class TestInjection:
    def test_zero_faults_is_a_no_op(self):
        protocol = SilentNStateSSR(8)
        configuration = protocol.initial_configuration(make_rng(0))
        before = [state.signature() for state in configuration]
        victims = inject_transient_faults(protocol, configuration, count=0, rng=0)
        assert victims == []
        assert [state.signature() for state in configuration] == before

    def test_victim_count(self):
        protocol = SilentNStateSSR(8)
        configuration = protocol.initial_configuration(make_rng(0))
        victims = inject_transient_faults(protocol, configuration, count=3, rng=0)
        assert len(victims) == len(set(victims)) == 3

    def test_explicit_victims(self):
        protocol = SilentNStateSSR(8)
        configuration = protocol.initial_configuration(make_rng(0))
        victims = inject_transient_faults(protocol, configuration, count=2, rng=0, agent_ids=[1, 5])
        assert victims == [1, 5]

    def test_invalid_count(self):
        protocol = SilentNStateSSR(8)
        configuration = protocol.initial_configuration(make_rng(0))
        with pytest.raises(ValueError):
            inject_transient_faults(protocol, configuration, count=9, rng=0)

    def test_mismatched_explicit_victims(self):
        protocol = SilentNStateSSR(8)
        configuration = protocol.initial_configuration(make_rng(0))
        with pytest.raises(ValueError):
            inject_transient_faults(protocol, configuration, count=1, rng=0, agent_ids=[1, 2])
        with pytest.raises(ValueError):
            inject_transient_faults(protocol, configuration, count=1, rng=0, agent_ids=[99])

    def test_duplicate_explicit_victims_rejected(self):
        # Regression: [3, 3] with count=2 used to pass validation but corrupt
        # only one distinct agent, silently halving the burst.
        protocol = SilentNStateSSR(8)
        configuration = protocol.initial_configuration(make_rng(0))
        with pytest.raises(ValueError, match="duplicates"):
            inject_transient_faults(
                protocol, configuration, count=2, rng=0, agent_ids=[3, 3]
            )


class TestRecoveryAfterFaults:
    def test_silent_n_state_recovers_after_faults(self):
        protocol = SilentNStateSSR(8)
        simulation = Simulation(protocol, rng=0)
        simulation.run_until_stabilized()
        inject_transient_faults(protocol, simulation.configuration, count=4, rng=1)
        result = simulation.run_until_stabilized()
        assert result.stopped and protocol.is_correct(simulation.configuration)

    def test_optimal_silent_recovers_after_faults(self):
        protocol = make_optimal_silent(10)
        simulation = Simulation(protocol, rng=2)
        simulation.run_until_stabilized()
        inject_transient_faults(protocol, simulation.configuration, count=5, rng=3)
        result = simulation.run_until_stabilized()
        assert result.stopped and protocol.is_correct(simulation.configuration)
