"""Tests for the adversarial initial configurations."""

import pytest

from repro.adversary.initial_configs import (
    corrupted_tree_configuration,
    duplicate_leader_silent_configuration,
    optimal_silent_adversarial_configuration,
    silent_n_state_worst_case,
    sublinear_adversarial_configuration,
)
from repro.core.silent_n_state import SilentNStateSSR, rank_counts
from repro.engine.rng import make_rng
from repro.engine.simulation import Simulation
from tests.conftest import make_optimal_silent, make_sublinear


class TestSilentNStateWorstCase:
    def test_shape(self):
        protocol = SilentNStateSSR(8)
        counts = rank_counts(silent_n_state_worst_case(protocol), 8)
        assert counts[0] == 2 and counts[7] == 0


class TestDuplicateLeaderConfiguration:
    def test_exactly_two_rank_one_agents(self):
        protocol = make_optimal_silent(8)
        configuration = duplicate_leader_silent_configuration(protocol)
        ranks = [state.rank for state in configuration]
        assert ranks.count(1) == 2
        assert ranks.count(8) == 0  # the overwritten agent was the rank-n one

    def test_not_correct_but_all_settled(self):
        protocol = make_optimal_silent(8)
        configuration = duplicate_leader_silent_configuration(protocol)
        assert not protocol.is_correct(configuration)
        assert all(state.role == "Settled" for state in configuration)

    def test_only_productive_interaction_is_the_leader_meeting(self):
        """Until the two rank-1 agents meet, no state changes (Observation 2.6)."""
        protocol = make_optimal_silent(8)
        configuration = duplicate_leader_silent_configuration(protocol)
        signature_before = [state.signature() for state in configuration]
        rng = make_rng(0)
        # Exercise every pair except the two duplicates meeting each other.
        duplicates = [i for i, state in enumerate(configuration) if state.rank == 1]
        for i in range(8):
            for j in range(8):
                if i == j or (i in duplicates and j in duplicates):
                    continue
                protocol.transition(configuration[i], configuration[j], rng)
        assert [state.signature() for state in configuration] == signature_before


class TestAdversarialConfigurations:
    def test_optimal_silent_adversarial_has_protocol_size(self):
        protocol = make_optimal_silent(10)
        configuration = optimal_silent_adversarial_configuration(protocol, rng=0)
        assert len(configuration) == 10

    def test_sublinear_adversarial_has_protocol_size(self):
        protocol = make_sublinear(10)
        configuration = sublinear_adversarial_configuration(protocol, rng=0)
        assert len(configuration) == 10

    def test_adversarial_configurations_differ_between_draws(self):
        protocol = make_optimal_silent(10)
        first = optimal_silent_adversarial_configuration(protocol, rng=0)
        second = optimal_silent_adversarial_configuration(protocol, rng=1)
        assert [s.signature() for s in first] != [s.signature() for s in second]


class TestCorruptedTrees:
    def test_every_agent_has_a_planted_edge(self):
        protocol = make_sublinear(8, depth=2)
        configuration = corrupted_tree_configuration(protocol, rng=0)
        assert all(len(state.tree.edges) == 1 for state in configuration)

    def test_planted_edges_are_mutually_inconsistent(self):
        protocol = make_sublinear(8, depth=2)
        configuration = corrupted_tree_configuration(protocol, rng=0)
        syncs = [state.tree.edges[0].sync for state in configuration]
        assert len(set(syncs)) == len(syncs)

    def test_requires_history_tree_detector(self):
        protocol = make_sublinear(8, depth=0)
        with pytest.raises(ValueError):
            corrupted_tree_configuration(protocol, rng=0)

    def test_protocol_recovers_from_corrupted_trees(self):
        n = 8
        protocol = make_sublinear(n, depth=1)
        configuration = corrupted_tree_configuration(protocol, rng=1)
        simulation = Simulation(protocol, configuration=configuration, rng=1)
        result = simulation.run_until_stabilized(max_interactions=600 * n * n, check_interval=n)
        assert result.stopped
