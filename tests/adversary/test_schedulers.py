"""Tests for the adversarial pair schedulers and their declarative spec."""

import numpy as np
import pytest

from repro.adversary.schedulers import (
    BiasedPairScheduler,
    EpochPartitionScheduler,
    SchedulerSpec,
)
from repro.engine.scheduler import PairScheduler, UniformPairScheduler


class TestBiasedValidation:
    def test_weight_shape_checked(self):
        with pytest.raises(ValueError, match="shape"):
            BiasedPairScheduler(5, [1.0, 1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BiasedPairScheduler(3, [1.0, -1.0, 1.0])

    def test_needs_two_positive_weights(self):
        with pytest.raises(ValueError, match="two agents"):
            BiasedPairScheduler(3, [5.0, 0.0, 0.0])


class TestBiasedDistribution:
    def test_pairs_distinct_and_in_range(self):
        scheduler = BiasedPairScheduler(7, np.arange(1.0, 8.0), rng=0)
        initiators, responders = scheduler.pair_batch(5000)
        assert np.all(initiators != responders)
        assert initiators.min() >= 0 and initiators.max() < 7

    def test_zero_weight_agents_never_scheduled(self):
        weights = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        scheduler = BiasedPairScheduler(5, weights, rng=1)
        initiators, responders = scheduler.pair_batch(20000)
        scheduled = set(initiators.tolist()) | set(responders.tolist())
        assert scheduled == {0, 2, 4}

    def test_initiator_marginal_tracks_weights(self):
        n = 10
        weights = np.ones(n)
        weights[:2] = 4.0
        scheduler = BiasedPairScheduler(n, weights, rng=2)
        initiators, _ = scheduler.pair_batch(120000)
        counts = np.bincount(initiators, minlength=n)
        hot = counts[:2].mean()
        cold = counts[2:].mean()
        assert hot / cold == pytest.approx(4.0, rel=0.1)

    def test_non_contiguous_weight_classes(self):
        # Hot agents interleaved with cold ones: exercises the member-array
        # fallback instead of the contiguous-range arithmetic.
        n = 8
        weights = np.ones(n)
        weights[::2] = 3.0
        scheduler = BiasedPairScheduler(n, weights, rng=3)
        assert scheduler._bases is None and scheduler._members is not None
        initiators, _ = scheduler.pair_batch(80000)
        counts = np.bincount(initiators, minlength=n)
        assert counts[::2].mean() / counts[1::2].mean() == pytest.approx(3.0, rel=0.15)

    def test_contiguous_fast_path_detected(self):
        weights = np.ones(8)
        weights[:3] = 2.0
        scheduler = BiasedPairScheduler(8, weights, rng=0)
        assert scheduler._bases is not None

    def test_next_pair_buffer_matches_contract(self):
        scheduler = BiasedPairScheduler(6, np.arange(1.0, 7.0), rng=4, batch_size=8)
        for i, j in scheduler.pairs(100):
            assert 0 <= i < 6 and 0 <= j < 6 and i != j

    def test_uniform_weights_recover_uniform_marginal(self):
        scheduler = BiasedPairScheduler(6, np.ones(6), rng=5)
        initiators, responders = scheduler.pair_batch(60000)
        counts = np.bincount(initiators, minlength=6) + np.bincount(
            responders, minlength=6
        )
        assert np.all(np.abs(counts - counts.mean()) < 0.05 * counts.mean())


class TestEpochPartition:
    def test_validation(self):
        with pytest.raises(ValueError, match="blocks"):
            EpochPartitionScheduler(8, blocks=1, split_interactions=10)
        with pytest.raises(ValueError, match="at least 2 agents"):
            EpochPartitionScheduler(5, blocks=3, split_interactions=10)
        with pytest.raises(ValueError, match="non-negative"):
            EpochPartitionScheduler(8, blocks=2, split_interactions=-1)

    def test_split_phase_keeps_pairs_within_blocks(self):
        scheduler = EpochPartitionScheduler(10, blocks=2, split_interactions=5000, rng=0)
        initiators, responders = scheduler.pair_batch(5000)
        assert np.all(initiators != responders)
        assert np.all((initiators < 5) == (responders < 5))

    def test_merged_phase_crosses_blocks(self):
        scheduler = EpochPartitionScheduler(10, blocks=2, split_interactions=100, rng=1)
        scheduler.pair_batch(100)
        initiators, responders = scheduler.pair_batch(4000)
        crossing = np.mean((initiators < 5) != (responders < 5))
        # Uniform over ordered distinct pairs crosses with probability 5/9.
        assert crossing == pytest.approx(5 / 9, abs=0.05)

    def test_straddling_batch_respects_the_boundary(self):
        scheduler = EpochPartitionScheduler(10, blocks=2, split_interactions=50, rng=2)
        initiators, responders = scheduler.pair_batch(2000)
        head_i, head_j = initiators[:50], responders[:50]
        assert np.all((head_i < 5) == (head_j < 5))
        tail_crossing = np.mean((initiators[50:] < 5) != (responders[50:] < 5))
        assert tail_crossing > 0.4

    def test_sync_rewinds_the_phase_clock(self):
        scheduler = EpochPartitionScheduler(10, blocks=2, split_interactions=100, rng=3)
        scheduler.pair_batch(1000)  # position now far past the boundary
        scheduler.sync(0)  # ...but only 0 interactions were applied
        initiators, responders = scheduler.pair_batch(100)
        assert np.all((initiators < 5) == (responders < 5))

    def test_within_block_marginal_is_uniform(self):
        scheduler = EpochPartitionScheduler(12, blocks=3, split_interactions=10**6, rng=4)
        initiators, responders = scheduler.pair_batch(120000)
        counts = np.bincount(initiators, minlength=12) + np.bincount(
            responders, minlength=12
        )
        assert np.all(np.abs(counts - counts.mean()) < 0.05 * counts.mean())


class TestSchedulerSpec:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown scheduler kind"):
            SchedulerSpec(kind="chaotic")

    def test_uniform_takes_no_parameters(self):
        with pytest.raises(ValueError, match="does not take"):
            SchedulerSpec(kind="uniform", blocks=2)

    def test_biased_needs_exactly_one_weight_form(self):
        with pytest.raises(ValueError, match="either weights"):
            SchedulerSpec(kind="biased")
        with pytest.raises(ValueError, match="either weights"):
            SchedulerSpec(kind="biased", weights=(1.0, 2.0), hot_fraction=0.5, hot_weight=2.0)
        with pytest.raises(ValueError, match="together"):
            SchedulerSpec(kind="biased", hot_fraction=0.5)

    def test_biased_parameter_ranges(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            SchedulerSpec(kind="biased", hot_fraction=1.5, hot_weight=2.0)
        with pytest.raises(ValueError, match="hot_weight"):
            SchedulerSpec(kind="biased", hot_fraction=0.5, hot_weight=0.0)

    def test_epoch_parameter_ranges(self):
        with pytest.raises(ValueError, match="blocks and split_time"):
            SchedulerSpec(kind="epoch", blocks=2)
        with pytest.raises(ValueError, match="split_time"):
            SchedulerSpec(kind="epoch", blocks=2, split_time=0.0)

    @pytest.mark.parametrize(
        "spec",
        [
            SchedulerSpec(),
            SchedulerSpec(kind="biased", weights=(1.0, 2.0, 3.0)),
            SchedulerSpec(kind="biased", hot_fraction=0.25, hot_weight=8.0),
            SchedulerSpec(kind="epoch", blocks=2, split_time=1.5),
        ],
    )
    def test_round_trip(self, spec):
        assert SchedulerSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown SchedulerSpec"):
            SchedulerSpec.from_dict({"kind": "uniform", "bogus": 1})

    def test_build_kinds(self):
        rng = np.random.default_rng(0)
        assert isinstance(SchedulerSpec().build(6, rng), UniformPairScheduler)
        biased = SchedulerSpec(kind="biased", hot_fraction=0.5, hot_weight=2.0).build(6, rng)
        assert isinstance(biased, BiasedPairScheduler)
        assert np.array_equal(biased.weights, [2.0, 2.0, 2.0, 1.0, 1.0, 1.0])
        epoch = SchedulerSpec(kind="epoch", blocks=2, split_time=2.0).build(6, rng)
        assert isinstance(epoch, EpochPartitionScheduler)
        assert epoch.split_interactions == 12

    def test_build_explicit_weights_checks_length(self):
        spec = SchedulerSpec(kind="biased", weights=(1.0, 2.0))
        with pytest.raises(ValueError, match="shape"):
            spec.build(5)

    def test_every_build_satisfies_the_scheduler_contract(self):
        for spec in (
            SchedulerSpec(),
            SchedulerSpec(kind="biased", hot_fraction=0.3, hot_weight=4.0),
            SchedulerSpec(kind="epoch", blocks=2, split_time=1.0),
        ):
            scheduler = spec.build(8, rng=np.random.default_rng(1))
            assert isinstance(scheduler, PairScheduler)
            initiators, responders = scheduler.pair_batch(64)
            assert len(initiators) == len(responders) == 64
            assert np.all(initiators != responders)

    def test_describe(self):
        assert SchedulerSpec().describe() == "uniform"
        assert "hot" in SchedulerSpec(
            kind="biased", hot_fraction=0.1, hot_weight=4.0
        ).describe()
        assert "blocks" in SchedulerSpec(kind="epoch", blocks=2, split_time=1.0).describe()
