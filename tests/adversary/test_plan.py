"""Tests for the declarative fault-plan records."""

import pytest

from repro.adversary.plan import FAULT_KINDS, FaultEvent, FaultPlan


class TestFaultEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(at=-1, count=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at=0, kind="explode", count=1)

    def test_corrupt_needs_count_or_agent_ids(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent(at=0, kind="corrupt")
        with pytest.raises(ValueError, match="exactly one"):
            FaultEvent(at=0, kind="corrupt", count=2, agent_ids=(0, 1))

    def test_reseed_takes_no_victim_selection(self):
        with pytest.raises(ValueError, match="whole population"):
            FaultEvent(at=0, kind="reseed", count=3)
        with pytest.raises(ValueError, match="whole population"):
            FaultEvent(at=0, kind="reseed", agent_ids=(0,))

    def test_duplicate_agent_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            FaultEvent(at=0, kind="corrupt", agent_ids=(3, 3))

    def test_negative_agent_ids_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(at=0, kind="corrupt", agent_ids=(-1, 2))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(at=0, kind="corrupt", count=-2)

    def test_zero_count_is_valid(self):
        event = FaultEvent(at=5, kind="corrupt", count=0)
        assert event.victim_count(8) == 0

    def test_victim_counts(self):
        assert FaultEvent(at=0, kind="reseed").victim_count(9) == 9
        assert FaultEvent(at=0, kind="reset", agent_ids=(1, 4)).victim_count(9) == 2
        assert FaultEvent(at=0, kind="corrupt", count=3).victim_count(9) == 3

    def test_kind_catalogue(self):
        assert set(FAULT_KINDS) == {"corrupt", "reset", "reseed"}


class TestFaultPlanValidation:
    def test_events_must_be_sorted_by_time(self):
        with pytest.raises(ValueError, match="sorted"):
            FaultPlan((FaultEvent(at=10, count=1), FaultEvent(at=5, count=1)))

    def test_equal_times_are_allowed_in_listing_order(self):
        plan = FaultPlan((FaultEvent(at=5, count=1), FaultEvent(at=5, count=2)))
        assert len(plan) == 2

    def test_non_event_rejected(self):
        with pytest.raises(TypeError, match="FaultEvent"):
            FaultPlan(({"at": 3},))

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.last_fault_at == 0
        assert plan.describe() == "no faults"

    def test_last_fault_at(self):
        plan = FaultPlan.bursts([(10, 2), (70, 3)])
        assert plan.last_fault_at == 70

    def test_bursts_helper(self):
        plan = FaultPlan.bursts([(10, 2), (70, 3)], kind="reset")
        assert [event.kind for event in plan.events] == ["reset", "reset"]
        assert [event.count for event in plan.events] == [2, 3]

    def test_reseeds_helper(self):
        plan = FaultPlan.reseeds([4, 9])
        assert [event.kind for event in plan.events] == ["reseed", "reseed"]
        assert plan.last_fault_at == 9


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            (
                FaultEvent(at=3, kind="corrupt", count=2),
                FaultEvent(at=8, kind="reset", agent_ids=(0, 5)),
                FaultEvent(at=20, kind="reseed"),
            )
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan"):
            FaultPlan.from_dict({"events": [], "bogus": 1})
        with pytest.raises(ValueError, match="unknown FaultEvent"):
            FaultEvent.from_dict({"at": 0, "count": 1, "bogus": 1})

    def test_describe_mentions_every_event(self):
        plan = FaultPlan(
            (
                FaultEvent(at=3, kind="corrupt", count=2),
                FaultEvent(at=20, kind="reseed"),
            )
        )
        text = plan.describe()
        assert "corrupt 2@3" in text and "reseed@20" in text
