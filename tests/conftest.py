"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.silent_n_state import SilentNStateSSR
from repro.core.sublinear import SublinearTimeSSR


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


def make_optimal_silent(n: int, **overrides) -> OptimalSilentSSR:
    """Optimal-Silent-SSR with test-friendly (small) constants."""
    parameters = {"rmax_multiplier": 3.0, "dmax_factor": 5.0, "emax_factor": 14.0}
    parameters.update(overrides)
    return OptimalSilentSSR(n, **parameters)


def make_sublinear(n: int, depth=1, **overrides) -> SublinearTimeSSR:
    """Sublinear-Time-SSR with test-friendly (small) constants."""
    parameters = {"rmax_multiplier": 2.5}
    parameters.update(overrides)
    return SublinearTimeSSR(n, depth=depth, **parameters)


@pytest.fixture
def small_silent_n_state() -> SilentNStateSSR:
    """A small instance of the Protocol 1 baseline."""
    return SilentNStateSSR(8)


@pytest.fixture
def small_optimal_silent() -> OptimalSilentSSR:
    """A small, fast-constant instance of Optimal-Silent-SSR."""
    return make_optimal_silent(12)


@pytest.fixture
def small_sublinear() -> SublinearTimeSSR:
    """A small, fast-constant instance of Sublinear-Time-SSR (H = 1)."""
    return make_sublinear(10, depth=1)
