"""Job queue lifecycle: validation, atomic claims, retries, crash recovery."""

import os
import subprocess

import pytest

from repro.engine.run_config import RunConfig
from repro.serve.queue import (
    JOB_STATES,
    JobQueue,
    JobRecord,
    UnknownJobError,
    validate_payload,
)


def _payload(seed=1, trials=2, engine="counts"):
    return {
        "experiment": "epidemic_convergence",
        "scale": "quick",
        "params": {"ns": [64], "trials": trials},
        "run_config": RunConfig(seed=seed, engine=engine).to_dict(),
    }


def _dead_pid() -> int:
    """A pid guaranteed to belong to no live process."""
    probe = subprocess.Popen(["sleep", "0"])
    probe.wait()
    return probe.pid


class TestValidation:
    def test_canonical_payload_round_trips(self):
        canonical = validate_payload(_payload())
        assert canonical == validate_payload(canonical)

    def test_rejects_unknown_experiment(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            validate_payload(dict(_payload(), experiment="nope"))

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown job payload keys"):
            validate_payload(dict(_payload(), surprise=1))

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            validate_payload(dict(_payload(), scale="huge"))

    def test_rejects_non_integer_seed(self):
        payload = _payload()
        payload["run_config"]["seed"] = None
        with pytest.raises(ValueError, match="integer run_config.seed"):
            validate_payload(payload)

    def test_rejects_non_object_payload(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_payload(["not", "a", "dict"])


class TestLifecycle:
    def test_submit_creates_pending_record(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(_payload())
        assert record.state == "pending"
        assert record.job_id == record.digest[:16]
        assert (tmp_path / "pending" / record.job_id).exists()
        assert queue.get(record.job_id).state == "pending"

    def test_identical_resubmission_dedups(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit(_payload())
        second = queue.submit(_payload())
        assert second.job_id == first.job_id
        assert len(queue.list_jobs()) == 1
        assert len(list((tmp_path / "pending").iterdir())) == 1

    def test_different_payloads_get_different_ids(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = {queue.submit(_payload(seed=seed)).job_id for seed in range(3)}
        assert len(ids) == 3

    def test_claim_moves_to_running(self, tmp_path):
        queue = JobQueue(tmp_path)
        submitted = queue.submit(_payload())
        claimed = queue.claim(worker_pid=os.getpid())
        assert claimed.job_id == submitted.job_id
        assert claimed.state == "running"
        assert claimed.worker_pid == os.getpid()
        assert (tmp_path / "running" / claimed.job_id).exists()
        assert queue.claim(worker_pid=os.getpid()) is None  # queue drained

    def test_finish_marks_done(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(_payload())
        queue.claim(worker_pid=os.getpid())
        finished = queue.finish(record.job_id, cached=True)
        assert finished.state == "done"
        assert finished.cached is True
        assert finished.worker_pid is None
        assert (tmp_path / "done" / record.job_id).exists()

    def test_fail_requeues_until_retries_exhausted(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=2)
        record = queue.submit(_payload())
        for attempt in range(1, 3):
            queue.claim(worker_pid=os.getpid())
            failed = queue.fail(record.job_id, f"boom {attempt}")
            assert failed.state == "pending"
            assert failed.retries == attempt
        queue.claim(worker_pid=os.getpid())
        final = queue.fail(record.job_id, "boom 3")
        assert final.state == "failed"
        assert final.retries == 3
        assert (tmp_path / "failed" / record.job_id).exists()
        assert queue.claim(worker_pid=os.getpid()) is None

    def test_get_unknown_job(self, tmp_path):
        with pytest.raises(UnknownJobError, match="unknown job id"):
            JobQueue(tmp_path).get("doesnotexist")

    def test_job_states_constant_matches_directories(self, tmp_path):
        JobQueue(tmp_path)
        for state in JOB_STATES:
            assert (tmp_path / state).is_dir()


class TestCrashRecovery:
    def test_dead_worker_is_requeued(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(_payload())
        queue.claim(worker_pid=_dead_pid())
        assert queue.recover_stale() == [record.job_id]
        requeued = queue.get(record.job_id)
        assert requeued.state == "pending"
        assert requeued.retries == 1
        assert requeued.error == "worker died mid-run"
        assert (tmp_path / "pending" / record.job_id).exists()

    def test_live_worker_is_left_alone(self, tmp_path):
        queue = JobQueue(tmp_path)
        record = queue.submit(_payload())
        queue.claim(worker_pid=os.getpid())
        assert queue.recover_stale() == []
        assert queue.get(record.job_id).state == "running"

    def test_repeated_crashes_eventually_fail(self, tmp_path):
        queue = JobQueue(tmp_path, max_retries=1)
        record = queue.submit(_payload())
        for _ in range(2):
            queue.claim(worker_pid=_dead_pid())
            queue.recover_stale()
        assert queue.get(record.job_id).state == "failed"


class TestRecordRoundTrip:
    def test_record_dict_round_trip(self):
        record = JobRecord(
            job_id="abc", digest="abcdef", payload=_payload(), state="running",
            retries=1, error="boom", cached=False, worker_pid=123,
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_foreign_dict_is_rejected(self):
        with pytest.raises(ValueError, match="not a job record"):
            JobRecord.from_dict({"job_id": "abc"})

    def test_checkpoint_dir_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path)
        path = queue.checkpoint_dir("abc")
        (path / "call0001-trial00000.json").write_text("{}")
        queue.clear_checkpoints("abc")
        assert not path.exists()
