"""Engine checkpoints: JSON round trips and the bit-identical resume guarantee.

The contract under test (docs/ARCHITECTURE.md, "serve subsystem"): a table-
engine run checkpointed at any ``check_interval`` boundary, serialized to
JSON, and resumed in a *fresh* engine produces the same
``SimulationResult``, the same final state vector, and the same final
PCG64 generator state as the uninterrupted run.
"""

import numpy as np
import pytest

from repro.engine.run_config import RunConfig, make_simulation
from repro.processes.epidemic import TwoWayEpidemicProtocol
from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    EngineCheckpoint,
    capture_checkpoint,
    checkpoint_unsupported_reason,
    config_digest,
    restore_simulation,
    resume_run,
)

TABLE_ENGINES = ("compiled", "counts")


def _config(engine, seed=7, check_interval=128):
    return RunConfig(engine=engine, stop="correct", seed=seed, check_interval=check_interval)


def _capture_at(protocol_factory, config, at_interactions):
    """Run to completion, snapshotting at the first boundary >= the target."""
    protocol = protocol_factory()
    simulation = make_simulation(protocol, config)
    captured = []

    def hook(live):
        if live.interactions >= at_interactions and not captured:
            captured.append(capture_checkpoint(live, config))

    simulation.on_check = hook
    result = simulation.run(config)
    assert captured, "run converged before the checkpoint target"
    return protocol, simulation, result, captured[0]


def _final_state(simulation, engine):
    if engine == "counts":
        return np.asarray(simulation.state_counts)
    return simulation._indices.copy()


class TestResumeBitIdentity:
    @pytest.mark.parametrize("engine", TABLE_ENGINES)
    @pytest.mark.parametrize("boundary", (128, 384))
    def test_resume_matches_uninterrupted_run(self, engine, boundary):
        config = _config(engine)
        protocol, full_sim, full_result, checkpoint = _capture_at(
            lambda: TwoWayEpidemicProtocol(192), config, boundary
        )
        assert checkpoint.interactions % config.check_interval == 0
        assert checkpoint.interactions >= boundary

        # The JSON round trip is part of the guarantee: resume what a file
        # (or another process) would see, not the in-memory object.
        reloaded = EngineCheckpoint.from_json(checkpoint.to_json())
        resumed_sim = restore_simulation(TwoWayEpidemicProtocol(192), reloaded, config)
        resumed_result = resumed_sim.run(config)

        assert resumed_result.to_dict() == full_result.to_dict()
        assert np.array_equal(
            _final_state(resumed_sim, engine), _final_state(full_sim, engine)
        )
        assert resumed_sim.rng.bit_generator.state == full_sim.rng.bit_generator.state

    @pytest.mark.parametrize("engine", TABLE_ENGINES)
    def test_resume_run_helper(self, engine):
        config = _config(engine)
        _, _, full_result, checkpoint = _capture_at(
            lambda: TwoWayEpidemicProtocol(192), config, 128
        )
        resumed = resume_run(TwoWayEpidemicProtocol(192), checkpoint, config)
        assert resumed.to_dict() == full_result.to_dict()


class TestRoundTrip:
    def test_json_round_trip_is_byte_identical(self):
        config = _config("compiled")
        _, _, _, checkpoint = _capture_at(lambda: TwoWayEpidemicProtocol(96), config, 128)
        text = checkpoint.to_json()
        reloaded = EngineCheckpoint.from_json(text)
        assert reloaded == checkpoint
        assert reloaded.to_json() == text
        assert reloaded.to_dict()["format"] == CHECKPOINT_FORMAT

    def test_save_load(self, tmp_path):
        config = _config("counts")
        _, _, _, checkpoint = _capture_at(lambda: TwoWayEpidemicProtocol(96), config, 128)
        path = checkpoint.save(tmp_path / "ck.json")
        assert EngineCheckpoint.load(path) == checkpoint

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            EngineCheckpoint.load(tmp_path / "absent.json")

    def test_foreign_json_is_rejected(self):
        with pytest.raises(CheckpointError, match="format"):
            EngineCheckpoint.from_json('{"hello": "world"}')
        with pytest.raises(CheckpointError, match="not a JSON object"):
            EngineCheckpoint.from_json("[1, 2]")
        with pytest.raises(CheckpointError, match="unreadable"):
            EngineCheckpoint.from_json("{nope")


class TestRefusals:
    def test_digest_mismatch_is_refused(self):
        config = _config("compiled")
        _, _, _, checkpoint = _capture_at(lambda: TwoWayEpidemicProtocol(96), config, 128)
        other = _config("compiled", seed=8)
        assert config_digest(other) != config_digest(config)
        with pytest.raises(CheckpointError, match="digest mismatch"):
            restore_simulation(TwoWayEpidemicProtocol(96), checkpoint, other)

    def test_population_mismatch_is_refused(self):
        config = _config("compiled")
        _, _, _, checkpoint = _capture_at(lambda: TwoWayEpidemicProtocol(96), config, 128)
        with pytest.raises(CheckpointError, match="population"):
            restore_simulation(TwoWayEpidemicProtocol(128), checkpoint, config)

    def test_loop_engine_is_not_checkpointable(self):
        config = RunConfig(engine="loop", stop="correct", seed=1)
        protocol = TwoWayEpidemicProtocol(32)
        simulation = make_simulation(protocol, config)
        with pytest.raises(CheckpointError, match="not checkpointable"):
            capture_checkpoint(simulation, config)

    def test_unsupported_reasons(self):
        assert checkpoint_unsupported_reason(_config("compiled")) is None
        assert checkpoint_unsupported_reason(_config("counts")) is None
        assert "loop" in checkpoint_unsupported_reason(RunConfig(engine="loop"))
        batched = RunConfig(engine="counts", trial_batch=4)
        assert "trial-batched" in checkpoint_unsupported_reason(batched)


class TestConfigDigest:
    def test_digest_is_stable_under_dict_round_trip(self):
        config = _config("counts", seed=11)
        clone = RunConfig.from_dict(config.to_dict())
        assert config_digest(clone) == config_digest(config)

    def test_digest_separates_plans(self):
        base = _config("compiled", seed=1)
        assert config_digest(base) != config_digest(_config("compiled", seed=2))
        assert config_digest(base) != config_digest(_config("counts", seed=1))
