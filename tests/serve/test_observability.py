"""Serve observability: queue depths, stale probes, /metrics, ETA fields."""

import os
import time

import pytest

from repro.engine.run_config import RunConfig
from repro.serve.cache import job_payload
from repro.serve.queue import JobQueue
from repro.serve.server import ReproServer, _throughput_eta, http_json
from repro.serve.worker import Worker, estimate_total_trials
from repro.telemetry import metrics


def _payload(seed=5, trials=2, ns=(64,)):
    return job_payload(
        "epidemic_convergence",
        "quick",
        {"ns": list(ns), "trials": trials},
        RunConfig(seed=seed, engine="counts"),
    )


def _wait_done(url, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = http_json("GET", f"{url}/jobs/{job_id}")
        assert status == 200
        if body["state"] in ("done", "failed"):
            return body
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never finished")


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(tmp_path / "queue", port=0, workers=1)
    instance.start()
    yield instance
    instance.stop()


class TestQueueProbes:
    def test_depths_track_marker_files(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        assert queue.depths() == {"pending": 0, "running": 0, "done": 0, "failed": 0}
        record = queue.submit(_payload())
        assert queue.depths()["pending"] == 1
        queue.claim(worker_pid=os.getpid())
        assert queue.depths() == {"pending": 0, "running": 1, "done": 0, "failed": 0}
        queue.finish(record.job_id)
        assert queue.depths() == {"pending": 0, "running": 0, "done": 1, "failed": 0}

    def test_claim_stamps_started_at_and_finish_clears_it(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        queue.submit(_payload())
        before = time.time()
        record = queue.claim(worker_pid=os.getpid())
        assert before <= record.started_at <= time.time()
        assert queue.get(record.job_id).started_at == record.started_at
        assert queue.finish(record.job_id).started_at is None

    def test_stale_running_flags_dead_pid_without_requeue(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        queue.submit(_payload())
        record = queue.claim(worker_pid=os.getpid())
        assert queue.stale_running() == []  # our own pid is alive

        record.worker_pid = 2**22 + 12345  # vanishingly unlikely to exist
        queue._write(record)
        assert queue.stale_running() == [record.job_id]
        # Probe only: the job is still running, nothing was requeued.
        assert queue.get(record.job_id).state == "running"
        assert queue.depths()["running"] == 1


class TestEstimateTotalTrials:
    def test_sweep_multiplies_trials_by_sequence_params(self):
        assert estimate_total_trials(_payload(trials=3, ns=(64, 128))) == 6

    def test_scale_defaults_fill_missing_params(self):
        payload = job_payload(
            "epidemic_convergence", "quick", {}, RunConfig(seed=1, engine="counts")
        )
        # quick defaults: ns=(256, 1024), trials=10.
        assert estimate_total_trials(payload) == 20

    def test_unknown_experiment_returns_none(self):
        assert estimate_total_trials({"experiment": "nope"}) is None

    def test_non_integer_trials_returns_none(self):
        payload = _payload()
        payload["params"]["trials"] = "lots"
        assert estimate_total_trials(payload) is None


class TestThroughputEta:
    def test_fields_with_known_total(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        queue.submit(_payload(trials=4))
        record = queue.claim(worker_pid=os.getpid())
        eta = _throughput_eta(record, trials_done=2, now=record.started_at + 10.0)
        assert eta["elapsed_seconds"] == 10.0
        assert eta["trials_per_second"] == 0.2
        assert eta["estimated_total_trials"] == 4
        assert eta["eta_seconds"] == 10.0  # 2 remaining at 0.2/s

    def test_no_finished_trials_means_no_eta(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        queue.submit(_payload())
        record = queue.claim(worker_pid=os.getpid())
        eta = _throughput_eta(record, trials_done=0, now=record.started_at + 5.0)
        assert eta["trials_per_second"] == 0.0
        assert eta["eta_seconds"] is None


class TestServerEndpoints:
    def test_jobs_listing_carries_depths_and_stale(self, server):
        status, body = http_json("GET", f"{server.url}/jobs")
        assert status == 200
        assert body["depths"] == {"pending": 0, "running": 0, "done": 0, "failed": 0}
        assert body["stale"] == []

    def test_metrics_scrape_is_prometheus_text(self, server):
        import urllib.request

        status, body = http_json("POST", f"{server.url}/jobs", _payload())
        assert status == 200
        _wait_done(server.url, body["job_id"])

        with urllib.request.urlopen(f"{server.url}/metrics", timeout=30) as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{outcome="done"} 1' in text
        assert 'repro_queue_depth{state="done"} 1' in text
        assert "repro_server_uptime_seconds" in text
        assert "repro_queue_stale_running 0" in text
        # The worker's trial probes flow into the same registry.
        assert 'repro_trials_total{engine="counts"} 2' in text
        assert "repro_window_size_bucket" in text
        assert "repro_worker_heartbeat_seconds" in text

    def test_running_job_status_exposes_eta_fields(self, server):
        # A claimed record with started_at set renders the throughput block;
        # synthesize one directly so the test never races a real worker.
        queue = server.queue
        queue.submit(_payload(seed=99, trials=4))
        record = queue.claim(worker_pid=os.getpid())
        status, body = http_json("GET", f"{server.url}/jobs/{record.job_id}")
        assert status == 200
        progress = body["progress"]
        assert progress["elapsed_seconds"] >= 0.0
        assert progress["estimated_total_trials"] == 4
        assert "trials_per_second" in progress and "eta_seconds" in progress
        queue.finish(record.job_id)  # leave the shared server clean

    def test_trace_file_written_and_telemetry_restored(self, tmp_path):
        instance = ReproServer(tmp_path / "queue", port=0, workers=1)
        was_enabled = metrics.enabled()
        instance.start()
        try:
            assert metrics.enabled()
            status, body = http_json("POST", f"{instance.url}/jobs", _payload(seed=7))
            assert status == 200
            _wait_done(instance.url, body["job_id"])
        finally:
            instance.stop()
        assert metrics.enabled() == was_enabled

        from repro.telemetry.tracing import read_trace

        records = read_trace(tmp_path / "queue" / "trace.jsonl")
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "header"
        assert "claim" in kinds and "job" in kinds and "trial" in kinds
        job_record = next(r for r in records if r["kind"] == "job")
        assert job_record["outcome"] == "done"
        assert job_record["worker"] == "worker-0"
        # Worker trial records are context-tagged with their job id.
        trial = next(r for r in records if r["kind"] == "trial")
        assert trial["job"] == body["job_id"]
