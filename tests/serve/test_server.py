"""HTTP API: submit/status/artifact flows and their failure statuses."""

import threading
import time

import pytest

from repro.engine.run_config import RunConfig
from repro.experiments.registry import get_experiment
from repro.serve.cache import canonicalize_artifact, job_payload
from repro.serve.server import ReproServer, http_get_bytes, http_json


def _payload(seed=5, trials=2):
    return job_payload(
        "epidemic_convergence",
        "quick",
        {"ns": [64], "trials": trials},
        RunConfig(seed=seed, engine="counts"),
    )


def _wait_done(url, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = http_json("GET", f"{url}/jobs/{job_id}")
        assert status == 200
        if body["state"] in ("done", "failed"):
            return body
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never finished")


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(tmp_path / "queue", port=0, workers=2)
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def idle_server(tmp_path):
    """HTTP listener with no workers draining the queue (jobs stay pending)."""
    instance = ReproServer(tmp_path / "queue", port=0, workers=1)
    thread = threading.Thread(target=instance.http.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.http.shutdown()
    thread.join(timeout=10)
    instance.http.server_close()


class TestFlows:
    def test_submit_poll_fetch(self, server):
        payload = _payload()
        status, body = http_json("POST", f"{server.url}/jobs", payload)
        assert status == 200
        assert body["state"] == "pending"
        assert body["cached"] is False
        job_id = body["job_id"]
        assert job_id == body["digest"][:16]

        final = _wait_done(server.url, job_id)
        assert final["state"] == "done"
        assert final["progress"] == {"trials_done": 0, "inflight": 0}

        status, artifact = http_get_bytes(f"{server.url}/jobs/{job_id}/artifact")
        assert status == 200
        direct = get_experiment("epidemic_convergence").run(
            "quick",
            run=RunConfig.from_dict(payload["run_config"]),
            **payload["params"],
        )
        assert artifact == canonicalize_artifact(direct).to_json().encode("utf-8")

    def test_resubmission_reports_cached(self, server):
        payload = _payload()
        status, first = http_json("POST", f"{server.url}/jobs", payload)
        assert status == 200
        _wait_done(server.url, first["job_id"])
        status, second = http_json("POST", f"{server.url}/jobs", payload)
        assert status == 200
        assert second["job_id"] == first["job_id"]
        assert second["cached"] is True

    def test_job_listing(self, server):
        status, body = http_json("POST", f"{server.url}/jobs", _payload())
        assert status == 200
        status, listing = http_json("GET", f"{server.url}/jobs")
        assert status == 200
        assert [job["job_id"] for job in listing["jobs"]] == [body["job_id"]]

    def test_healthz(self, server):
        import repro

        status, body = http_json("GET", f"{server.url}/healthz")
        assert status == 200
        assert body["ok"] is True
        assert body["version"] == repro.__version__
        assert body["uptime_seconds"] >= 0.0
        assert body["queue"] == {"pending": 0, "running": 0, "done": 0, "failed": 0}
        assert body["jobs_served"] == {
            "simulated": 0,
            "cache_hits": 0,
            "done": 0,
            "failed": 0,
        }


class TestFailureStatuses:
    def test_unknown_job_is_404(self, server):
        status, body = http_json("GET", f"{server.url}/jobs/nope")
        assert status == 404
        assert "unknown job id" in body["error"]
        status, body = http_json("GET", f"{server.url}/jobs/nope/artifact")
        assert status == 404

    def test_invalid_payload_is_400(self, server):
        status, body = http_json("POST", f"{server.url}/jobs", {"experiment": "nope"})
        assert status == 400
        assert "unknown experiment" in body["error"]

    def test_entropy_seed_is_400(self, server):
        payload = _payload()
        payload["run_config"]["seed"] = None
        status, body = http_json("POST", f"{server.url}/jobs", payload)
        assert status == 400
        assert "integer run_config.seed" in body["error"]

    def test_non_json_body_is_400(self, server):
        import urllib.request

        request = urllib.request.Request(
            f"{server.url}/jobs", data=b"{nope", method="POST"
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            status = 200
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400

    def test_artifact_before_done_is_409(self, idle_server):
        url = f"http://127.0.0.1:{idle_server.port}"
        status, body = http_json("POST", f"{url}/jobs", _payload())
        assert status == 200
        status, body = http_json("GET", f"{url}/jobs/{body['job_id']}/artifact")
        assert status == 409
        assert body["state"] == "pending"
        assert "not done" in body["error"]

    def test_unknown_endpoint_is_404(self, server):
        assert http_json("GET", f"{server.url}/nope")[0] == 404
        assert http_json("POST", f"{server.url}/nope", {})[0] == 404
