"""Workers: memoized resumable execution, cache hits, kill -9 survival.

The load-bearing assertions are byte-comparisons: a resumed, recovered, or
cache-served artifact must equal the uninterrupted direct run byte for
byte.  ``epidemic_convergence`` is the reference workload because its rows
are a pure function of ``(params, run_config)`` -- no wall clock.
"""

import os
import shutil
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.engine.run_config import RunConfig
from repro.experiments.registry import get_experiment
from repro.serve.cache import ArtifactCache, canonicalize_artifact, job_payload
from repro.serve.checkpoint import CheckpointError
from repro.serve.queue import JobQueue
from repro.serve.worker import TrialMemo, Worker, drain, execute_payload

SRC_ROOT = Path(repro.__file__).resolve().parent.parent


def _payload(seed=1, engine="counts", ns=(64,), trials=3, **config_overrides):
    config = RunConfig(seed=seed, engine=engine, **config_overrides)
    return job_payload(
        "epidemic_convergence", "quick", {"ns": list(ns), "trials": trials}, config
    )


def _direct_bytes(payload) -> bytes:
    """The reference artifact: a plain in-process run, canonicalized."""
    spec = get_experiment(payload["experiment"])
    config = RunConfig.from_dict(payload["run_config"])
    result = spec.run(scale=payload["scale"], run=config, **payload["params"])
    return canonicalize_artifact(result).to_json().encode("utf-8")


class TestExecutePayload:
    @pytest.mark.parametrize("engine", ("compiled", "counts"))
    def test_artifact_matches_direct_run(self, tmp_path, engine):
        payload = _payload(engine=engine)
        artifact = execute_payload(payload, tmp_path / "memo")
        assert artifact.to_json().encode("utf-8") == _direct_bytes(payload)

    def test_memo_replay_is_byte_identical(self, tmp_path):
        payload = _payload()
        first = execute_payload(payload, tmp_path / "memo")
        # Second pass replays every trial from disk -- still byte-identical.
        second = execute_payload(payload, tmp_path / "memo")
        assert second.to_json() == first.to_json()

    def test_partial_memo_resumes_to_identical_bytes(self, tmp_path):
        """Finished-trial subset + fresh execution == uninterrupted run."""
        payload = _payload(trials=4)
        complete = tmp_path / "complete"
        reference = execute_payload(payload, complete).to_json()
        partial = tmp_path / "partial"
        partial.mkdir()
        shutil.copy(complete / "job.json", partial / "job.json")
        trial_files = sorted(complete.glob("call*-trial*.json"))
        assert len(trial_files) >= 4
        for entry in trial_files[: len(trial_files) // 2]:
            shutil.copy(entry, partial / entry.name)
        assert execute_payload(payload, partial).to_json() == reference

    def test_jobs_layout_does_not_change_rows(self, tmp_path):
        """Per-trial streams are layout-independent: same rows for any --jobs."""
        serial = execute_payload(_payload(jobs=1), tmp_path / "serial")
        fanned = execute_payload(_payload(jobs=2), tmp_path / "fanned")
        assert fanned.rows == serial.rows

    def test_memo_written_under_one_layout_replays_under_another(self, tmp_path):
        """The memo stores per-trial results, not per-process ones."""
        serial_payload, fanned_payload = _payload(jobs=1), _payload(jobs=2)
        memo = tmp_path / "memo"
        execute_payload(serial_payload, memo)
        # Re-pin the directory to the jobs=2 payload and replay under it:
        # every trial must come back from disk with identical rows.
        from repro.serve.worker import write_job_meta

        write_job_meta(memo, fanned_payload)
        replayed = execute_payload(fanned_payload, memo)
        assert replayed.rows == execute_payload(serial_payload, tmp_path / "ref").rows

    def test_mismatched_memo_dir_is_refused(self, tmp_path):
        execute_payload(_payload(seed=1), tmp_path / "memo")
        with pytest.raises(CheckpointError, match="different job"):
            execute_payload(_payload(seed=2), tmp_path / "memo")


class TestWorker:
    def test_drain_produces_cached_artifact(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        cache = ArtifactCache(tmp_path / "cache")
        payload = _payload()
        record = queue.submit(payload)
        worker = drain(queue, cache, timeout=120)
        assert queue.get(record.job_id).state == "done"
        assert worker.simulations_run == 1
        assert cache.get_bytes(record.digest) == _direct_bytes(payload)
        # checkpoints are dropped once the artifact is cached
        assert not (tmp_path / "queue" / "checkpoints" / record.job_id).exists()

    def test_resubmission_is_a_pure_cache_hit(self, tmp_path):
        """Same payload, fresh queue, shared cache: zero simulations."""
        cache = ArtifactCache(tmp_path / "cache")
        payload = _payload()
        first_queue = JobQueue(tmp_path / "q1")
        first_queue.submit(payload)
        drain(first_queue, cache, timeout=120)
        second_queue = JobQueue(tmp_path / "q2")
        record = second_queue.submit(payload)
        worker = drain(second_queue, cache, timeout=120)
        assert worker.simulations_run == 0
        assert worker.cache_hits == 1
        assert second_queue.get(record.job_id).state == "done"
        assert second_queue.get(record.job_id).cached is True

    def test_failing_job_lands_in_failed(self, tmp_path):
        queue = JobQueue(tmp_path / "queue", max_retries=0)
        cache = ArtifactCache(tmp_path / "cache")
        # A payload that validates but cannot execute on its engine:
        # optimal_silent exceeds the compiled engine's state-space cap.
        payload = job_payload(
            "optimal_silent",
            "quick",
            {"ns": [16], "trials": 1},
            RunConfig(seed=0, engine="compiled"),
        )
        record = queue.submit(payload)
        Worker(queue, cache).run_once()
        failed = queue.get(record.job_id)
        assert failed.state == "failed"
        assert failed.error and "CompilationError" in failed.error


class TestKillRecovery:
    def test_sigkilled_worker_job_completes_byte_identically(self, tmp_path):
        """kill -9 mid-campaign; a fresh worker finishes with the same bytes."""
        payload = _payload(
            seed=3, engine="compiled", ns=(4096,), trials=4, check_interval=256
        )
        queue_root, cache_root = tmp_path / "queue", tmp_path / "cache"
        queue = JobQueue(queue_root)
        cache = ArtifactCache(cache_root)
        record = queue.submit(payload)
        ckpt_dir = queue.checkpoint_dir(record.job_id)

        script = textwrap.dedent(
            f"""
            from repro.serve.cache import ArtifactCache
            from repro.serve.queue import JobQueue
            from repro.serve.worker import Worker
            Worker(JobQueue({str(queue_root)!r}), ArtifactCache({str(cache_root)!r})).run_once()
            """
        )
        env = dict(os.environ, PYTHONPATH=str(SRC_ROOT))
        victim = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            # Wait until the worker has an in-flight engine checkpoint on
            # disk, then kill it without any chance to clean up.
            memo = TrialMemo(ckpt_dir)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                progress = memo.progress()
                if progress["inflight"] or progress["trials_done"]:
                    break
                if victim.poll() is not None:
                    pytest.fail("worker exited before checkpointing anything")
                time.sleep(0.01)
            else:
                pytest.fail("worker never wrote a checkpoint")
            victim.kill()
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()

        # The crash left an honest trail: still running, dead pid.
        stale = queue.get(record.job_id)
        assert stale.state == "running"
        assert stale.worker_pid == victim.pid

        worker = drain(queue, cache, timeout=180)
        recovered = queue.get(record.job_id)
        assert recovered.state == "done"
        assert recovered.retries == 1  # the crash cost exactly one retry
        assert worker.simulations_run == 1
        assert cache.get_bytes(record.digest) == _direct_bytes(payload)
