"""CLI surface of the serve subsystem: submit/jobs/fetch, --checkpoint/--resume,
bench report -- including the PR-8 fail-fast contract (exit 2, ``error: ...``,
never a traceback)."""

import json
import time

import pytest

from repro.cli import main
from repro.engine.run_config import RunConfig
from repro.experiments.registry import get_experiment
from repro.serve.cache import canonicalize_artifact
from repro.serve.server import ReproServer


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(tmp_path / "queue", port=0, workers=2)
    instance.start()
    yield instance
    instance.stop()


def _wait_done(capsys, url, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, out = run_cli(capsys, "jobs", job_id, "--url", url)
        assert code == 0, out
        if "state:   done" in out or "state:   failed" in out:
            return out
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never finished")


class TestServeClient:
    def test_submit_jobs_fetch_round_trip(self, capsys, tmp_path, server):
        code, out = run_cli(
            capsys,
            "submit", "epidemic_convergence", "--url", server.url,
            "--engine", "counts", "--seed", "5",
            "--param", "ns=[64]", "--param", "trials=2",
        )
        assert code == 0, out
        job_id = out.splitlines()[0].split()[1]

        status = _wait_done(capsys, server.url, job_id)
        assert "state:   done" in status

        code, listing = run_cli(capsys, "jobs", "--url", server.url)
        assert code == 0 and job_id in listing

        target = tmp_path / "artifact.json"
        code, out = run_cli(
            capsys, "fetch", job_id, "--url", server.url, "--output", str(target)
        )
        assert code == 0, out
        direct = get_experiment("epidemic_convergence").run(
            "quick", run=RunConfig(seed=5, engine="counts"), ns=[64], trials=2
        )
        assert target.read_bytes() == canonicalize_artifact(direct).to_json().encode()

        # without --output the artifact renders as a table
        code, out = run_cli(capsys, "fetch", job_id, "--url", server.url)
        assert code == 0 and "epidemic_convergence" in out

    def test_duplicate_submission_reports_cached(self, capsys, server):
        argv = (
            "submit", "epidemic_convergence", "--url", server.url,
            "--engine", "counts", "--seed", "6",
            "--param", "ns=[64]", "--param", "trials=2",
        )
        code, out = run_cli(capsys, *argv)
        assert code == 0
        _wait_done(capsys, server.url, out.splitlines()[0].split()[1])
        code, out = run_cli(capsys, *argv)
        assert code == 0 and "already cached" in out

    def test_unknown_job_id_fails_fast(self, capsys, server):
        for argv in (("jobs", "nope"), ("fetch", "nope")):
            code, out = run_cli(capsys, *argv, "--url", server.url)
            assert code == 2
            assert out.startswith("error: unknown job id"), out

    def test_bad_submission_fails_fast(self, capsys, server):
        code, out = run_cli(capsys, "submit", "nope", "--url", server.url)
        assert code == 2 and out.startswith("error: unknown experiment")
        code, out = run_cli(
            capsys, "submit", "epidemic_convergence", "--url", server.url,
            "--param", "malformed",
        )
        assert code == 2 and "KEY=VALUE" in out

    def test_unreachable_server_fails_fast(self, capsys):
        dead = "http://127.0.0.1:1"
        for argv in (
            ("submit", "epidemic_convergence"),
            ("jobs",),
            ("jobs", "someid"),
            ("fetch", "someid"),
        ):
            code, out = run_cli(capsys, *argv, "--url", dead)
            assert code == 2
            assert out.startswith("error: cannot reach server"), (argv, out)


class TestCheckpointResume:
    def test_resume_replays_byte_identically(self, capsys, tmp_path):
        ck = tmp_path / "ck"
        base = (
            "run", "epidemic_convergence", "--engine", "compiled", "--seed", "3",
        )
        code, out = run_cli(
            capsys, *base, "--checkpoint", str(ck), "--output", str(tmp_path / "a")
        )
        assert code == 0, out
        code, out = run_cli(
            capsys, *base, "--resume", str(ck), "--output", str(tmp_path / "b")
        )
        assert code == 0, out
        first = (tmp_path / "a" / "epidemic_convergence.json").read_bytes()
        second = (tmp_path / "b" / "epidemic_convergence.json").read_bytes()
        assert first == second
        # wall_time is canonicalized so the comparison is meaningful
        assert json.loads(first)["provenance"]["wall_time"] == 0.0

    def test_resume_digest_mismatch_fails_fast(self, capsys, tmp_path):
        ck = tmp_path / "ck"
        code, _ = run_cli(
            capsys, "run", "epidemic_convergence", "--engine", "compiled",
            "--seed", "3", "--checkpoint", str(ck),
        )
        assert code == 0
        code, out = run_cli(
            capsys, "run", "epidemic_convergence", "--engine", "counts",
            "--seed", "3", "--resume", str(ck),
        )
        assert code == 2
        assert out.startswith("error:") and "different job" in out

    def test_resume_without_checkpoint_fails_fast(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "run", "epidemic_convergence", "--resume", str(tmp_path / "void")
        )
        assert code == 2 and "nothing to resume" in out

    def test_checkpoint_excludes_all_and_resume(self, capsys, tmp_path):
        code, out = run_cli(capsys, "run", "all", "--checkpoint", str(tmp_path / "ck"))
        assert code == 2 and "single experiment" in out
        code, out = run_cli(
            capsys, "run", "epidemic_convergence",
            "--checkpoint", str(tmp_path / "a"), "--resume", str(tmp_path / "b"),
        )
        assert code == 2 and "mutually exclusive" in out

    def test_unknown_experiment_fails_fast(self, capsys):
        code, out = run_cli(capsys, "run", "nope")
        assert code == 2
        assert out.startswith("error: unknown experiment")


class TestBenchReport:
    def _baseline(self, root, area, history):
        (root / f"BENCH_{area}.json").write_text(
            json.dumps({"area": area, "rows": [], "history": history})
        )

    def test_trend_renders_every_history_entry(self, capsys, tmp_path):
        self._baseline(
            tmp_path,
            "demo",
            [
                {"head": "a" * 40, "rows": [{"n": 1, "speedup": 2.0}]},
                {"head": "b" * 40, "rows": [{"n": 1, "speedup": 3.0}]},
            ],
        )
        code, out = run_cli(capsys, "bench", "report", "--root", str(tmp_path))
        assert code == 0
        assert "== bench demo: 2 recorded entries ==" in out
        assert "aaaaaaaaaa" in out and "bbbbbbbbbb" in out

    def test_legacy_baseline_without_history(self, capsys, tmp_path):
        (tmp_path / "BENCH_old.json").write_text(
            json.dumps({"area": "old", "rows": [{"n": 7, "speedup": 1.5}]})
        )
        code, out = run_cli(capsys, "bench", "report", "--root", str(tmp_path))
        assert code == 0
        assert "== bench old: 1 recorded entry ==" in out
        assert "(unrecorded)" in out

    def test_unknown_area_fails_fast(self, capsys, tmp_path):
        self._baseline(tmp_path, "demo", [])
        code, out = run_cli(
            capsys, "bench", "report", "--root", str(tmp_path), "--area", "nope"
        )
        assert code == 2
        assert out.startswith("error: unknown benchmark area")
        assert "demo" in out  # the known areas are listed

    def test_committed_baselines_render(self, capsys):
        """The real repo-root BENCH_*.json files all render."""
        code, out = run_cli(capsys, "bench", "report")
        assert code == 0
        assert out.count("== bench ") >= 7

    def test_markdown_mode(self, capsys, tmp_path):
        self._baseline(tmp_path, "demo", [{"head": None, "rows": [{"n": 1}]}])
        code, out = run_cli(
            capsys, "bench", "report", "--root", str(tmp_path), "--markdown"
        )
        assert code == 0 and "| entry | head" in out
