"""Tests for harmonic numbers."""

import math

import pytest

from repro.analysis.harmonic import harmonic_number


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(25.0 / 12.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)

    def test_asymptotic_form_agrees_with_exact(self):
        # Compare the asymptotic branch against the exact sum near the cutoff.
        exact = sum(1.0 / i for i in range(1, 20_001))
        assert harmonic_number(20_000) == pytest.approx(exact, rel=1e-9)

    def test_monotone(self):
        values = [harmonic_number(k) for k in range(1, 50)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_close_to_log_plus_gamma(self):
        assert harmonic_number(1000) == pytest.approx(math.log(1000) + 0.5772156649, abs=1e-3)
