"""Tests for the closed-form predictions module."""

import math

import pytest

from repro.analysis.theory import (
    TABLE1_ROWS,
    expected_binary_tree_assignment_time,
    expected_bounded_epidemic_time,
    expected_epidemic_interactions,
    expected_fratricide_interactions,
    expected_roll_call_interactions,
    expected_silent_n_state_worst_case_interactions,
    predicted_parallel_time,
    predicted_state_count,
)


class TestProcessPredictions:
    def test_epidemic_small_case(self):
        # n = 3: (n-1) * H_2 = 2 * 1.5 = 3.
        assert expected_epidemic_interactions(3) == pytest.approx(3.0)

    def test_epidemic_close_to_n_ln_n(self):
        n = 1000
        # (n - 1) H_{n-1} = n ln n + Theta(n); the ratio tends to 1 from above.
        ratio = expected_epidemic_interactions(n) / (n * math.log(n))
        assert 1.0 < ratio < 1.15

    def test_roll_call_is_1_5x_epidemic_asymptotically(self):
        # E[R_n] / E[T_n] -> 1.5; the finite-n ratio approaches it from below
        # because E[T_n] = (n-1) H_{n-1} carries a +gamma*n lower-order term.
        small = expected_roll_call_interactions(10_000) / expected_epidemic_interactions(10_000)
        large = expected_roll_call_interactions(10**7) / expected_epidemic_interactions(10**7)
        assert 1.3 < small < 1.5
        assert small < large < 1.5

    def test_bounded_epidemic_constant_k(self):
        assert expected_bounded_epidemic_time(64, 2) == pytest.approx(2 * 8.0)

    def test_bounded_epidemic_log_regime(self):
        n = 64
        k = 3 * math.ceil(math.log2(n))
        assert expected_bounded_epidemic_time(n, k) == pytest.approx(3 * math.log(n))

    def test_fratricide_closed_form(self):
        # Lemma 4.2: sum equals n (n - 1) (1 - 1/n) = (n - 1)^2.
        assert expected_fratricide_interactions(10) == pytest.approx(81.0)

    def test_silent_n_state_worst_case(self):
        assert expected_silent_n_state_worst_case_interactions(4) == pytest.approx(3 * 6)

    def test_binary_tree_assignment_is_linear(self):
        assert expected_binary_tree_assignment_time(100) == pytest.approx(200.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_epidemic_interactions(0)
        with pytest.raises(ValueError):
            expected_bounded_epidemic_time(10, 0)
        with pytest.raises(ValueError):
            expected_fratricide_interactions(1)


class TestTable1Predictions:
    def test_protocol_time_shapes(self):
        assert predicted_parallel_time("silent-n-state", 32) == 1024
        assert predicted_parallel_time("optimal-silent", 32) == 32
        assert predicted_parallel_time("sublinear", 32, depth=1) == pytest.approx(
            2 * 32 ** 0.5
        )
        assert predicted_parallel_time("sublinear", 32, depth=10) == pytest.approx(math.log(32))

    def test_sublinear_requires_depth(self):
        with pytest.raises(ValueError):
            predicted_parallel_time("sublinear", 32)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            predicted_parallel_time("bogus", 32)

    def test_table1_rows_cover_all_protocols(self):
        protocols = [row.protocol for row in TABLE1_ROWS]
        assert len(protocols) == 4
        assert any("Silent-n-state" in p for p in protocols)
        assert any("Optimal-Silent" in p for p in protocols)
        assert sum("Sublinear" in p for p in protocols) == 2

    def test_table1_expected_time_functions_are_ordered(self):
        n = 256
        silent_n_state, optimal_silent, sublinear_log, sublinear_const = (
            row.expected_time_fn(n) for row in TABLE1_ROWS
        )
        assert silent_n_state > optimal_silent > sublinear_const > sublinear_log

    def test_predicted_state_count(self):
        assert predicted_state_count("silent-n-state", 42) == 42
        assert predicted_state_count("optimal-silent", 42) is None
