"""Tests for growth-law fitting."""

import math

import pytest

from repro.analysis.scaling import (
    GROWTH_MODELS,
    classify_growth,
    fit_growth_model,
    fit_power_law,
)


class TestPowerLaw:
    def test_recovers_quadratic_exponent(self):
        ns = [16, 32, 64, 128]
        values = [0.5 * n**2 for n in ns]
        alpha, coefficient, r2 = fit_power_law(ns, values)
        assert alpha == pytest.approx(2.0, abs=1e-6)
        assert coefficient == pytest.approx(0.5, rel=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_recovers_linear_exponent_with_noise(self):
        ns = [16, 32, 64, 128, 256]
        values = [3.0 * n * (1 + 0.05 * ((-1) ** i)) for i, n in enumerate(ns)]
        alpha, _, r2 = fit_power_law(ns, values)
        assert 0.9 < alpha < 1.1
        assert r2 > 0.99

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])

    def test_requires_positive_data(self):
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [1.0, -2.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [1.0])


class TestGrowthModels:
    def test_fit_recovers_coefficient(self):
        ns = [8, 16, 32, 64]
        values = [2.5 * n for n in ns]
        fit = fit_growth_model(ns, values, "n")
        assert fit.coefficient == pytest.approx(2.5)
        assert fit.residual == pytest.approx(0.0, abs=1e-12)

    def test_predict(self):
        fit = fit_growth_model([8, 16], [16.0, 32.0], "n")
        assert fit.predict(100) == pytest.approx(200.0)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            fit_growth_model([8, 16], [1.0, 2.0], "n^42")

    def test_classify_quadratic_data(self):
        ns = [16, 32, 64, 128]
        values = [0.4 * n**2 for n in ns]
        assert classify_growth(ns, values).model == "n^2"

    def test_classify_linear_data(self):
        ns = [16, 32, 64, 128]
        values = [7.0 * n + 5 for n in ns]
        assert classify_growth(ns, values).model in ("n", "n log n")

    def test_classify_logarithmic_data(self):
        ns = [64, 256, 1024, 4096]
        values = [3.0 * math.log(n) for n in ns]
        assert classify_growth(ns, values).model == "log n"

    def test_classify_requires_candidates(self):
        with pytest.raises(ValueError):
            classify_growth([1, 2], [1, 2], candidates=())

    def test_all_models_are_positive_functions(self):
        for model, f in GROWTH_MODELS.items():
            assert f(100) > 0, model
