"""Tests for observed-state counting."""

import pytest

from repro.analysis.state_space import ObservedStateCounter, count_observed_states
from repro.core.silent_n_state import SilentNStateSSR
from repro.core.fratricide import FratricideLeaderElection
from tests.conftest import make_sublinear


class TestObservedStateCounter:
    def test_record_configuration(self):
        protocol = SilentNStateSSR(6)
        counter = ObservedStateCounter(protocol)
        counter.record_configuration(protocol.worst_case_configuration())
        # The worst case uses ranks 0..4 (rank 5 missing): 5 distinct states.
        assert counter.count == 5

    def test_invalid_sample_interval(self):
        with pytest.raises(ValueError):
            ObservedStateCounter(SilentNStateSSR(4), sample_every=0)


class TestCountObservedStates:
    def test_fratricide_uses_two_states(self):
        assert count_observed_states(FratricideLeaderElection(10), interactions=300, rng=0) == 2

    def test_silent_n_state_bounded_by_n(self):
        protocol = SilentNStateSSR(10)
        observed = count_observed_states(
            protocol,
            configuration=protocol.worst_case_configuration(),
            interactions=2000,
            rng=1,
        )
        assert observed <= 10

    def test_sublinear_uses_many_more_states_than_n(self):
        protocol = make_sublinear(8, depth=1)
        observed = count_observed_states(
            protocol,
            configuration=protocol.unique_names_configuration(),
            interactions=400,
            rng=2,
        )
        # History trees and rosters change constantly: far more than n states.
        assert observed > 8
