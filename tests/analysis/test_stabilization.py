"""Tests for the stabilization-time (recovery) analysis."""

import pytest

from repro.adversary.plan import FaultPlan
from repro.analysis.stabilization import (
    measure_recovery,
    recovered_fraction,
    recovery_curve,
    recovery_interactions,
    recovery_parallel_time,
    recovery_statistics,
)
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.results import SimulationResult
from repro.engine.run_config import RunConfig


def _result(interactions, last_fault_at=None, stopped=True, n=10):
    extra = {} if last_fault_at is None else {"last_fault_at": float(last_fault_at)}
    return SimulationResult(
        n=n, interactions=interactions, stopped=stopped, reason="stabilized", extra=extra
    )


class TestRecoveryQuantities:
    def test_recovery_counts_from_the_last_fault(self):
        assert recovery_interactions(_result(500, last_fault_at=200)) == 300
        assert recovery_parallel_time(_result(500, last_fault_at=200)) == 30.0

    def test_fault_free_runs_count_from_zero(self):
        assert recovery_interactions(_result(500)) == 500

    def test_never_negative(self):
        # A cap hit before the last scheduled fault would leave
        # interactions < last_fault_at; recovery clamps at zero.
        assert recovery_interactions(_result(100, last_fault_at=200)) == 0

    def test_recovered_fraction(self):
        results = [_result(100), _result(100, stopped=False), _result(100)]
        assert recovered_fraction(results) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            recovered_fraction([])

    def test_statistics_include_censored_trials(self):
        results = [
            _result(400, last_fault_at=200),
            _result(1000, last_fault_at=200, stopped=False),
        ]
        statistics = recovery_statistics("demo", results)
        assert statistics.trials == 2
        assert statistics.values == [20.0, 80.0]


class TestRecoveryCurve:
    def test_curve_reaches_the_recovered_fraction(self):
        results = [
            _result(300, last_fault_at=200),
            _result(500, last_fault_at=200),
            _result(900, last_fault_at=200, stopped=False),
        ]
        curve = recovery_curve(results, points=5)
        assert curve[0]["time"] == 0.0
        assert curve[-1]["fraction_recovered"] == pytest.approx(2 / 3)
        fractions = [row["fraction_recovered"] for row in curve]
        assert fractions == sorted(fractions)

    def test_all_censored_gives_flat_zero_curve(self):
        curve = recovery_curve([_result(900, stopped=False)], points=3)
        assert all(row["fraction_recovered"] == 0.0 for row in curve)

    def test_validation(self):
        with pytest.raises(ValueError):
            recovery_curve([], points=4)
        with pytest.raises(ValueError):
            recovery_curve([_result(10)], points=1)


class TestMeasureRecovery:
    def test_time_to_correct_and_time_to_silence(self):
        plan = FaultPlan.bursts([(40, 4)])
        measurements = measure_recovery(
            protocol_factory=lambda: SilentNStateSSR(8),
            plan=plan,
            trials=3,
            run=RunConfig(seed=5),
        )
        assert set(measurements) == {"correct", "silent"}
        for statistics in measurements.values():
            assert statistics.trials == 3
            assert all(value >= 0.0 for value in statistics.values)
        # Silence implies correctness for this protocol, never the reverse.
        assert measurements["silent"].mean >= measurements["correct"].mean
