"""Tests for trajectory recording and ASCII rendering."""

import pytest

from repro.analysis.traces import (
    MetricSeries,
    MetricsRecorder,
    leader_count_metric,
    render_series,
    sparkline,
)
from repro.core.fratricide import FratricideLeaderElection
from repro.engine.simulation import Simulation


class TestMetricSeries:
    def test_append_and_final_value(self):
        series = MetricSeries("x")
        series.append(0.0, 1.0)
        series.append(1.0, 3.0)
        assert len(series) == 2 and series.final_value == 3.0

    def test_empty_final_value(self):
        assert MetricSeries("x").final_value is None

    def test_downsample_preserves_endpoints(self):
        series = MetricSeries("x", times=list(range(100)), values=[float(i) for i in range(100)])
        compact = series.downsample(10)
        assert compact.values[0] == 0.0 and compact.values[-1] == 99.0
        assert len(compact) <= 11

    def test_downsample_short_series_is_identity(self):
        series = MetricSeries("x", times=[0, 1], values=[1.0, 2.0])
        assert series.downsample(10).values == [1.0, 2.0]

    def test_downsample_invalid(self):
        with pytest.raises(ValueError):
            MetricSeries("x").downsample(0)


class TestMetricsRecorder:
    def _run(self, n=12, interactions=300, every=5):
        protocol = FratricideLeaderElection(n)
        recorder = MetricsRecorder(
            metrics={"leaders": leader_count_metric(lambda s: s.leader)},
            every=every,
            population_size=n,
        )
        simulation = Simulation(protocol, rng=0, hooks=[recorder])
        recorder.record_now(simulation.configuration)
        simulation.run(interactions)
        return recorder

    def test_records_initial_and_periodic_samples(self):
        recorder = self._run()
        series = recorder["leaders"]
        assert series.values[0] == 12.0
        assert len(series) >= 300 // 5

    def test_leader_series_is_nonincreasing(self):
        values = self._run()["leaders"].values
        assert all(later <= earlier for earlier, later in zip(values, values[1:]))

    def test_times_are_parallel_time(self):
        series = self._run(n=10, interactions=100, every=10)["leaders"]
        assert series.times[0] == 0.0
        assert max(series.times) <= 100 / 10 + 1e-9

    def test_requires_metrics_and_positive_interval(self):
        with pytest.raises(ValueError):
            MetricsRecorder(metrics={}, every=1)
        with pytest.raises(ValueError):
            MetricsRecorder(metrics={"x": lambda c: 0.0}, every=0)


class TestRendering:
    def test_sparkline_length_and_alphabet(self):
        line = sparkline([float(i) for i in range(200)], width=40)
        assert len(line) <= 41
        assert set(line) <= set(" .:-=+*#%@")

    def test_sparkline_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0], width=10)
        assert len(set(line)) == 1

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_render_series_contains_name_and_time_range(self):
        series = MetricSeries("leaders", times=[0.0, 1.0, 2.0], values=[3.0, 2.0, 1.0])
        text = render_series(series, width=30, height=4)
        assert text.startswith("leaders")
        assert "t = 0.0 .. 2.0" in text
        assert "#" in text

    def test_render_series_empty(self):
        assert "(no samples)" in render_series(MetricSeries("x"))

    def test_render_series_invalid_dimensions(self):
        series = MetricSeries("x", times=[0.0], values=[1.0])
        with pytest.raises(ValueError):
            render_series(series, width=0)
        with pytest.raises(ValueError):
            render_series(series, height=1)
