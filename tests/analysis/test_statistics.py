"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.statistics import ratio, relative_error, summarize


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_odd_length_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0 and summary.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        assert set(summarize([1.0]).as_dict()) == {"count", "mean", "std", "min", "median", "max"}


class TestErrorMetrics:
    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_relative_error_zero_prediction(self):
        assert relative_error(1.0, 0.0) == math.inf
        assert relative_error(0.0, 0.0) == 0.0

    def test_ratio(self):
        assert ratio(50.0, 100.0) == pytest.approx(0.5)
        assert ratio(1.0, 0.0) == math.inf
        assert ratio(0.0, 0.0) == 1.0
