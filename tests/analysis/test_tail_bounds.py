"""Tests for the tail-bound helpers."""

import math

import pytest

from repro.analysis.tail_bounds import (
    chernoff_interaction_bound,
    epidemic_upper_tail,
    janson_lower_tail,
    janson_upper_tail,
    sum_of_geometrics_mean,
)


class TestJansonBounds:
    def test_upper_tail_decreases_with_lambda(self):
        values = [janson_upper_tail(100.0, 0.05, lam) for lam in (1.0, 1.5, 2.0, 3.0)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_upper_tail_at_lambda_one_is_one(self):
        assert janson_upper_tail(100.0, 0.1, 1.0) == pytest.approx(1.0)

    def test_lower_tail_decreases_with_smaller_lambda(self):
        values = [janson_lower_tail(100.0, 0.05, lam) for lam in (1.0, 0.7, 0.5, 0.2)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_bounds_are_probabilities(self):
        assert 0.0 <= janson_upper_tail(50.0, 0.1, 2.0) <= 1.0
        assert 0.0 <= janson_lower_tail(50.0, 0.1, 0.5) <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            janson_upper_tail(-1.0, 0.1, 2.0)
        with pytest.raises(ValueError):
            janson_upper_tail(10.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            janson_upper_tail(10.0, 0.1, 0.5)
        with pytest.raises(ValueError):
            janson_lower_tail(10.0, 0.1, 1.5)

    def test_theorem_2_4_style_bound_is_exponentially_small(self):
        """The bound used for the Theta(n^2) concentration in Theorem 2.4."""
        n = 64
        mu = (n - 1) * n * (n - 1) / 2
        p_min = 1.0 / (n * (n - 1) / 2)
        assert janson_lower_tail(mu, p_min, 0.5) < math.exp(-10)


class TestEpidemicTail:
    def test_matches_lemma_2_7_formula(self):
        assert epidemic_upper_tail(100, 0.5) == pytest.approx(2.5 * math.log(100) / 100)

    def test_decreases_with_delta(self):
        assert epidemic_upper_tail(64, 1.0) < epidemic_upper_tail(64, 0.5)

    def test_requires_n_at_least_8(self):
        with pytest.raises(ValueError):
            epidemic_upper_tail(7, 0.5)


class TestChernoffInteractionBound:
    def test_vacuous_below_mean(self):
        assert chernoff_interaction_bound(10, 1000, 100) == 1.0

    def test_small_above_mean(self):
        assert chernoff_interaction_bound(10, 1000, 600) < 0.01

    def test_zero_interactions(self):
        assert chernoff_interaction_bound(10, 0, 5) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            chernoff_interaction_bound(1, 10, 5)
        with pytest.raises(ValueError):
            chernoff_interaction_bound(10, -1, 5)


class TestGeometricSums:
    def test_mean(self):
        assert sum_of_geometrics_mean([0.5, 0.25]) == pytest.approx(6.0)

    def test_empty(self):
        assert sum_of_geometrics_mean([]) == 0.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            sum_of_geometrics_mean([0.5, 0.0])
