"""Property-based tests on protocol-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fratricide import FratricideLeaderElection
from repro.core.initialized_ranking import InitializedLeaderDrivenRanking, SETTLED
from repro.core.optimal_silent import OptimalSilentSSR
from repro.engine.rng import make_rng
from repro.engine.scheduler import UniformPairScheduler
from tests.conftest import make_optimal_silent


def run_interactions(protocol, configuration, interactions, seed):
    rng = make_rng(seed)
    scheduler = UniformPairScheduler(protocol.n, rng=rng)
    for _ in range(interactions):
        i, j = scheduler.next_pair()
        protocol.transition(configuration[i], configuration[j], rng)
    return configuration


class TestFratricideProperties:
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=0, max_value=400),
        st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_leader_count_never_increases_and_never_hits_zero_from_all_leaders(
        self, n, interactions, seed
    ):
        protocol = FratricideLeaderElection(n)
        configuration = protocol.initial_configuration(make_rng(0))
        run_interactions(protocol, configuration, interactions, seed)
        leaders = protocol.leader_count(configuration)
        assert 1 <= leaders <= n


class TestInitializedRankingProperties:
    @given(
        st.integers(min_value=2, max_value=24),
        st.integers(min_value=0, max_value=500),
        st.integers(0, 2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_assigned_ranks_are_always_distinct_and_in_range(self, n, interactions, seed):
        """The binary-tree assignment can never create a duplicate or invalid rank."""
        protocol = InitializedLeaderDrivenRanking(n)
        configuration = protocol.initial_configuration(make_rng(0))
        run_interactions(protocol, configuration, interactions, seed)
        ranks = [state.rank for state in configuration if state.role == SETTLED]
        assert len(ranks) == len(set(ranks))
        assert all(1 <= rank <= n for rank in ranks)

    @given(st.integers(min_value=2, max_value=24), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_every_assigned_child_rank_is_held_by_a_settled_agent(self, n, seed):
        """The children counter only ever counts ranks that were actually handed out."""
        protocol = InitializedLeaderDrivenRanking(n)
        configuration = protocol.initial_configuration(make_rng(0))
        run_interactions(protocol, configuration, 30 * n, seed)
        settled_ranks = {state.rank for state in configuration if state.role == SETTLED}
        for state in configuration:
            if state.role != SETTLED:
                continue
            for offset in range(state.children):
                child_rank = 2 * state.rank + offset
                assert child_rank <= n
                assert child_rank in settled_ranks


class TestOptimalSilentProperties:
    @given(
        st.integers(min_value=4, max_value=16),
        st.integers(min_value=0, max_value=600),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_settled_ranks_stay_distinct_from_single_leader_awakening(
        self, n, interactions, seed
    ):
        """From a clean awakening with one leader, rank collisions never appear."""
        protocol = make_optimal_silent(n)
        configuration = protocol.single_leader_awakening_configuration()
        run_interactions(protocol, configuration, interactions, seed)
        ranks = [state.rank for state in configuration if state.role == "Settled"]
        assert len(ranks) == len(set(ranks))
        assert all(1 <= rank <= n for rank in ranks)

    @given(st.integers(min_value=4, max_value=14), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_stable_configuration_is_invariant(self, n, seed):
        protocol = make_optimal_silent(n)
        configuration = protocol.stable_configuration()
        before = sorted(state.rank for state in configuration)
        run_interactions(protocol, configuration, 20 * n, seed)
        assert sorted(state.rank for state in configuration) == before
