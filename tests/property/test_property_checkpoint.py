"""Property-based tests (hypothesis) on engine checkpoints.

Two families of properties:

* **Serialization** -- ``EngineCheckpoint`` survives its JSON round trip
  byte-identically for arbitrary JSON-able engine states, and the digest
  of a ``RunConfig`` is a pure function of its canonical dict.
* **Resume equivalence** -- for arbitrary seeds, populations, and
  checkpoint boundaries, capture-at-k + resume-in-a-fresh-engine is
  bit-identical to the uninterrupted run on both table engines: same
  ``SimulationResult``, same final generator state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.run_config import RunConfig, make_simulation
from repro.processes.epidemic import TwoWayEpidemicProtocol
from repro.serve.checkpoint import (
    EngineCheckpoint,
    capture_checkpoint,
    config_digest,
    restore_simulation,
)

JSON_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**100), max_value=2**100),  # PCG64 state is big
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
STATE_DICTS = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.one_of(JSON_SCALARS, st.lists(JSON_SCALARS, max_size=6)),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(
    engine=st.sampled_from(("compiled", "counts")),
    protocol=st.text(min_size=1, max_size=20),
    n=st.integers(min_value=1, max_value=10**9),
    interactions=st.integers(min_value=0, max_value=2**53),
    digest=st.text(alphabet="0123456789abcdef", min_size=64, max_size=64),
    state=STATE_DICTS,
)
def test_checkpoint_json_round_trip(engine, protocol, n, interactions, digest, state):
    checkpoint = EngineCheckpoint(
        engine=engine,
        protocol=protocol,
        n=n,
        interactions=interactions,
        config_digest=digest,
        state=state,
    )
    text = checkpoint.to_json()
    reloaded = EngineCheckpoint.from_json(text)
    assert reloaded == checkpoint
    assert reloaded.to_json() == text


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    check_interval=st.one_of(st.none(), st.integers(min_value=1, max_value=10**6)),
    max_interactions=st.one_of(st.none(), st.integers(min_value=0, max_value=2**40)),
    engine=st.sampled_from(("loop", "compiled", "counts")),
)
def test_config_digest_is_canonical(seed, check_interval, max_interactions, engine):
    """Digest is a pure function of the provenance dict, stable across copies."""
    config = RunConfig(
        engine=engine,
        stop="correct",
        seed=seed,
        check_interval=check_interval,
        max_interactions=max_interactions,
    )
    assert config_digest(config) == config_digest(RunConfig.from_dict(config.to_dict()))
    bumped = config.replace(seed=seed + 1)
    assert config_digest(bumped) != config_digest(config)


@settings(max_examples=15, deadline=None)
@given(
    engine=st.sampled_from(("compiled", "counts")),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=16, max_value=160),
    boundary=st.integers(min_value=1, max_value=6),
    check_interval=st.sampled_from((32, 64, 128)),
)
def test_resume_is_bit_identical(engine, seed, n, boundary, check_interval):
    """Checkpoint at any reached boundary, resume fresh, get the same run."""
    config = RunConfig(
        engine=engine, stop="correct", seed=seed, check_interval=check_interval
    )
    target = boundary * check_interval
    simulation = make_simulation(TwoWayEpidemicProtocol(n), config)
    captured = []

    def hook(live):
        if live.interactions >= target and not captured:
            captured.append(capture_checkpoint(live, config))

    simulation.on_check = hook
    full = simulation.run(config)
    if not captured:
        # The epidemic converged before the drawn boundary; the zero
        # boundary always exists, so re-target the first one instead of
        # discarding the example.
        simulation = make_simulation(TwoWayEpidemicProtocol(n), config)
        simulation.on_check = lambda live: captured.append(
            capture_checkpoint(live, config)
        ) if not captured else None
        full = simulation.run(config)

    reloaded = EngineCheckpoint.from_json(captured[0].to_json())
    resumed_sim = restore_simulation(TwoWayEpidemicProtocol(n), reloaded, config)
    resumed = resumed_sim.run(config)

    assert resumed.to_dict() == full.to_dict()
    assert resumed_sim.rng.bit_generator.state == simulation.rng.bit_generator.state
