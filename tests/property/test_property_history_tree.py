"""Property-based tests on the history-tree collision detector.

The two properties mirror the paper's key lemmas:

* structural invariants (simple labelling, bounded depth, no self-references)
  survive arbitrary interaction sequences,
* **safety** (Lemma 5.4): starting from singleton trees with unique names, no
  interaction sequence ever triggers a false collision detection.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sublinear.collision import HistoryTreeCollisionDetector
from repro.core.sublinear.protocol import SublinearState
from repro.engine.rng import make_rng


def make_agents(count, detector):
    agents = []
    for index in range(count):
        name = f"agent{index}"
        agents.append(
            SublinearState(
                role="Collecting",
                name=name,
                roster=frozenset({name}),
                tree=detector.fresh_tree(name),
            )
        )
    return agents


@st.composite
def interaction_schedules(draw):
    count = draw(st.integers(min_value=3, max_value=7))
    length = draw(st.integers(min_value=1, max_value=60))
    schedule = []
    for _ in range(length):
        i = draw(st.integers(min_value=0, max_value=count - 1))
        j = draw(st.integers(min_value=0, max_value=count - 2))
        schedule.append((i, j + (j >= i)))
    return count, schedule


class TestHistoryTreeProperties:
    @given(interaction_schedules(), st.integers(min_value=1, max_value=3), st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_safety_no_false_positives_from_clean_start(self, data, depth, seed):
        count, schedule = data
        detector = HistoryTreeCollisionDetector(count, depth=depth)
        agents = make_agents(count, detector)
        rng = make_rng(seed)
        for i, j in schedule:
            assert not detector.detect(agents[i], agents[j], rng)

    @given(interaction_schedules(), st.integers(min_value=1, max_value=3), st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants_hold_throughout(self, data, depth, seed):
        count, schedule = data
        detector = HistoryTreeCollisionDetector(count, depth=depth)
        agents = make_agents(count, detector)
        rng = make_rng(seed)
        for i, j in schedule:
            detector.detect(agents[i], agents[j], rng)
            for agent in (agents[i], agents[j]):
                assert agent.tree.is_simply_labelled()
                assert agent.tree.depth() <= depth
                assert agent.tree.name == agent.name
                assert all(
                    edge.child.name != agent.name for edge in agent.tree.iter_edges()
                )
                assert all(
                    0 <= edge.timer <= detector.timer_max for edge in agent.tree.iter_edges()
                )

    @given(interaction_schedules(), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_duplicate_names_are_never_missed_forever(self, data, seed):
        """A weaker liveness sanity check: with a duplicate present, running
        the schedule plus a guaranteed intermediary meeting detects it."""
        count, schedule = data
        detector = HistoryTreeCollisionDetector(count + 1, depth=1)
        agents = make_agents(count, detector)
        impostor = SublinearState(
            role="Collecting",
            name=agents[0].name,
            roster=frozenset({agents[0].name}),
            tree=detector.fresh_tree(agents[0].name),
        )
        rng = make_rng(seed)
        detected = False
        for i, j in schedule:
            if detector.detect(agents[i], agents[j], rng):
                detected = True
        # Force the canonical detection chain: agent0 -> witness -> impostor.
        witness = agents[1]
        detected = detected or detector.detect(agents[0], witness, rng)
        detected = detected or detector.detect(witness, impostor, rng)
        assert detected
