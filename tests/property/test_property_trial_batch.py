"""Property-based tests (hypothesis) on trial-batched freezing.

The trial-batched compiled engine keeps every trial's state row in one
``(T, n)`` matrix and advances only the live trials; a trial that has
converged (or hit the interaction cap) is *frozen* -- excluded from the
round's apply masks.  The property pinned down here: once a trial freezes,
its state row never changes again, no matter how long the surviving trials
keep running and scattering into the shared flat state vector.  The engine's
``record_freezes`` debug surface snapshots each row at the moment it
freezes, so the property is a direct array comparison against the final
matrix.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.run_config import RunConfig
from repro.engine.trial_batch import TrialBatchSimulation
from repro.engine.rng import spawn_rngs
from repro.processes.epidemic import TwoWayEpidemicProtocol


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=48),
    trials=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cap=st.integers(min_value=0, max_value=2_000),
)
def test_frozen_trials_never_mutate(n, trials, seed, cap):
    """Each trial's freeze-time snapshot equals its final state row.

    The interaction cap is drawn too, so trials freeze through both exits
    (converged and capped) at staggered times while batchmates keep running.
    """
    protocol = TwoWayEpidemicProtocol(n)
    rngs = spawn_rngs(seed, trials)
    configurations = [protocol.initial_configuration(rng) for rng in rngs]
    simulation = TrialBatchSimulation(
        protocol, rngs, configurations=configurations, record_freezes=True
    )
    results = simulation.run(
        RunConfig(engine="compiled", stop="correct", max_interactions=cap)
    )

    assert sorted(simulation.freeze_snapshots) == list(range(trials))
    for trial, result in enumerate(results):
        snapshot = simulation.freeze_snapshots[trial]
        final = simulation.state_rows[trial]
        assert np.array_equal(snapshot, final), (
            f"trial {trial} mutated after freezing "
            f"(stopped={result.stopped}, reason={result.reason})"
        )
        assert result.interactions <= cap
        if not result.stopped:
            assert result.interactions == cap
