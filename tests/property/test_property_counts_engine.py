"""Property-based tests (hypothesis) on the counts engine's window sampler.

The counts engine advances whole scheduler windows at once, so its contract
has two halves that property testing pins down better than example tests:

* **Exactness** -- :meth:`CountsSimulation.pair_distribution` must equal the
  brute-force agent-level ordered-pair law (uniform and biased schedulers),
  and the sampled event counts within a window must match that law
  statistically (chi-squared).
* **Feasibility** -- every accepted window is a batch of interactions on
  distinct agents, so population size, the silent-n-state barrier invariant
  (Lemma 2.3), fratricide leader conservation, and bounded-epidemic level
  monotonicity must all hold across *every* window boundary, not just at
  convergence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.adversary.schedulers import SchedulerSpec
from repro.core.fratricide import FratricideLeaderElection, FratricideState
from repro.core.silent_n_state import (
    SilentNStateSSR,
    SilentNStateState,
    barrier_invariant_holds,
    find_barrier_rank,
)
from repro.engine.compiled import ProtocolCompiler
from repro.engine.configuration import Configuration
from repro.engine.counts_simulation import CountsSimulation
from repro.engine.rng import make_rng
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import AgentState
from repro.processes.bounded_epidemic import UNREACHED, BoundedEpidemicProtocol, LevelState
from repro.processes.epidemic import TwoWayEpidemicProtocol


class CoinFlipState(AgentState):
    def __init__(self, bit: int):
        self.bit = int(bit)

    def signature(self):
        return self.bit


class LazyEpidemicProtocol(PopulationProtocol):
    """Randomized fixture: an infected initiator infects with probability p.

    Mirrors the equivalence matrix's randomized member so the chi-squared
    below covers the branch-probability channel, not just pair selection.
    """

    name = "lazy-epidemic"

    def __init__(self, n: int, p: float = 0.25):
        super().__init__(n)
        self.p = p

    def initial_state(self, agent_id, rng):
        return CoinFlipState(1 if agent_id == 0 else 0)

    def transition(self, initiator, responder, rng):
        if initiator.bit == 1 and responder.bit == 0 and rng.random() < self.p:
            responder.bit = 1

    def is_correct(self, configuration):
        return all(state.bit == 1 for state in configuration)

    def enumerate_states(self):
        return [CoinFlipState(0), CoinFlipState(1)]

    def transition_branches(self, initiator, responder):
        if initiator.bit == 1 and responder.bit == 0:
            return [
                (self.p, CoinFlipState(1), CoinFlipState(1)),
                (1.0 - self.p, CoinFlipState(1), CoinFlipState(0)),
            ]
        return [(1.0, initiator, responder)]


@st.composite
def rank_multisets(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    ranks = draw(st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n))
    return n, ranks


SEEDS = st.integers(min_value=0, max_value=2**16)


def state_vector(simulation):
    """Collapse the (class, state) matrix to a per-state count vector."""
    return simulation.class_state_matrix.sum(axis=0)


# -- feasibility: conservation laws across every window ----------------------------------


class TestWindowFeasibility:
    @given(rank_multisets(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_population_is_conserved_by_every_window(self, data, seed):
        """After every window: counts non-negative and summing to ``n``."""
        n, ranks = data
        protocol = SilentNStateSSR(n)
        simulation = CountsSimulation(
            protocol,
            configuration=Configuration([SilentNStateState(rank) for rank in ranks]),
            rng=make_rng(seed),
            record_windows=True,
        )
        simulation.run(30 * n)
        assert simulation.window_log, "run recorded no windows"
        for window in simulation.window_log:
            vector = window["counts_after"].sum(axis=0)
            assert vector.min() >= 0
            assert vector.sum() == n

    @given(rank_multisets(), SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_barrier_invariant_holds_after_every_window(self, data, seed):
        """Lemma 2.3 across window boundaries, not just at convergence."""
        n, ranks = data
        protocol = SilentNStateSSR(n)
        compiled = ProtocolCompiler().compile(protocol)
        rank_of = np.array([state.rank for state in compiled.states])
        simulation = CountsSimulation(
            protocol,
            configuration=Configuration([SilentNStateState(rank) for rank in ranks]),
            rng=make_rng(seed),
            compiled=compiled,
            record_windows=True,
        )
        initial = np.zeros(n, dtype=np.int64)
        np.add.at(initial, rank_of, state_vector(simulation))
        barrier = find_barrier_rank(initial.tolist())
        simulation.run(30 * n)
        for window in simulation.window_log:
            counts = np.zeros(n, dtype=np.int64)
            np.add.at(counts, rank_of, window["counts_after"].sum(axis=0))
            assert barrier_invariant_holds(counts.tolist(), barrier)

    @given(
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=1, max_value=64),
        SEEDS,
    )
    @settings(max_examples=40, deadline=None)
    def test_fratricide_never_loses_its_last_leader(self, followers, leaders, seed):
        """``L, L -> L, F`` can only halve leaders, never annihilate them.

        The regression behind this property: a tau-leap window that draws two
        ``(L, L)`` events against ``c_L = 2`` would kill both leaders -- the
        matching-feasibility check must reject such windows.
        """
        n = followers + leaders
        protocol = FratricideLeaderElection(n)
        compiled = ProtocolCompiler().compile(protocol)
        leader_index = compiled.encode_state(FratricideState(leader=True))
        configuration = Configuration(
            [FratricideState(leader=agent < leaders) for agent in range(n)]
        )
        simulation = CountsSimulation(
            protocol,
            configuration=configuration,
            rng=make_rng(seed),
            compiled=compiled,
            record_windows=True,
        )
        simulation.run(40 * n)
        previous = leaders
        for window in simulation.window_log:
            current = int(window["counts_after"].sum(axis=0)[leader_index])
            assert 1 <= current <= previous
            previous = current

    @given(st.integers(min_value=4, max_value=16), SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_bounded_epidemic_levels_only_improve(self, n, seed):
        """Per-agent levels only decrease, so for every threshold ``t`` the
        number of agents at level <= ``t`` is non-decreasing across windows."""
        protocol = BoundedEpidemicProtocol(n, k=1)
        compiled = ProtocolCompiler().compile(protocol)
        level_of = np.array([state.level for state in compiled.states])
        order = np.argsort(level_of, kind="stable")
        simulation = CountsSimulation(
            protocol,
            configuration=Configuration(
                [LevelState(0 if agent == 0 else UNREACHED) for agent in range(n)]
            ),
            rng=make_rng(seed),
            compiled=compiled,
            record_windows=True,
        )
        simulation.run(20 * n)
        previous = None
        for window in simulation.window_log:
            cumulative = np.cumsum(window["counts_after"].sum(axis=0)[order])
            if previous is not None:
                assert (cumulative >= previous).all()
            previous = cumulative


# -- exactness: the cell-pair law equals the agent-level law -----------------------------


def brute_force_pair_law(simulation, states_by_agent, weights):
    """O(n^2) agent-level ordered-pair probabilities, folded to cell pairs."""
    classes, states, pair_prob, _ = simulation.pair_distribution()
    index_of = {(int(g), int(s)): k for k, (g, s) in enumerate(zip(classes, states))}
    unique = np.unique(np.asarray(weights, dtype=np.float64))
    expected = np.zeros_like(pair_prob)
    total = float(np.sum(weights))
    for i, (state_i, weight_i) in enumerate(zip(states_by_agent, weights)):
        cell_i = index_of[(int(np.searchsorted(unique, weight_i)), state_i)]
        for j, (state_j, weight_j) in enumerate(zip(states_by_agent, weights)):
            if i == j:
                continue
            cell_j = index_of[(int(np.searchsorted(unique, weight_j)), state_j)]
            expected[cell_i, cell_j] += (weight_i / total) * (
                weight_j / (total - weight_i)
            )
    return pair_prob, expected


class TestPairDistributionExactness:
    @given(
        st.lists(st.booleans(), min_size=2, max_size=10).filter(any),
        SEEDS,
    )
    @settings(max_examples=50, deadline=None)
    def test_uniform_pair_law_matches_brute_force(self, infected_bits, seed):
        n = len(infected_bits)
        protocol = TwoWayEpidemicProtocol(n)
        compiled = ProtocolCompiler().compile(protocol)
        rng = make_rng(seed)
        states_by_agent = [
            compiled.encode_state(protocol.initial_state(0 if bit else n - 1, rng))
            for bit in infected_bits
        ]
        simulation = CountsSimulation(
            protocol, indices=np.array(states_by_agent), rng=rng, compiled=compiled
        )
        pair_prob, expected = brute_force_pair_law(
            simulation, states_by_agent, np.ones(n)
        )
        assert float(pair_prob.sum()) == pytest.approx(1.0, abs=1e-12)
        np.testing.assert_allclose(pair_prob, expected, atol=1e-12)

    @given(
        st.lists(st.booleans(), min_size=3, max_size=8).filter(any),
        st.lists(st.sampled_from([1.0, 2.0, 5.0]), min_size=3, max_size=8),
        SEEDS,
    )
    @settings(max_examples=50, deadline=None)
    def test_biased_pair_law_matches_brute_force(self, infected_bits, raw_weights, seed):
        n = len(infected_bits)
        weights = (raw_weights * n)[:n]
        protocol = TwoWayEpidemicProtocol(n)
        compiled = ProtocolCompiler().compile(protocol)
        rng = make_rng(seed)
        states_by_agent = [
            compiled.encode_state(protocol.initial_state(0 if bit else n - 1, rng))
            for bit in infected_bits
        ]
        simulation = CountsSimulation(
            protocol,
            indices=np.array(states_by_agent),
            rng=rng,
            compiled=compiled,
            scheduler_spec=SchedulerSpec(kind="biased", weights=tuple(weights)),
        )
        pair_prob, expected = brute_force_pair_law(simulation, states_by_agent, weights)
        assert float(pair_prob.sum()) == pytest.approx(1.0, abs=1e-12)
        np.testing.assert_allclose(pair_prob, expected, atol=1e-12)


class TestWindowSamplerStatistics:
    @pytest.mark.parametrize("seed", [11, 193, 4242])
    def test_event_counts_match_the_frozen_law(self, seed):
        """Chi-squared: one window's (pair, branch) event counts follow
        ``K * P[pair]/q * branch_prob`` -- the frozen multinomial the
        window-sampling contract promises."""
        n = 200_000
        protocol = LazyEpidemicProtocol(n, p=0.25)
        compiled = ProtocolCompiler().compile(protocol)
        rng = make_rng(seed)
        infected = compiled.encode_state(CoinFlipState(1))
        susceptible = compiled.encode_state(CoinFlipState(0))
        counts = np.zeros(compiled.num_states, dtype=np.int64)
        counts[infected] = n // 2
        counts[susceptible] = n - n // 2
        simulation = CountsSimulation(
            protocol, counts=counts, rng=rng, compiled=compiled, record_windows=True
        )
        classes, states, pair_prob, active = simulation.pair_distribution()
        active_prob = np.where(active, pair_prob, 0.0)
        q = float(active_prob.sum())
        state_of_cell = {k: int(s) for k, s in enumerate(states)}
        simulation.run(50_000)
        window = next(w for w in simulation.window_log if len(w["events"]))
        hits = int(window["events"][:, 6].sum())

        observed = {}
        for class_i, state_i, class_j, state_j, out_i, out_j, produced in window["events"]:
            observed[(state_i, state_j, out_i, out_j)] = (
                observed.get((state_i, state_j, out_i, out_j), 0) + produced
            )
        expected = {}
        branch_prob = simulation._branch_probability
        for x in range(len(states)):
            for y in range(len(states)):
                if active_prob[x, y] <= 0.0:
                    continue
                row = state_of_cell[x] * compiled.num_states + state_of_cell[y]
                for branch in range(branch_prob.shape[1]):
                    probability = branch_prob[row, branch]
                    if probability <= 0.0:
                        continue
                    out_i = simulation._branch_initiator[row, branch]
                    out_j = simulation._branch_responder[row, branch]
                    key = (state_of_cell[x], state_of_cell[y], int(out_i), int(out_j))
                    expected[key] = expected.get(key, 0.0) + hits * (
                        active_prob[x, y] / q
                    ) * float(probability)

        assert set(observed) <= set(expected)
        keys = sorted(expected)
        observed_array = np.array([observed.get(key, 0) for key in keys], dtype=float)
        expected_array = np.array([expected[key] for key in keys])
        assert (expected_array > 20).all(), "window too small for the chi-squared"
        result = stats.chisquare(observed_array, expected_array)
        assert result.pvalue > 1e-9, (
            f"event counts diverge from the frozen law (p={result.pvalue:.2e})"
        )
