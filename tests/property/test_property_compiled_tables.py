"""Property-based tests (hypothesis) over compiled transition tables.

Every compiled table row is a claim about the protocol's dynamics; these
tests assert that randomly drawn rows conserve the protocol invariants the
paper's proofs rely on -- fratricide never mints leaders, synthetic-coin bit
strings only extend within range, bounded-epidemic levels never increase,
``Optimal-Silent-SSR`` fields stay in their declared ranges, and composed
tables decompose into their factors.  A second family checks that the
protocols' fast ``compiled_predicates`` agree with the configuration-level
predicates on arbitrary encoded configurations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import ComposedProtocol
from repro.core.fratricide import FratricideLeaderElection
from repro.core.optimal_silent import SETTLED, UNSETTLED, OptimalSilentSSR
from repro.core.propagate_reset import RESETTING
from repro.core.silent_n_state import SilentNStateSSR
from repro.derandomize.synthetic_coin import ALG, FLIP, SyntheticCoinProtocol
from repro.engine.compiled import ProtocolCompiler
from repro.processes.bounded_epidemic import UNREACHED, BoundedEpidemicProtocol

#: Compiled once at import; the tables are immutable and shared across examples.
FRATRICIDE = ProtocolCompiler().compile(FratricideLeaderElection(10))
COIN = ProtocolCompiler().compile(SyntheticCoinProtocol(10, bits_needed=2))
BOUNDED = ProtocolCompiler().compile(BoundedEpidemicProtocol(10, k=2))
OPTIMAL = ProtocolCompiler().compile(
    OptimalSilentSSR(5, rmax_multiplier=1.0, dmax_factor=2.0, emax_factor=3.0)
)
COMPOSED = ProtocolCompiler().compile(
    ComposedProtocol(FratricideLeaderElection(8), SilentNStateSSR(8))
)


def row_outcomes(compiled, row):
    """All positive-probability ``(initiator', responder')`` state pairs."""
    states = compiled.states
    if compiled.branch_cumprob is None:
        return [
            (
                states[int(compiled.result_initiator[row])],
                states[int(compiled.result_responder[row])],
            )
        ]
    probabilities = np.diff(compiled.branch_cumprob[row], prepend=0.0)
    return [
        (
            states[int(compiled.result_initiator[row, branch])],
            states[int(compiled.result_responder[row, branch])],
        )
        for branch in range(compiled.max_branches)
        if probabilities[branch] > 0.0
    ]


def row_inputs(compiled, row):
    size = compiled.num_states
    return compiled.states[row // size], compiled.states[row % size]


def rows(compiled):
    return st.integers(min_value=0, max_value=compiled.num_states**2 - 1)


class TestFratricideTableInvariants:
    @given(rows(FRATRICIDE))
    def test_leaders_are_never_created(self, row):
        """The motivating non-self-stabilization fact: 0 leaders stay 0."""
        inputs = row_inputs(FRATRICIDE, row)
        leaders_in = sum(state.leader for state in inputs)
        for outcome in row_outcomes(FRATRICIDE, row):
            leaders_out = sum(state.leader for state in outcome)
            assert leaders_out <= leaders_in
            if leaders_in >= 1:
                assert leaders_out >= 1


class TestSyntheticCoinTableInvariants:
    @given(rows(COIN))
    def test_bits_extend_in_place_and_stay_in_range(self, row):
        inputs = row_inputs(COIN, row)
        for outcome in row_outcomes(COIN, row):
            for before, after in zip(inputs, outcome):
                assert after.bits.startswith(before.bits)
                assert len(after.bits) - len(before.bits) <= 1
                assert len(after.bits) <= before.bits_needed
                assert after.coin_role == (FLIP if before.coin_role == ALG else ALG)


class TestBoundedEpidemicTableInvariants:
    @given(rows(BOUNDED))
    def test_levels_never_increase(self, row):
        inputs = row_inputs(BOUNDED, row)
        for outcome in row_outcomes(BOUNDED, row):
            for before, after in zip(inputs, outcome):
                assert after.level <= before.level
                assert after.level == UNREACHED or 0 <= after.level < BOUNDED.protocol.n


class TestOptimalSilentTableInvariants:
    @given(rows(OPTIMAL))
    def test_fields_stay_in_declared_ranges(self, row):
        protocol = OPTIMAL.protocol
        for outcome in row_outcomes(OPTIMAL, row):
            for state in outcome:
                if state.role == SETTLED:
                    assert 1 <= state.rank <= protocol.n
                    assert 0 <= state.children <= 2
                elif state.role == UNSETTLED:
                    assert 0 <= state.errorcount <= protocol.emax
                else:
                    assert state.role == RESETTING
                    assert 0 <= state.resetcount <= protocol.rmax
                    assert 0 <= state.delaytimer <= protocol.dmax

    @given(rows(OPTIMAL))
    def test_settled_agents_appear_only_through_legal_paths(self, row):
        """Newly Settled agents carry rank 1 or were recruited by their partner.

        Rank 1 arises only from a dormant leader's Reset (Protocol 4); every
        other rank ``r`` is handed out through the binary-tree assignment
        (Lemma 4.1), whose recruiter ends the interaction Settled with rank
        ``r // 2`` (a leader whose timer expired may reset *and* recruit in
        the same interaction, so the recruiter need not have been Settled
        before it).
        """
        inputs = row_inputs(OPTIMAL, row)
        for outcome in row_outcomes(OPTIMAL, row):
            for position, state in enumerate(outcome):
                if state.role != SETTLED or inputs[position].role == SETTLED:
                    continue
                if state.rank == 1:
                    continue
                partner = outcome[1 - position]
                assert partner.role == SETTLED and partner.rank == state.rank // 2


class TestComposedTableInvariants:
    @given(rows(COMPOSED))
    def test_rows_decompose_into_factor_rows(self, row):
        up, down = COMPOSED.factor_tables
        size, down_size = COMPOSED.num_states, down.num_states
        i, j = row // size, row % size
        up_row = (i // down_size) * up.num_states + (j // down_size)
        down_row = (i % down_size) * down.num_states + (j % down_size)
        expected_initiator = (
            int(up.result_initiator[up_row]) * down_size
            + int(down.result_initiator[down_row])
        )
        expected_responder = (
            int(up.result_responder[up_row]) * down_size
            + int(down.result_responder[down_row])
        )
        assert int(COMPOSED.result_initiator[row]) == expected_initiator
        assert int(COMPOSED.result_responder[row]) == expected_responder


class TestCompiledPredicateAgreement:
    """Fast counts predicates must match the configuration-level predicates."""

    @staticmethod
    def assert_counts_predicate_matches(compiled, kind="correct"):
        predicate = compiled.protocol.compiled_predicates()[kind]
        slow = {
            "correct": compiled.protocol.is_correct,
            "stabilized": compiled.protocol.has_stabilized,
            "silent": compiled.protocol.is_silent,
        }[kind]

        def check(indices):
            counts = compiled.state_counts(indices)
            decoded = compiled.decode_configuration(indices)
            assert bool(predicate(counts, compiled)) == bool(slow(decoded))

        return check

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_fratricide(self, data):
        check = self.assert_counts_predicate_matches(FRATRICIDE)
        n, size = FRATRICIDE.protocol.n, FRATRICIDE.num_states
        indices = data.draw(
            st.lists(st.integers(0, size - 1), min_size=n, max_size=n)
        )
        check(np.array(indices, dtype=np.int32))

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_synthetic_coin(self, data):
        check = self.assert_counts_predicate_matches(COIN)
        n, size = COIN.protocol.n, COIN.num_states
        indices = data.draw(
            st.lists(st.integers(0, size - 1), min_size=n, max_size=n)
        )
        check(np.array(indices, dtype=np.int32))

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_optimal_silent(self, data):
        check = self.assert_counts_predicate_matches(OPTIMAL)
        n, size = OPTIMAL.protocol.n, OPTIMAL.num_states
        # Mix arbitrary draws with all-Settled draws so the "everyone Settled,
        # ranks collide / ranks valid" regimes are actually exercised.
        settled = [
            k for k, state in enumerate(OPTIMAL.states) if state.role == SETTLED
        ]
        pool = data.draw(st.sampled_from([list(range(size)), settled]))
        indices = data.draw(
            st.lists(st.sampled_from(pool), min_size=n, max_size=n)
        )
        check(np.array(indices, dtype=np.int32))
