"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scaling import fit_power_law
from repro.analysis.statistics import summarize
from repro.core.problems import is_valid_ranking, ranking_defects
from repro.core.silent_n_state import (
    SilentNStateSSR,
    SilentNStateState,
    barrier_invariant_holds,
    find_barrier_rank,
    rank_counts,
)
from repro.engine.configuration import Configuration
from repro.engine.rng import make_rng
from repro.engine.scheduler import UniformPairScheduler


# -- barrier rank (Lemmas 2.2 / 2.3) -------------------------------------------------------


@st.composite
def rank_multisets(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    ranks = draw(st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n))
    return n, ranks


class TestBarrierRankProperties:
    @given(rank_multisets())
    @settings(max_examples=80, deadline=None)
    def test_a_barrier_rank_always_exists(self, data):
        """Lemma 2.2: every configuration admits a barrier rank."""
        n, ranks = data
        counts = [0] * n
        for rank in ranks:
            counts[rank] += 1
        k = find_barrier_rank(counts)
        assert barrier_invariant_holds(counts, k)

    @given(rank_multisets(), st.integers(min_value=0, max_value=400), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_barrier_is_preserved_by_any_execution(self, data, steps, seed):
        """Lemma 2.3: inequality (1) is an invariant of the dynamics."""
        n, ranks = data
        protocol = SilentNStateSSR(n)
        configuration = Configuration([SilentNStateState(rank) for rank in ranks])
        k = find_barrier_rank(rank_counts(configuration, n))
        rng = make_rng(seed)
        scheduler = UniformPairScheduler(n, rng=rng)
        for _ in range(min(steps, 400)):
            i, j = scheduler.next_pair()
            protocol.transition(configuration[i], configuration[j], rng)
        assert barrier_invariant_holds(rank_counts(configuration, n), k)

    @given(rank_multisets())
    @settings(max_examples=60, deadline=None)
    def test_total_agent_count_is_conserved(self, data):
        n, ranks = data
        protocol = SilentNStateSSR(n)
        configuration = Configuration([SilentNStateState(rank) for rank in ranks])
        rng = make_rng(0)
        scheduler = UniformPairScheduler(n, rng=rng)
        for _ in range(100):
            i, j = scheduler.next_pair()
            protocol.transition(configuration[i], configuration[j], rng)
        assert sum(rank_counts(configuration, n)) == n


# -- ranking predicates ---------------------------------------------------------------------


class TestRankingPredicateProperties:
    @given(st.permutations(list(range(1, 9))))
    def test_any_permutation_is_a_valid_ranking(self, ranks):
        assert is_valid_ranking(ranks, 8)

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=8, max_size=8))
    @settings(max_examples=100)
    def test_validity_matches_defect_report(self, ranks):
        n = 8
        defects = ranking_defects(ranks, n)
        is_clean = not (defects["missing"] or defects["duplicated"] or defects["out_of_range"])
        assert is_clean == is_valid_ranking(ranks, n)

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=8, max_size=8))
    @settings(max_examples=100)
    def test_pigeonhole_missing_implies_duplicate(self, ranks):
        """The reduction the paper uses: an absent rank implies a collision."""
        defects = ranking_defects(ranks, 8)
        if defects["missing"] and not defects["out_of_range"]:
            assert defects["duplicated"]


# -- statistics and fitting -------------------------------------------------------------------


class TestAnalysisProperties:
    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
    def test_summary_bounds(self, values):
        summary = summarize(values)
        tolerance = 1e-9 * max(abs(v) for v in values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - tolerance <= summary.mean <= summary.maximum + tolerance

    @given(
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.5, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_power_law_fit_recovers_exponent(self, exponent, coefficient):
        ns = [8, 16, 32, 64, 128]
        values = [coefficient * n**exponent for n in ns]
        fitted, fitted_coefficient, r2 = fit_power_law(ns, values)
        assert math.isclose(fitted, exponent, rel_tol=1e-6, abs_tol=1e-6)
        assert r2 > 0.999
