"""Setuptools shim.

The project is configured in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
PEP 660 editable-wheel path (no ``wheel`` package available).
"""

from setuptools import setup

setup()
