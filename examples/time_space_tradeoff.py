#!/usr/bin/env python3
"""Reproduce the Table 1 time/space trade-off on your laptop.

Runs the three self-stabilizing ranking protocols -- the Cai-Izumi-Wada
baseline, Optimal-Silent-SSR, and Sublinear-Time-SSR (both a constant depth
and the log-depth variant) -- from adversarial starting configurations over a
sweep of population sizes, and prints the measured stabilization times next
to the asymptotic claims of Table 1.

Run with::

    python examples/time_space_tradeoff.py
"""

from __future__ import annotations

from repro.analysis.scaling import fit_power_law
from repro.experiments.report import format_table
from repro.experiments.table1 import run_table1
from repro.experiments.silent_n_state_experiments import run_silent_n_state_scaling
from repro.experiments.optimal_silent_experiments import run_optimal_silent_scaling


def main() -> None:
    print("Measured Table 1 (small populations, 3 trials per cell)\n")
    rows = run_table1(ns=(12, 16, 24), trials=3, seed=2021)
    print(
        format_table(
            rows,
            columns=[
                "protocol",
                "n",
                "mean time",
                "p90 time",
                "states",
                "paper expected time",
                "paper states",
            ],
        )
    )

    print("\nGrowth exponents (fitted from larger sweeps):")
    baseline = run_silent_n_state_scaling(ns=(16, 32, 64, 96), trials=8, seed=1)
    optimal = run_optimal_silent_scaling(ns=(16, 32, 64, 96), trials=6, seed=1)
    baseline_exponent = baseline[-1]["fitted exponent"]
    optimal_exponent = optimal[-1]["fitted exponent"]
    print(f"  Silent-n-state-SSR : time ~ n^{baseline_exponent:.2f}   (paper: Theta(n^2))")
    print(f"  Optimal-Silent-SSR : time ~ n^{optimal_exponent:.2f}   (paper: Theta(n))")
    print(
        "\nThe qualitative ordering of Table 1 -- quadratic vs linear vs sublinear -- "
        "is visible already at these population sizes."
    )


if __name__ == "__main__":
    main()
