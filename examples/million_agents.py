#!/usr/bin/env python3
"""Million-agent runs on the compiled batch engine, with wall-clock reporting.

The per-interaction loop engine tops out around ``n ~ 10^4`` agents; this demo
exercises the table-driven batch engine (see ``docs/ARCHITECTURE.md``) at
``n = 10^6`` on two workloads:

1. **Two-way epidemic** (Lemma 2.7): one infected agent out of a million;
   run until the whole population is infected (~``n ln n`` interactions).
2. **Reset wave** (Protocol 2 standalone): every agent simultaneously
   triggered; run until the wave has propagated, the population has gone
   dormant, and the awakening epidemic has returned everyone to the
   Computing role.

Both runs seed the engine directly with an integer state-index array
(``BatchSimulation(indices=...)``), which avoids materializing a million
Python state objects, and both use counts-based stop predicates, so each
convergence check costs microseconds rather than a decode of the whole
population.

Run with::

    PYTHONPATH=src python examples/million_agents.py [population_size]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import BatchSimulation, ProtocolCompiler, ResetWaveProtocol
from repro.processes.epidemic import EpidemicState, TwoWayEpidemicProtocol


def report(label: str, seconds: float, result) -> None:
    rate = result.interactions / seconds / 1e6
    print(f"  {label:<22s} {seconds:7.2f} s   "
          f"{result.interactions:>12,} interactions   "
          f"{rate:6.1f} M interactions/s   parallel time {result.parallel_time:.1f}")


def epidemic_demo(n: int) -> None:
    print(f"== two-way epidemic, n = {n:,} ==")
    protocol = TwoWayEpidemicProtocol(n)
    started = time.perf_counter()
    compiled = ProtocolCompiler().compile(protocol)
    print(f"  compiled {compiled.num_states} states in "
          f"{time.perf_counter() - started:.2f} s")

    indices = np.full(n, compiled.encode_state(EpidemicState(False)), dtype=np.int32)
    indices[0] = compiled.encode_state(EpidemicState(True))
    simulation = BatchSimulation(protocol, indices=indices, rng=2021, compiled=compiled)

    started = time.perf_counter()
    result = simulation.run_until_correct()
    report("until fully infected:", time.perf_counter() - started, result)
    predicted = np.log(n)
    print(f"  parallel time vs ln n: {result.parallel_time / predicted:.2f} "
          f"(Lemma 2.7: E[T_n] = (n-1) H_(n-1) ~ n ln n interactions)\n")


def reset_wave_demo(n: int) -> None:
    protocol = ResetWaveProtocol(n)
    print(f"== reset wave, n = {n:,} (R_max = D_max = {protocol.rmax}) ==")
    started = time.perf_counter()
    compiled = ProtocolCompiler().compile(protocol)
    print(f"  compiled {compiled.num_states} states in "
          f"{time.perf_counter() - started:.2f} s")

    triggered = compiled.encode_state(protocol.triggered_state())
    indices = np.full(n, triggered, dtype=np.int32)
    simulation = BatchSimulation(protocol, indices=indices, rng=2021, compiled=compiled)

    started = time.perf_counter()
    result = simulation.run_until_stabilized()
    report("until fully computing:", time.perf_counter() - started, result)
    print()


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000_000
    epidemic_demo(n)
    reset_wave_demo(n)


if __name__ == "__main__":
    main()
