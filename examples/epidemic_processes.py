#!/usr/bin/env python3
"""Validate the probabilistic toolbox of Section 2.1 against its predictions.

Simulates the two-way epidemic, the roll-call process, and the bounded
epidemic (level propagation), and prints measured completion times next to
the closed-form expectations the paper derives (Lemmas 2.7-2.11).  These
processes are the building blocks of both new protocols, so seeing their
constants line up is the first step of the reproduction.

Run with::

    python examples/epidemic_processes.py
"""

from __future__ import annotations

import math

from repro.analysis.theory import (
    expected_bounded_epidemic_time,
    expected_epidemic_interactions,
    expected_roll_call_interactions,
)
from repro.engine.rng import make_rng
from repro.processes import (
    simulate_bounded_epidemic_levels,
    simulate_epidemic_interactions,
    simulate_roll_call_interactions,
)


def main() -> None:
    rng = make_rng(2021)
    n = 256
    trials = 100

    epidemic = sum(simulate_epidemic_interactions(n, rng) for _ in range(trials)) / trials
    print(f"Two-way epidemic, n = {n}")
    print(f"  measured mean interactions : {epidemic:10.1f}")
    print(f"  predicted (n-1) H_(n-1)    : {expected_epidemic_interactions(n):10.1f}  (Lemma 2.7)")

    roll_call = sum(simulate_roll_call_interactions(n, rng) for _ in range(30)) / 30
    print(f"\nRoll-call process, n = {n}")
    print(f"  measured mean interactions : {roll_call:10.1f}")
    print(f"  predicted 1.5 n ln n       : {expected_roll_call_interactions(n):10.1f}  (Lemma 2.9)")
    print(f"  ratio to plain epidemic    : {roll_call / epidemic:10.2f}  (paper: ~1.5)")

    print(f"\nBounded epidemic hitting times tau_k, n = {n}  (Lemmas 2.10 / 2.11)")
    print("  k        measured (parallel)   paper bound")
    for k in (1, 2, 3, int(3 * math.ceil(math.log2(n)))):
        measured = (
            sum(simulate_bounded_epidemic_levels(n, k, rng) for _ in range(25)) / 25 / n
        )
        print(f"  {k:<8d} {measured:>18.2f}   {expected_bounded_epidemic_time(n, k):>11.2f}")
    print(
        "\nLarger k (longer information chains) means dramatically faster hitting times --"
        "\nthe same effect that lets Detect-Name-Collision trade memory (depth H) for speed."
    )


if __name__ == "__main__":
    main()
