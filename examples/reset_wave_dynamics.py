#!/usr/bin/env python3
"""Visualize the dynamics behind Optimal-Silent-SSR as ASCII time series.

Records, over one execution started from an adversarial configuration:

* the number of agents per role (Settled / Unsettled / Resetting), showing the
  error detection, the reset wave, the dormant phase, and the binary-tree
  ranking that follows (Sections 3 and 4 of the paper);
* the number of dormant leaders, showing the slow fratricide election
  ``L, L -> L, F`` running during the dormant phase (Lemma 4.2);
* the number of distinct ranks held, climbing to n as the tree fills
  (Lemma 4.1 / Figure 1).

Run with::

    python examples/reset_wave_dynamics.py [population_size]
"""

from __future__ import annotations

import sys

from repro import OptimalSilentSSR, Simulation, make_rng
from repro.analysis.traces import MetricsRecorder, render_series, sparkline
from repro.core.optimal_silent import LEADER, SETTLED, UNSETTLED
from repro.core.propagate_reset import RESETTING


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    rng = make_rng(11)
    protocol = OptimalSilentSSR(n, rmax_multiplier=4.0, dmax_factor=6.0, emax_factor=16.0)
    configuration = protocol.random_configuration(rng)

    recorder = MetricsRecorder(
        metrics={
            "settled agents": lambda c: c.count_where(lambda s: s.role == SETTLED),
            "unsettled agents": lambda c: c.count_where(lambda s: s.role == UNSETTLED),
            "resetting agents": lambda c: c.count_where(lambda s: s.role == RESETTING),
            "dormant leaders (L)": lambda c: c.count_where(
                lambda s: s.role == RESETTING and s.leader == LEADER and s.resetcount == 0
            ),
            "distinct ranks": lambda c: len(
                {s.rank for s in c if s.role == SETTLED and s.rank is not None}
            ),
        },
        every=max(1, n // 2),
        population_size=n,
    )
    recorder.record_now(configuration)

    simulation = Simulation(protocol, configuration=configuration, rng=rng, hooks=[recorder])
    result = simulation.run_until_stabilized()

    print(f"Optimal-Silent-SSR, n = {n}, adversarial start")
    print(f"stabilized after {result.parallel_time:.1f} parallel time\n")

    print(render_series(recorder["resetting agents"], width=70, height=7))
    print()
    print(render_series(recorder["distinct ranks"], width=70, height=7))
    print()
    print("one-line views (low .:-=+*#%@ high):")
    for name in ("settled agents", "unsettled agents", "dormant leaders (L)"):
        print(f"  {name:<22s} {sparkline(recorder[name].values, width=70)}")
    print(
        "\nReading the plots: the reset wave first converts everyone to Resetting,"
        "\nthe dormant leaders thin out under L,L -> L,F, and once the population"
        "\nawakens the distinct-rank count climbs to n as the binary tree fills."
    )


if __name__ == "__main__":
    main()
