#!/usr/bin/env python3
"""Watch Detect-Name-Collision catch an impostor without a direct meeting.

Recreates the scenario behind Sublinear-Time-SSR (Section 5): two agents end
up with the same random name, and the population must notice *faster* than
waiting for the two of them to bump into each other.  The example plants a
name collision, runs the protocol for several depth parameters ``H``, and
reports (a) how long until the collision is detected and (b) how long until
the whole population has re-stabilized with fresh unique names and ranks.

Run with::

    python examples/name_collision_detection.py
"""

from __future__ import annotations

import math

from repro import SublinearTimeSSR, Simulation, make_rng
from repro.core.propagate_reset import RESETTING


def measure(n: int, depth, trials: int = 5):
    detection_times, stabilization_times = [], []
    for trial in range(trials):
        rng = make_rng((depth if depth is not None else 99, trial))
        protocol = SublinearTimeSSR(n, depth=depth, rmax_multiplier=3.0)
        configuration = protocol.planted_collision_configuration(rng)
        simulation = Simulation(protocol, configuration=configuration, rng=rng)
        detection = simulation.run_until(
            lambda config: any(state.role == RESETTING for state in config),
            max_interactions=200 * n * n,
            check_interval=max(1, n // 2),
        )
        detection_times.append(detection.parallel_time)
        stabilization = simulation.run_until_stabilized(
            max_interactions=200 * n * n, check_interval=n
        )
        stabilization_times.append(stabilization.parallel_time)
    return (
        sum(detection_times) / trials,
        sum(stabilization_times) / trials,
        protocol.depth,
    )


def main() -> None:
    n = 24
    print(f"Planted name collision among {n} agents (two agents share one name)\n")
    print("  H (depth)   detect collision   fully re-stabilized   paper detection shape")
    for depth in (0, 1, 2, None):
        detect, stabilize, effective = measure(n, depth)
        if effective == 0:
            shape = f"Theta(n) = {n}"
        elif effective >= math.log2(n):
            shape = f"Theta(log n) = {math.log(n):.1f}"
        else:
            shape = (
                f"Theta(H n^(1/(H+1))) = "
                f"{(effective + 1) * n ** (1 / (effective + 1)):.1f}"
            )
        label = f"{effective}{' (log n)' if depth is None else ''}"
        print(f"  {label:<11s} {detect:>16.1f} {stabilize:>21.1f}   {shape}")
    print(
        "\nDetection accelerates as H grows, exactly the time/space trade-off of"
        "\nTable 1: deeper history trees mean exponentially more state but"
        "\ncollision detection through longer chains of intermediaries."
    )


if __name__ == "__main__":
    main()
