#!/usr/bin/env python3
"""Mission-critical sensor network recovering from bursts of transient faults.

The paper motivates self-stabilizing leader election with mobile sensor
networks in harsh environments: memory corruption cannot be detected or
re-initialized, so the protocol itself must recover.  This example simulates
a fleet of sensors running Optimal-Silent-SSR, repeatedly corrupts a fraction
of the fleet mid-operation (a transient-fault burst), and reports how long
each recovery takes -- contrasting it with the classic one-bit leader
election, which never recovers once the leader's memory is corrupted.

Run with::

    python examples/sensor_network_recovery.py
"""

from __future__ import annotations

from repro import FratricideLeaderElection, OptimalSilentSSR, Simulation, make_rng
from repro.adversary.faults import inject_transient_faults
from repro.core.problems import leaders_from_ranks


def run_self_stabilizing_fleet(n: int = 32, bursts: int = 3, faults_per_burst: int = 10) -> None:
    rng = make_rng(7)
    protocol = OptimalSilentSSR(n, rmax_multiplier=4.0, dmax_factor=6.0, emax_factor=16.0)
    simulation = Simulation(protocol, rng=rng)

    print(f"Fleet of {n} sensors running Optimal-Silent-SSR")
    result = simulation.run_until_stabilized()
    print(f"  initial deployment stabilized after {result.parallel_time:.1f} time units")
    print(f"  current leader: sensor #{leaders_from_ranks(simulation.configuration)[0]}")

    for burst in range(1, bursts + 1):
        victims = inject_transient_faults(
            protocol, simulation.configuration, count=faults_per_burst, rng=rng
        )
        print(f"\n  burst {burst}: corrupted sensors {sorted(victims)}")
        print(f"    configuration still correct? {protocol.is_correct(simulation.configuration)}")
        before = simulation.parallel_time
        result = simulation.run_until_stabilized()
        print(f"    recovered in {result.parallel_time - before:.1f} time units")
        print(f"    new leader: sensor #{leaders_from_ranks(simulation.configuration)[0]}")


def run_non_stabilizing_fleet(n: int = 32) -> None:
    rng = make_rng(8)
    protocol = FratricideLeaderElection(n)
    simulation = Simulation(protocol, rng=rng)
    simulation.run_until_correct()
    print(f"\nFleet of {n} sensors running the one-bit protocol (L, L -> L, F)")
    print("  elected a unique leader from the clean start")

    # A single unlucky fault -- wiping the leader bit -- is unrecoverable.
    leader = simulation.configuration.agents_where(lambda state: state.leader)[0]
    simulation.configuration[leader].leader = False
    simulation.run(200 * n)
    leaders = protocol.leader_count(simulation.configuration)
    print(f"  after corrupting the leader's memory and waiting a long time: {leaders} leaders")
    print("  the initialized protocol cannot recover -- this is why SSLE needs n states")


def main() -> None:
    run_self_stabilizing_fleet()
    run_non_stabilizing_fleet()


if __name__ == "__main__":
    main()
