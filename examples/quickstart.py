#!/usr/bin/env python3
"""Quickstart: elect a leader (and rank the population) self-stabilizingly.

Builds the paper's ``Optimal-Silent-SSR`` protocol (Protocols 3 + 4: ranking
via binary-tree rank intervals, error detection, and the ``Propagate-Reset``
recovery wave) for a small population, starts it from a completely arbitrary
(adversarial) configuration -- the defining challenge of *self-stabilization*
is that the initial states may be anything at all -- and runs the standard
population-protocol scheduler until the protocol stabilizes.  At that point
every agent holds a distinct rank in ``1..n`` and the agent ranked 1 is the
unique leader.

This demo uses the per-interaction loop engine (:class:`repro.Simulation`),
which is the right tool at this scale and for protocols, like this one, whose
state space is too large to compile.  For million-agent runs of compilable
protocols, see ``examples/million_agents.py`` and ``docs/ARCHITECTURE.md``.

Run with::

    PYTHONPATH=src python examples/quickstart.py [population_size]

Expected output: the adversarial start is not correct, the run stabilizes in
Theta(n) parallel time (tens of units for small ``n``), and the final ranks
are exactly ``1..n``.
"""

from __future__ import annotations

import sys

from repro import OptimalSilentSSR, Simulation, make_rng
from repro.core.problems import leaders_from_ranks


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    rng = make_rng(2021)

    # Smaller reset constants than the paper's R_max = 60 ln n keep small
    # populations representative of the asymptotic behaviour.
    protocol = OptimalSilentSSR(n, rmax_multiplier=4.0, dmax_factor=6.0, emax_factor=16.0)

    # Self-stabilization means we may start *anywhere*: sample an adversarial
    # configuration with arbitrary roles, ranks, counters and leader marks.
    configuration = protocol.random_configuration(rng)
    print(f"Population size:       {n}")
    print(f"Initial roles:         {protocol.role_counts(configuration)}")
    print(f"Initially correct?     {protocol.is_correct(configuration)}")

    simulation = Simulation(protocol, configuration=configuration, rng=rng)
    result = simulation.run_until_stabilized()

    ranks = sorted(state.rank for state in simulation.configuration)
    leaders = leaders_from_ranks(simulation.configuration)
    print(f"\nStabilized:            {result.stopped}")
    print(f"Parallel time:         {result.parallel_time:.1f}  (interactions: {result.interactions})")
    print(f"Ranks assigned:        {ranks == list(range(1, n + 1))}")
    print(f"Leader agent (rank 1): agent #{leaders[0]}")
    print(f"States used:           {protocol.theoretical_state_count()}  (O(n), Table 1)")


if __name__ == "__main__":
    main()
