"""Command-line interface.

Examples
--------
List the available experiments::

    python -m repro list

Run one experiment at the quick scale and print its table::

    python -m repro run epidemic --scale quick

Run every experiment with a pinned seed, persisting one artifact per
experiment (used to regenerate ``EXPERIMENTS.md`` material)::

    python -m repro run all --scale quick --seed 1 --output artifacts/

Re-render the saved tables later -- no simulation re-runs::

    python -m repro report artifacts/
    python -m repro report artifacts/epidemic.json --markdown

Simulate one protocol from an adversarial configuration and watch it
stabilize::

    python -m repro simulate optimal-silent --n 32 --seed 7

Run a compilable protocol on the table-driven batch engine (large
populations; see docs/ARCHITECTURE.md)::

    python -m repro simulate reset-wave --n 100000 --engine compiled

Fan a multi-trial sweep over 4 worker processes (same results as --jobs 1,
just faster)::

    python -m repro run optimal_silent --scale full --jobs 4

Run the stress campaigns (timed fault bursts + adversarial schedulers) on
either engine, persisting artifacts like any other experiment::

    python -m repro stress --scale quick --seed 1
    python -m repro stress recovery_burst --engine compiled --output artifacts/

Run only the persistent-Byzantine families (tolerance curves and
approximate consensus vs the theory phase count)::

    python -m repro stress --byzantine --scale quick --seed 1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine.run_config import ENGINES, RunConfig
from repro.experiments.registry import (
    BYZANTINE_EXPERIMENTS,
    STRESS_EXPERIMENTS,
    get_experiment,
    list_experiments,
)
from repro.experiments.report import format_table, rows_to_markdown
from repro.experiments.result import ExperimentResult, load_artifacts

#: Protocols available to the ``simulate`` subcommand.
SIMULATABLE_PROTOCOLS = (
    "silent-n-state",
    "optimal-silent",
    "sublinear",
    "fratricide",
    "reset-wave",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Time-Optimal Self-Stabilizing Leader Election in "
            "Population Protocols' (PODC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run an experiment and print its table")
    run_parser.add_argument(
        "experiment",
        help="experiment identifier (see 'repro list'), or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="parameterization to use (default: quick)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "root seed for the run (default: 0); the same seed reproduces "
            "the same tables for every experiment"
        ),
    )
    run_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables instead of text"
    )
    run_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="loop",
        help=(
            "execution engine for harness-backed experiments: 'loop' steps one "
            "interaction at a time; 'compiled' lowers the protocol to "
            "transition tables (requires an enumerable state space); 'counts' "
            "runs agent-free on a state-count vector (n-independent window "
            "cost; epoch-partition scheduling unsupported)"
        ),
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for multi-trial sweeps (default: 1); results are "
            "bit-identical for any value -- per-trial random streams are derived "
            "from SeedSequence children independently of the process layout"
        ),
    )
    run_parser.add_argument(
        "--trial-batch",
        type=int,
        default=1,
        dest="trial_batch",
        help=(
            "trials advanced together by one trial-batched engine instance "
            "(default: 1 = per-trial); requires --engine compiled or counts, "
            "composes with --jobs (each worker runs whole batches), and "
            "compiled-engine results stay bit-identical for any value"
        ),
    )
    run_parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help=(
            "persist one artifact per experiment to DIR "
            "(<identifier>.json; render later with 'repro report DIR')"
        ),
    )
    run_parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help=(
            "persist finished trials and in-flight engine checkpoints to DIR "
            "while running (single experiment only); a killed run restarted "
            "with --resume DIR completes with byte-identical artifacts "
            "(wall_time is zeroed so repeat runs compare equal)"
        ),
    )
    run_parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help=(
            "resume a --checkpoint run from DIR: finished trials replay from "
            "disk, the interrupted one restarts from its engine checkpoint; "
            "refuses DIRs recorded for a different experiment/seed/engine "
            "(payload digest mismatch)"
        ),
    )
    run_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "write a structured JSONL trace of the run to FILE (spans for "
            "experiments, harness calls, and trials plus a final metrics "
            "snapshot); summarize later with 'repro trace FILE'.  Tracing "
            "never touches engine RNG -- artifacts are byte-identical with "
            "and without it"
        ),
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "collect per-stage wall time (scheduler draw / table apply / "
            "stop check) at the engines' check-interval cadence and print a "
            "stage breakdown after the run; implies telemetry collection "
            "but, like --trace, leaves results bit-identical"
        ),
    )

    stress_parser = subparsers.add_parser(
        "stress",
        help="run fault-campaign stress experiments (adversary subsystem)",
        description=(
            "Run the registered stress experiments: timed fault bursts "
            "(corrupt/reset/reseed) executed mid-run by either engine, with "
            "recovery measured from the last burst; see "
            "docs/ARCHITECTURE.md (adversary subsystem)."
        ),
    )
    stress_parser.add_argument(
        "experiment",
        nargs="?",
        choices=STRESS_EXPERIMENTS + ("all",),
        default="all",
        help="which stress experiment to run (default: all)",
    )
    stress_parser.add_argument(
        "--byzantine",
        action="store_true",
        help=(
            "run only the persistent-Byzantine experiments "
            f"({', '.join(BYZANTINE_EXPERIMENTS)}): tolerance curves per "
            "protocol and approximate consensus vs the theory phase count"
        ),
    )
    stress_parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="parameterization to use (default: quick)",
    )
    stress_parser.add_argument(
        "--n", type=int, default=None, help="override the population size"
    )
    stress_parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    stress_parser.add_argument(
        "--seed", type=int, default=None, help="root seed for the run (default: 0)"
    )
    stress_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables instead of text"
    )
    stress_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="loop",
        help="execution engine; fault campaigns run on both (default: loop)",
    )
    stress_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trial sweeps (default: 1)",
    )
    stress_parser.add_argument(
        "--trial-batch",
        type=int,
        default=1,
        dest="trial_batch",
        help=(
            "trials per batched engine instance (default: 1); campaigns with "
            "fault events fall back to per-trial execution"
        ),
    )
    stress_parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help=(
            "persist one artifact per experiment to DIR "
            "(<identifier>.json; render later with 'repro report DIR')"
        ),
    )

    report_parser = subparsers.add_parser(
        "report", help="re-render tables from saved artifacts without re-running"
    )
    report_parser.add_argument(
        "artifacts",
        nargs="+",
        help="artifact files (.json/.jsonl) or directories containing them",
    )
    report_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables instead of text"
    )

    simulate_parser = subparsers.add_parser(
        "simulate", help="run one protocol from an adversarial configuration"
    )
    simulate_parser.add_argument(
        "protocol",
        choices=SIMULATABLE_PROTOCOLS,
        help="which protocol to simulate",
    )
    simulate_parser.add_argument("--n", type=int, default=32, help="population size")
    simulate_parser.add_argument("--seed", type=int, default=0, help="random seed")
    simulate_parser.add_argument(
        "--depth",
        type=int,
        default=1,
        help="history-tree depth H for the sublinear protocol (0 = direct detection)",
    )
    simulate_parser.add_argument(
        "--clean",
        action="store_true",
        help="start from the protocol's clean initial configuration instead of an adversarial one",
    )
    simulate_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="loop",
        help=(
            "execution engine: 'loop' steps one interaction at a time; "
            "'compiled' lowers the protocol to transition tables and applies "
            "whole scheduler batches (requires an enumerable state space); "
            "'counts' advances a state-count vector in O(S^2) per window "
            "(fixed-state-space protocols scale to n=1e8+)"
        ),
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the simulation service (job queue + workers + HTTP API)",
        description=(
            "Serve simulations over HTTP: POST /jobs enqueues a run, workers "
            "execute it with resumable checkpoints, and the artifact lands in "
            "a content-addressed cache -- identical resubmissions never "
            "simulate again.  See docs/ARCHITECTURE.md (serve subsystem)."
        ),
    )
    serve_parser.add_argument(
        "--queue",
        metavar="DIR",
        default=".repro-queue",
        help="queue root directory; jobs, checkpoints and the artifact cache "
        "live here and survive restarts (default: .repro-queue)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="bind port; 0 picks a free one "
        "(default: 8765)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1, help="worker threads (default: 1)"
    )
    serve_parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        dest="max_retries",
        help="attempts before a job is marked failed for good (default: 3); "
        "a worker death mid-run costs one retry",
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit an experiment run to a repro server"
    )
    submit_parser.add_argument(
        "experiment", help="experiment identifier (see 'repro list')"
    )
    submit_parser.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="server base URL (default: http://127.0.0.1:8765)",
    )
    submit_parser.add_argument(
        "--scale", choices=("quick", "full"), default="quick",
        help="parameterization to use (default: quick)",
    )
    submit_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed (default: 0); required to be an integer so the "
        "content-addressed cache key is well-defined",
    )
    submit_parser.add_argument(
        "--engine", choices=ENGINES, default="loop",
        help="execution engine for the run (default: loop)",
    )
    submit_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes inside the run (default: 1)",
    )
    submit_parser.add_argument(
        "--trial-batch", type=int, default=1, dest="trial_batch",
        help="trials per batched engine instance (default: 1)",
    )
    submit_parser.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="experiment parameter override (repeatable); VALUE is parsed as "
        "JSON when possible, else kept as a string -- e.g. "
        "--param 'ns=[256,1024]' --param trials=5",
    )

    jobs_parser = subparsers.add_parser(
        "jobs", help="list a repro server's jobs, or show one job's status"
    )
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None,
        help="job id to inspect (default: list all jobs)",
    )
    jobs_parser.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="server base URL (default: http://127.0.0.1:8765)",
    )

    fetch_parser = subparsers.add_parser(
        "fetch", help="download a finished job's artifact from a repro server"
    )
    fetch_parser.add_argument("job_id", help="job id whose artifact to fetch")
    fetch_parser.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="server base URL (default: http://127.0.0.1:8765)",
    )
    fetch_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the artifact bytes to PATH (byte-identical to the "
        "server's cache entry) instead of rendering the table",
    )
    fetch_parser.add_argument(
        "--markdown", action="store_true", help="emit a Markdown table"
    )

    bench_parser = subparsers.add_parser(
        "bench", help="benchmark baseline utilities"
    )
    bench_subparsers = bench_parser.add_subparsers(dest="bench_command", required=True)
    bench_report_parser = bench_subparsers.add_parser(
        "report",
        help="render the cross-PR speed trend from committed BENCH_*.json",
        description=(
            "Each BENCH_<area>.json baseline appends a {head, rows} history "
            "entry on every re-record; this renders those entries as one "
            "trend table per area, oldest first."
        ),
    )
    bench_report_parser.add_argument(
        "--area",
        action="append",
        default=None,
        metavar="AREA",
        help="restrict to one area (repeatable; default: every committed "
        "baseline)",
    )
    bench_report_parser.add_argument(
        "--root",
        default=None,
        help="directory holding the BENCH_*.json files (default: repo root)",
    )
    bench_report_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables"
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="summarize a JSONL trace written by 'repro run --trace' or serve",
        description=(
            "Reads a repro.trace/v1 JSONL file and reports per-phase wall "
            "time, trial throughput (interactions per second), and the "
            "window-size histogram captured in the trace's metrics snapshot."
        ),
    )
    trace_parser.add_argument("file", help="trace file (JSONL) to summarize")
    trace_parser.add_argument(
        "--area",
        default=None,
        metavar="AREA",
        help=(
            "restrict the summary to one area: "
            "run, phases, trials, or windows (default: all)"
        ),
    )
    return parser


def _build_simulation(args):
    """Create (protocol, configuration) for the ``simulate`` subcommand."""
    from repro.core.fratricide import FratricideLeaderElection
    from repro.core.optimal_silent import OptimalSilentSSR
    from repro.core.propagate_reset import ResetWaveProtocol
    from repro.core.silent_n_state import SilentNStateSSR
    from repro.core.sublinear import SublinearTimeSSR
    from repro.engine.rng import make_rng

    rng = make_rng(args.seed)
    if args.protocol == "silent-n-state":
        protocol = SilentNStateSSR(args.n)
    elif args.protocol == "optimal-silent":
        protocol = OptimalSilentSSR(args.n, rmax_multiplier=4.0, dmax_factor=6.0, emax_factor=16.0)
    elif args.protocol == "sublinear":
        protocol = SublinearTimeSSR(args.n, depth=args.depth, rmax_multiplier=3.0)
    elif args.protocol == "reset-wave":
        protocol = ResetWaveProtocol(args.n)
    else:
        protocol = FratricideLeaderElection(args.n)
    if args.clean:
        configuration = protocol.initial_configuration(rng)
        start_mode = "clean"
    else:
        try:
            configuration = protocol.random_configuration(rng)
            start_mode = "adversarial"
        except NotImplementedError:
            # The protocol defines no adversarial sampler; report the clean
            # fallback honestly instead of labelling it adversarial.
            configuration = protocol.initial_configuration(rng)
            start_mode = "clean (protocol defines no adversarial states)"
    return protocol, configuration, rng, start_mode


def _simulate(args) -> int:
    from repro.core.problems import leaders_from_ranks
    from repro.engine.compiled import CompilationError
    from repro.engine.run_config import make_simulation

    protocol, configuration, rng, start_mode = _build_simulation(args)
    config = RunConfig(engine=args.engine, stop="stabilized")
    print(f"protocol:      {protocol.name}")
    print(f"population:    {protocol.n}")
    print(f"engine:        {config.engine}")
    print(f"start:         {start_mode}")
    print(f"correct at t=0: {protocol.is_correct(configuration)}")
    try:
        simulation = make_simulation(
            protocol, config, configuration=configuration, rng=rng
        )
    except CompilationError as error:
        print(f"error: {error}")
        print("hint: only protocols with an enumerable state space compile; "
              "try --engine loop")
        return 2
    result = simulation.run(config)
    print(f"stabilized:    {result.stopped}  ({result.reason})")
    print(f"parallel time: {result.parallel_time:.1f}   interactions: {result.interactions}")
    ranks = [getattr(state, "rank", None) for state in simulation.configuration]
    if all(rank is not None for rank in ranks):
        print(f"ranks:         {sorted(ranks)}")
        leaders = leaders_from_ranks(simulation.configuration)
        if leaders:
            print(f"leader:        agent #{leaders[0]} (rank 1)")
    return 0 if result.stopped else 1


def _print_result(result: ExperimentResult, markdown: bool) -> None:
    """Render one experiment result (same path for live runs and artifacts)."""
    title = result.title or result.identifier
    reference = f" ({result.paper_reference})" if result.paper_reference else ""
    print(f"== {result.identifier}: {title}{reference} ==")
    if markdown:
        print(rows_to_markdown(result.rows, columns=result.columns))
    else:
        print(format_table(result.rows, columns=result.columns))
    print(f"-- {len(result.rows)} rows in {result.wall_time:.1f}s --\n")


def _run_one(identifier: str, args, **overrides) -> None:
    import time as _time

    from repro.telemetry import tracing as _tracing

    spec = get_experiment(identifier)
    config = RunConfig(
        seed=args.seed if args.seed is not None else 0,
        engine=args.engine,
        jobs=args.jobs,
        trial_batch=getattr(args, "trial_batch", 1),
    )
    tracer = _tracing.current_tracer()
    experiment_started = _time.perf_counter()
    memo_dir = getattr(args, "resume", None) or getattr(args, "checkpoint", None)
    if memo_dir is None:
        result = spec.run(scale=args.scale, run=config, **overrides)
    else:
        # Checkpointed execution runs through the same resumable path the
        # serve workers use: finished trials are memoized under DIR, the
        # in-flight one is checkpointed, and the directory is pinned to the
        # payload digest so --resume refuses a mismatched run.  The artifact
        # is canonicalized (wall_time zeroed) so interrupted-and-resumed
        # runs produce byte-identical output.
        from repro.serve.cache import job_payload
        from repro.serve.worker import execute_payload

        directory = Path(memo_dir)
        if getattr(args, "resume", None) is not None and not (
            directory / "job.json"
        ).exists():
            raise ValueError(
                f"nothing to resume: no job checkpoint at {directory / 'job.json'} "
                "(record one first with 'repro run ... --checkpoint DIR')"
            )
        result = execute_payload(
            job_payload(identifier, args.scale, overrides, config), directory
        )
    if tracer is not None:
        tracer.emit(
            "experiment",
            experiment=identifier,
            scale=args.scale,
            engine=config.engine,
            rows=len(result.rows),
            dur=round(_time.perf_counter() - experiment_started, 6),
        )
    _print_result(result, args.markdown)
    if args.output is not None:
        path = result.save(Path(args.output) / f"{result.identifier}.json")
        print(f"-- artifact: {path}\n")


def _run_all(identifiers, args, **overrides) -> int:
    """Run each experiment, turning RunConfig rejections into clean errors.

    Unsupported combinations (e.g. ``--engine counts`` with an experiment
    that builds an epoch-partition scheduler) fail RunConfig validation
    before any seeding work; surface the message, not the traceback.  The
    same contract covers unknown identifiers and checkpoint-directory
    mismatches from ``--resume``.
    """
    if getattr(args, "checkpoint", None) or getattr(args, "resume", None):
        if getattr(args, "checkpoint", None) and getattr(args, "resume", None):
            print("error: --checkpoint and --resume are mutually exclusive")
            return 2
        if len(identifiers) != 1:
            print("error: --checkpoint/--resume require a single experiment, not 'all'")
            return 2
    for identifier in identifiers:
        try:
            _run_one(identifier, args, **overrides)
        except KeyError as error:
            message = error.args[0] if error.args else error
            print(f"error: {message}")
            return 2
        except ValueError as error:
            print(f"error: {identifier}: {error}")
            return 2
    return 0


def _run_with_telemetry(identifiers, args, **overrides) -> int:
    """Run experiments, instrumenting when ``--trace``/``--profile`` ask.

    A plain run takes the uninstrumented `_run_all` path untouched.  An
    instrumented one enables the metrics registry (plus per-stage timing
    for ``--profile``) and installs a trace writer for the duration; the
    trace ends with a ``run`` span and a full metrics snapshot so ``repro
    trace`` can reconstruct throughput and window histograms offline.
    Neither mode touches engine RNG -- artifacts are byte-identical with
    telemetry on or off (test-gated).
    """
    import time as _time

    from repro.telemetry import metrics as _metrics
    from repro.telemetry import tracing as _tracing

    trace_path = getattr(args, "trace", None)
    profile = bool(getattr(args, "profile", False))
    if trace_path is None and not profile:
        return _run_all(identifiers, args, **overrides)
    _metrics.reset_registry()
    with _metrics.telemetry_session(profile=profile):
        tracer = previous = None
        if trace_path is not None:
            tracer = _tracing.TraceWriter(trace_path)
            previous = _tracing.set_tracer(tracer)
        started = _time.perf_counter()
        try:
            exit_code = _run_all(identifiers, args, **overrides)
            snapshot = _metrics.registry().snapshot()
            if tracer is not None:
                tracer.emit(
                    "run",
                    experiments=list(identifiers),
                    exit_code=exit_code,
                    dur=round(_time.perf_counter() - started, 6),
                )
                tracer.emit("metrics", snapshot=snapshot)
        finally:
            if tracer is not None:
                _tracing.set_tracer(previous)
                tracer.close()
        if profile:
            from repro.experiments.report import format_table as _format_table

            print(
                _format_table(
                    _metrics.stage_breakdown(snapshot),
                    columns=["engine", "stage", "seconds"],
                    title="stage breakdown (wall seconds at check cadence)",
                )
            )
        if tracer is not None:
            print(f"-- trace: {trace_path} ({tracer.records_written} records)\n")
    return exit_code


def _trace(args) -> int:
    """``repro trace FILE``: summarize a JSONL trace offline."""
    from repro.analysis.trace_summary import render_trace_summary, summarize_trace
    from repro.telemetry.tracing import TraceError, read_trace

    try:
        records = read_trace(args.file)
        summary = summarize_trace(records)
        report = render_trace_summary(summary, area=args.area)
    except (TraceError, OSError) as error:
        print(f"error: {error}")
        return 2
    try:
        print(report)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| grep -q``) closed the pipe early;
        # the summary was computed fine, so don't turn that into a failure.
        # Point stdout at devnull so the interpreter's shutdown flush
        # doesn't re-raise and print a spurious traceback.
        import os as _os

        _os.dup2(_os.open(_os.devnull, _os.O_WRONLY), sys.stdout.fileno())
    return 0


def _stress(args) -> int:
    if args.experiment == "all":
        identifiers = list(BYZANTINE_EXPERIMENTS if args.byzantine else STRESS_EXPERIMENTS)
    else:
        if args.byzantine and args.experiment not in BYZANTINE_EXPERIMENTS:
            print(
                f"error: {args.experiment!r} is not a Byzantine experiment; "
                f"--byzantine selects {', '.join(BYZANTINE_EXPERIMENTS)}"
            )
            return 2
        identifiers = [args.experiment]
    overrides = {}
    if args.n is not None:
        overrides["n"] = args.n
    if args.trials is not None:
        overrides["trials"] = args.trials
    return _run_all(identifiers, args, **overrides)


def _report(args) -> int:
    results: List[ExperimentResult] = []
    for entry in args.artifacts:
        results.extend(load_artifacts(entry))
    for result in results:
        _print_result(result, args.markdown)
    return 0


# -- serve subsystem commands (see docs/ARCHITECTURE.md, "serve subsystem") ----------


def _serve(args) -> int:
    from repro.serve.server import ReproServer

    server = ReproServer(
        args.queue,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_retries=args.max_retries,
    )
    server.start()
    print(f"serving at {server.url}  (queue: {args.queue}, workers: {args.workers})")
    print("submit with: repro submit <experiment> --url " + server.url)
    try:
        server.serve_forever(already_started=True)
    finally:
        server.stop()
    return 0


def _client_call(method: str, url: str, base_url: str, payload=None):
    """One HTTP exchange, with unreachable-server turned into a clean error."""
    from urllib.error import URLError

    from repro.serve.server import http_json

    try:
        return http_json(method, url, payload)
    except URLError as error:
        reason = getattr(error, "reason", error)
        raise ValueError(
            f"cannot reach server at {base_url}: {reason} "
            "(is 'repro serve' running?)"
        ) from None


def _parse_param_overrides(pairs: List[str]) -> dict:
    """``KEY=VALUE`` pairs to experiment params; VALUE is JSON when possible."""
    import json as _json

    params = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise ValueError(f"malformed --param {pair!r}; expected KEY=VALUE")
        try:
            params[key] = _json.loads(value)
        except _json.JSONDecodeError:
            params[key] = value
    return params


def _submit(args) -> int:
    from repro.serve.cache import job_payload

    config = RunConfig(
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
        trial_batch=args.trial_batch,
    )
    try:
        payload = job_payload(
            args.experiment, args.scale, _parse_param_overrides(args.param), config
        )
        status, body = _client_call("POST", f"{args.url}/jobs", args.url, payload)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    if status != 200:
        message = body.get("error", body) if isinstance(body, dict) else body
        print(f"error: {message}")
        return 2
    cached = "  (artifact already cached)" if body.get("cached") else ""
    print(f"job:    {body['job_id']}{cached}")
    print(f"digest: {body['digest']}")
    print(f"state:  {body['state']}")
    print(f"fetch with: repro fetch {body['job_id']} --url {args.url}")
    return 0


def _jobs(args) -> int:
    if args.job_id is not None:
        try:
            status, body = _client_call(
                "GET", f"{args.url}/jobs/{args.job_id}", args.url
            )
        except ValueError as error:
            print(f"error: {error}")
            return 2
        if status != 200:
            message = body.get("error", body) if isinstance(body, dict) else body
            print(f"error: {message}")
            return 2
        progress = body.get("progress", {})
        print(f"job:     {body['job_id']}")
        print(f"state:   {body['state']}  (retries: {body['retries']})")
        print(f"digest:  {body['digest']}")
        print(f"cached:  {body['cached']}")
        print(
            f"trials:  {progress.get('trials_done', 0)} done, "
            f"{progress.get('inflight', 0)} in flight"
        )
        if body.get("error"):
            print(f"error:   {body['error']}")
        return 0
    try:
        status, body = _client_call("GET", f"{args.url}/jobs", args.url)
    except ValueError as error:
        print(f"error: {error}")
        return 2
    jobs = body.get("jobs", [])
    depths = body.get("depths")
    stale = set(body.get("stale") or [])
    if depths:
        print(
            "queue:  "
            + "  ".join(f"{state}={depths.get(state, 0)}" for state in depths)
        )
    if not jobs:
        print("no jobs")
        return 0
    rows = [
        {
            "job": record["job_id"],
            "experiment": record["payload"]["experiment"],
            "state": record["state"]
            + (" (stale)" if record["job_id"] in stale else ""),
            "retries": record["retries"],
            "cached": record["cached"],
            "error": record.get("error") or "",
        }
        for record in jobs
    ]
    print(format_table(rows, columns=list(rows[0])))
    if stale:
        print(
            f"warning: {len(stale)} running job(s) have a dead worker pid "
            f"({', '.join(sorted(stale))}); the next worker claim requeues them"
        )
    return 0


def _fetch(args) -> int:
    from repro.serve.server import http_get_bytes

    from urllib.error import URLError

    try:
        status, payload = http_get_bytes(f"{args.url}/jobs/{args.job_id}/artifact")
    except URLError as error:
        reason = getattr(error, "reason", error)
        print(
            f"error: cannot reach server at {args.url}: {reason} "
            "(is 'repro serve' running?)"
        )
        return 2
    if status != 200:
        import json as _json

        try:
            message = _json.loads(payload).get("error", payload.decode("utf-8"))
        except (ValueError, AttributeError):
            message = payload.decode("utf-8", "replace")
        print(f"error: {message}")
        return 2
    if args.output is not None:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        print(f"-- artifact: {path} ({len(payload)} bytes)")
        return 0
    _print_result(ExperimentResult.from_json(payload.decode("utf-8")), args.markdown)
    return 0


def _bench_report(args) -> int:
    from repro.experiments.bench_report import REPO_ROOT, render_bench_report

    try:
        report = render_bench_report(
            areas=args.area,
            root=args.root if args.root is not None else REPO_ROOT,
            markdown=args.markdown,
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    print(report, end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for identifier in list_experiments():
            spec = get_experiment(identifier)
            print(f"{identifier:28s} {spec.title}  [{spec.paper_reference}]")
        return 0

    if args.command == "run":
        identifiers = list_experiments() if args.experiment == "all" else [args.experiment]
        return _run_with_telemetry(identifiers, args)

    if args.command == "stress":
        return _stress(args)

    if args.command == "report":
        return _report(args)

    if args.command == "simulate":
        return _simulate(args)

    if args.command == "serve":
        return _serve(args)

    if args.command == "submit":
        return _submit(args)

    if args.command == "jobs":
        return _jobs(args)

    if args.command == "fetch":
        return _fetch(args)

    if args.command == "bench":
        return _bench_report(args)

    if args.command == "trace":
        return _trace(args)

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
