"""Command-line interface.

Examples
--------
List the available experiments::

    python -m repro list

Run one experiment at the quick scale and print its table::

    python -m repro run epidemic --scale quick

Run every experiment with a pinned seed, persisting one artifact per
experiment (used to regenerate ``EXPERIMENTS.md`` material)::

    python -m repro run all --scale quick --seed 1 --output artifacts/

Re-render the saved tables later -- no simulation re-runs::

    python -m repro report artifacts/
    python -m repro report artifacts/epidemic.json --markdown

Simulate one protocol from an adversarial configuration and watch it
stabilize::

    python -m repro simulate optimal-silent --n 32 --seed 7

Run a compilable protocol on the table-driven batch engine (large
populations; see docs/ARCHITECTURE.md)::

    python -m repro simulate reset-wave --n 100000 --engine compiled

Fan a multi-trial sweep over 4 worker processes (same results as --jobs 1,
just faster)::

    python -m repro run optimal_silent --scale full --jobs 4

Run the stress campaigns (timed fault bursts + adversarial schedulers) on
either engine, persisting artifacts like any other experiment::

    python -m repro stress --scale quick --seed 1
    python -m repro stress recovery_burst --engine compiled --output artifacts/

Run only the persistent-Byzantine families (tolerance curves and
approximate consensus vs the theory phase count)::

    python -m repro stress --byzantine --scale quick --seed 1
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.engine.run_config import ENGINES, RunConfig
from repro.experiments.registry import (
    BYZANTINE_EXPERIMENTS,
    STRESS_EXPERIMENTS,
    get_experiment,
    list_experiments,
)
from repro.experiments.report import format_table, rows_to_markdown
from repro.experiments.result import ExperimentResult, load_artifacts

#: Protocols available to the ``simulate`` subcommand.
SIMULATABLE_PROTOCOLS = (
    "silent-n-state",
    "optimal-silent",
    "sublinear",
    "fratricide",
    "reset-wave",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Time-Optimal Self-Stabilizing Leader Election in "
            "Population Protocols' (PODC 2021)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run an experiment and print its table")
    run_parser.add_argument(
        "experiment",
        help="experiment identifier (see 'repro list'), or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="parameterization to use (default: quick)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=(
            "root seed for the run (default: 0); the same seed reproduces "
            "the same tables for every experiment"
        ),
    )
    run_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables instead of text"
    )
    run_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="loop",
        help=(
            "execution engine for harness-backed experiments: 'loop' steps one "
            "interaction at a time; 'compiled' lowers the protocol to "
            "transition tables (requires an enumerable state space); 'counts' "
            "runs agent-free on a state-count vector (n-independent window "
            "cost; epoch-partition scheduling unsupported)"
        ),
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for multi-trial sweeps (default: 1); results are "
            "bit-identical for any value -- per-trial random streams are derived "
            "from SeedSequence children independently of the process layout"
        ),
    )
    run_parser.add_argument(
        "--trial-batch",
        type=int,
        default=1,
        dest="trial_batch",
        help=(
            "trials advanced together by one trial-batched engine instance "
            "(default: 1 = per-trial); requires --engine compiled or counts, "
            "composes with --jobs (each worker runs whole batches), and "
            "compiled-engine results stay bit-identical for any value"
        ),
    )
    run_parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help=(
            "persist one artifact per experiment to DIR "
            "(<identifier>.json; render later with 'repro report DIR')"
        ),
    )

    stress_parser = subparsers.add_parser(
        "stress",
        help="run fault-campaign stress experiments (adversary subsystem)",
        description=(
            "Run the registered stress experiments: timed fault bursts "
            "(corrupt/reset/reseed) executed mid-run by either engine, with "
            "recovery measured from the last burst; see "
            "docs/ARCHITECTURE.md (adversary subsystem)."
        ),
    )
    stress_parser.add_argument(
        "experiment",
        nargs="?",
        choices=STRESS_EXPERIMENTS + ("all",),
        default="all",
        help="which stress experiment to run (default: all)",
    )
    stress_parser.add_argument(
        "--byzantine",
        action="store_true",
        help=(
            "run only the persistent-Byzantine experiments "
            f"({', '.join(BYZANTINE_EXPERIMENTS)}): tolerance curves per "
            "protocol and approximate consensus vs the theory phase count"
        ),
    )
    stress_parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="parameterization to use (default: quick)",
    )
    stress_parser.add_argument(
        "--n", type=int, default=None, help="override the population size"
    )
    stress_parser.add_argument(
        "--trials", type=int, default=None, help="override the trial count"
    )
    stress_parser.add_argument(
        "--seed", type=int, default=None, help="root seed for the run (default: 0)"
    )
    stress_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables instead of text"
    )
    stress_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="loop",
        help="execution engine; fault campaigns run on both (default: loop)",
    )
    stress_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the trial sweeps (default: 1)",
    )
    stress_parser.add_argument(
        "--trial-batch",
        type=int,
        default=1,
        dest="trial_batch",
        help=(
            "trials per batched engine instance (default: 1); campaigns with "
            "fault events fall back to per-trial execution"
        ),
    )
    stress_parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help=(
            "persist one artifact per experiment to DIR "
            "(<identifier>.json; render later with 'repro report DIR')"
        ),
    )

    report_parser = subparsers.add_parser(
        "report", help="re-render tables from saved artifacts without re-running"
    )
    report_parser.add_argument(
        "artifacts",
        nargs="+",
        help="artifact files (.json/.jsonl) or directories containing them",
    )
    report_parser.add_argument(
        "--markdown", action="store_true", help="emit Markdown tables instead of text"
    )

    simulate_parser = subparsers.add_parser(
        "simulate", help="run one protocol from an adversarial configuration"
    )
    simulate_parser.add_argument(
        "protocol",
        choices=SIMULATABLE_PROTOCOLS,
        help="which protocol to simulate",
    )
    simulate_parser.add_argument("--n", type=int, default=32, help="population size")
    simulate_parser.add_argument("--seed", type=int, default=0, help="random seed")
    simulate_parser.add_argument(
        "--depth",
        type=int,
        default=1,
        help="history-tree depth H for the sublinear protocol (0 = direct detection)",
    )
    simulate_parser.add_argument(
        "--clean",
        action="store_true",
        help="start from the protocol's clean initial configuration instead of an adversarial one",
    )
    simulate_parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="loop",
        help=(
            "execution engine: 'loop' steps one interaction at a time; "
            "'compiled' lowers the protocol to transition tables and applies "
            "whole scheduler batches (requires an enumerable state space); "
            "'counts' advances a state-count vector in O(S^2) per window "
            "(fixed-state-space protocols scale to n=1e8+)"
        ),
    )
    return parser


def _build_simulation(args):
    """Create (protocol, configuration) for the ``simulate`` subcommand."""
    from repro.core.fratricide import FratricideLeaderElection
    from repro.core.optimal_silent import OptimalSilentSSR
    from repro.core.propagate_reset import ResetWaveProtocol
    from repro.core.silent_n_state import SilentNStateSSR
    from repro.core.sublinear import SublinearTimeSSR
    from repro.engine.rng import make_rng

    rng = make_rng(args.seed)
    if args.protocol == "silent-n-state":
        protocol = SilentNStateSSR(args.n)
    elif args.protocol == "optimal-silent":
        protocol = OptimalSilentSSR(args.n, rmax_multiplier=4.0, dmax_factor=6.0, emax_factor=16.0)
    elif args.protocol == "sublinear":
        protocol = SublinearTimeSSR(args.n, depth=args.depth, rmax_multiplier=3.0)
    elif args.protocol == "reset-wave":
        protocol = ResetWaveProtocol(args.n)
    else:
        protocol = FratricideLeaderElection(args.n)
    if args.clean:
        configuration = protocol.initial_configuration(rng)
        start_mode = "clean"
    else:
        try:
            configuration = protocol.random_configuration(rng)
            start_mode = "adversarial"
        except NotImplementedError:
            # The protocol defines no adversarial sampler; report the clean
            # fallback honestly instead of labelling it adversarial.
            configuration = protocol.initial_configuration(rng)
            start_mode = "clean (protocol defines no adversarial states)"
    return protocol, configuration, rng, start_mode


def _simulate(args) -> int:
    from repro.core.problems import leaders_from_ranks
    from repro.engine.compiled import CompilationError
    from repro.engine.run_config import make_simulation

    protocol, configuration, rng, start_mode = _build_simulation(args)
    config = RunConfig(engine=args.engine, stop="stabilized")
    print(f"protocol:      {protocol.name}")
    print(f"population:    {protocol.n}")
    print(f"engine:        {config.engine}")
    print(f"start:         {start_mode}")
    print(f"correct at t=0: {protocol.is_correct(configuration)}")
    try:
        simulation = make_simulation(
            protocol, config, configuration=configuration, rng=rng
        )
    except CompilationError as error:
        print(f"error: {error}")
        print("hint: only protocols with an enumerable state space compile; "
              "try --engine loop")
        return 2
    result = simulation.run(config)
    print(f"stabilized:    {result.stopped}  ({result.reason})")
    print(f"parallel time: {result.parallel_time:.1f}   interactions: {result.interactions}")
    ranks = [getattr(state, "rank", None) for state in simulation.configuration]
    if all(rank is not None for rank in ranks):
        print(f"ranks:         {sorted(ranks)}")
        leaders = leaders_from_ranks(simulation.configuration)
        if leaders:
            print(f"leader:        agent #{leaders[0]} (rank 1)")
    return 0 if result.stopped else 1


def _print_result(result: ExperimentResult, markdown: bool) -> None:
    """Render one experiment result (same path for live runs and artifacts)."""
    title = result.title or result.identifier
    reference = f" ({result.paper_reference})" if result.paper_reference else ""
    print(f"== {result.identifier}: {title}{reference} ==")
    if markdown:
        print(rows_to_markdown(result.rows, columns=result.columns))
    else:
        print(format_table(result.rows, columns=result.columns))
    print(f"-- {len(result.rows)} rows in {result.wall_time:.1f}s --\n")


def _run_one(identifier: str, args, **overrides) -> None:
    spec = get_experiment(identifier)
    config = RunConfig(
        seed=args.seed if args.seed is not None else 0,
        engine=args.engine,
        jobs=args.jobs,
        trial_batch=getattr(args, "trial_batch", 1),
    )
    result = spec.run(scale=args.scale, run=config, **overrides)
    _print_result(result, args.markdown)
    if args.output is not None:
        path = result.save(Path(args.output) / f"{result.identifier}.json")
        print(f"-- artifact: {path}\n")


def _run_all(identifiers, args, **overrides) -> int:
    """Run each experiment, turning RunConfig rejections into clean errors.

    Unsupported combinations (e.g. ``--engine counts`` with an experiment
    that builds an epoch-partition scheduler) fail RunConfig validation
    before any seeding work; surface the message, not the traceback.
    """
    for identifier in identifiers:
        try:
            _run_one(identifier, args, **overrides)
        except ValueError as error:
            print(f"error: {identifier}: {error}")
            return 2
    return 0


def _stress(args) -> int:
    if args.experiment == "all":
        identifiers = list(BYZANTINE_EXPERIMENTS if args.byzantine else STRESS_EXPERIMENTS)
    else:
        if args.byzantine and args.experiment not in BYZANTINE_EXPERIMENTS:
            print(
                f"error: {args.experiment!r} is not a Byzantine experiment; "
                f"--byzantine selects {', '.join(BYZANTINE_EXPERIMENTS)}"
            )
            return 2
        identifiers = [args.experiment]
    overrides = {}
    if args.n is not None:
        overrides["n"] = args.n
    if args.trials is not None:
        overrides["trials"] = args.trials
    return _run_all(identifiers, args, **overrides)


def _report(args) -> int:
    results: List[ExperimentResult] = []
    for entry in args.artifacts:
        results.extend(load_artifacts(entry))
    for result in results:
        _print_result(result, args.markdown)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for identifier in list_experiments():
            spec = get_experiment(identifier)
            print(f"{identifier:28s} {spec.title}  [{spec.paper_reference}]")
        return 0

    if args.command == "run":
        identifiers = list_experiments() if args.experiment == "all" else [args.experiment]
        return _run_all(identifiers, args)

    if args.command == "stress":
        return _stress(args)

    if args.command == "report":
        return _report(args)

    if args.command == "simulate":
        return _simulate(args)

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
