"""Process-local telemetry: metrics registry + structured JSONL tracing.

Two deliberately independent layers:

* :mod:`repro.telemetry.metrics` -- counters/gauges/histograms keyed by
  name + labels, snapshot/merge for cross-process aggregation, and a
  Prometheus text renderer (served by ``GET /metrics`` in repro serve).
* :mod:`repro.telemetry.tracing` -- append-only JSONL event streams
  (run -> experiment -> harness call -> trial, job -> claim -> trial)
  written by ``repro run --trace`` and always-on in serve workers, and
  summarized offline by ``repro trace``.

Both are **off by default and zero-cost on the hot path**: every probe
checks a module flag before touching the registry, probes fire only on
the existing ``check_interval``/window-boundary cadence (never per
interaction), and no probe ever draws from an engine RNG -- telemetry on
vs off is bit-identical by construction and gated by tests.
"""

from repro.telemetry import metrics, tracing
from repro.telemetry.metrics import MetricsRegistry, registry, telemetry_session
from repro.telemetry.tracing import TraceError, TraceWriter, current_tracer, read_trace

__all__ = [
    "MetricsRegistry",
    "TraceError",
    "TraceWriter",
    "current_tracer",
    "metrics",
    "read_trace",
    "registry",
    "telemetry_session",
]
