"""Process-local metrics: counters, gauges, histograms, Prometheus text.

Design constraints (see ARCHITECTURE.md "Telemetry"):

* **Off by default, cheap when off.**  Every probe helper starts with
  ``if not _ENABLED: return`` and hot call sites additionally guard on the
  module flag, so a disabled build pays one attribute load + branch per
  *window* (never per interaction).
* **Never touches engine RNG.**  Probes only read already-computed values
  (window sizes, counts, wall-clock); enabling telemetry cannot perturb a
  simulation stream, which the bit-identity test matrix enforces.
* **Process-local, mergeable.**  ``--jobs N`` forks workers whose registry
  updates stay in the child; :meth:`MetricsRegistry.snapshot` /
  :meth:`MetricsRegistry.merge` exist so callers who want cross-process
  totals can ship snapshots over any transport and add them up.  Counter
  and histogram samples add; gauges overwrite (last writer wins).
* **Prometheus text.**  :meth:`MetricsRegistry.render_prometheus` emits
  the ``text/plain; version=0.0.4`` exposition format (``# HELP`` /
  ``# TYPE``, cumulative ``_bucket{le=...}`` histograms) scraped from
  ``GET /metrics`` on a live repro serve instance.
"""

from __future__ import annotations

import math
import re
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Module switches -- flipped by :func:`enable` / :func:`set_profiling` and
#: read directly (``metrics._ENABLED``) on hot paths to keep the off cost
#: at one attribute load + branch per window.
_ENABLED = False
_PROFILING = False

#: Window sizes span 1 (loop engine pairs) to 1e6+ (counts tau-leaps).
WINDOW_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)

#: Latency-style buckets for checkpoint capture and stage timings.
TIME_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0)

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def enabled() -> bool:
    return _ENABLED


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def profiling() -> bool:
    return _PROFILING


def set_profiling(flag: bool) -> None:
    """Toggle per-stage timing (``--profile``); implies probes are worth it."""
    global _PROFILING
    _PROFILING = bool(flag)


@contextmanager
def telemetry_session(*, enable_metrics: bool = True, profile: bool = False) -> Iterator["MetricsRegistry"]:
    """Enable telemetry for a scope, restoring both flags on exit.

    Used by ``repro run --trace/--profile`` and the serve front end so
    tests and library callers never leak global state.
    """
    global _ENABLED, _PROFILING
    saved = (_ENABLED, _PROFILING)
    _ENABLED = bool(enable_metrics) or bool(profile)
    _PROFILING = bool(profile)
    try:
        yield _REGISTRY
    finally:
        _ENABLED, _PROFILING = saved


class Counter:
    """Monotonically increasing float (resets only with the registry)."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, heartbeat timestamps)."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram (per-bucket counts, not cumulative in memory)."""

    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(float(bound) for bound in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram buckets must be sorted and unique: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1


class MetricsRegistry:
    """Name+labels keyed metric store with snapshot/merge and rendering.

    A metric *family* is one name with a fixed type, help string, and (for
    histograms) bucket layout; registering the same name with a different
    type or buckets raises ``ValueError`` (same contract as Prometheus
    client libraries).  Lookups are cached by ``(name, labels)`` so hot
    probes resolve with one dict get.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, Dict] = {}
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    # -- registration ------------------------------------------------------------------

    def _get(self, kind: str, name: str, help_text: str, labels: Dict[str, str],
             buckets: Optional[Sequence[float]] = None):
        key = (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))
        metric = self._metrics.get(key)
        if metric is not None and self._consistent(metric, kind, buckets):
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if not self._consistent(metric, kind, buckets):
                    family = self._families[name]
                    if family["type"] != kind:
                        raise ValueError(
                            f"metric {name!r} already registered as "
                            f"{family['type']}, not {kind}"
                        )
                    raise ValueError(
                        f"metric {name!r} already registered with different buckets"
                    )
                return metric
            if not _NAME_PATTERN.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            for label in labels:
                if not _LABEL_PATTERN.match(str(label)):
                    raise ValueError(f"invalid label name {label!r} on metric {name!r}")
            family = self._families.get(name)
            if family is None:
                family = {"type": kind, "help": help_text}
                if kind == "histogram":
                    family["buckets"] = tuple(buckets if buckets is not None else TIME_BUCKETS)
                self._families[name] = family
            elif family["type"] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family['type']}, not {kind}"
                )
            elif kind == "histogram" and buckets is not None and tuple(buckets) != family["buckets"]:
                raise ValueError(f"metric {name!r} already registered with different buckets")
            if kind == "counter":
                metric = Counter()
            elif kind == "gauge":
                metric = Gauge()
            else:
                metric = Histogram(family["buckets"])
            self._metrics[key] = metric
            return metric

    @staticmethod
    def _consistent(metric, kind: str, buckets: Optional[Sequence[float]]) -> bool:
        """Does a cached metric match the requested kind (and bucket layout)?"""
        expected = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}[kind]
        if not isinstance(metric, expected):
            return False
        if kind == "histogram" and buckets is not None:
            return tuple(float(bound) for bound in buckets) == metric.bounds
        return True

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None, **labels: str) -> Histogram:
        return self._get("histogram", name, help_text, labels, buckets=buckets)

    # -- snapshot / merge --------------------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-able copy of every family and sample (stable ordering)."""
        with self._lock:
            families = {
                name: {**family, **({"buckets": list(family["buckets"])} if "buckets" in family else {})}
                for name, family in sorted(self._families.items())
            }
            samples: List[Dict] = []
            for (name, label_items) in sorted(self._metrics):
                metric = self._metrics[(name, label_items)]
                sample: Dict = {"name": name, "labels": dict(label_items)}
                if isinstance(metric, Histogram):
                    sample.update(
                        buckets=list(metric.counts), sum=metric.sum, count=metric.count
                    )
                else:
                    sample["value"] = metric.value
                samples.append(sample)
        return {"families": families, "samples": samples}

    def merge(self, snapshot: Dict) -> None:
        """Fold another registry's snapshot in (counters/histograms add,
        gauges overwrite)."""
        families = snapshot.get("families", {})
        for sample in snapshot.get("samples", []):
            name = sample["name"]
            family = families.get(name)
            if family is None:
                raise ValueError(f"snapshot sample {name!r} has no family entry")
            kind = family["type"]
            labels = sample.get("labels", {})
            if kind == "counter":
                self.counter(name, family.get("help", ""), **labels).inc(sample["value"])
            elif kind == "gauge":
                self.gauge(name, family.get("help", ""), **labels).set(sample["value"])
            else:
                histogram = self.histogram(
                    name, family.get("help", ""), buckets=family.get("buckets"), **labels
                )
                counts = sample.get("buckets", [])
                if len(counts) != len(histogram.counts):
                    raise ValueError(
                        f"snapshot histogram {name!r} has {len(counts)} buckets, "
                        f"registry has {len(histogram.counts)}"
                    )
                with histogram._lock:
                    for index, count in enumerate(counts):
                        histogram.counts[index] += count
                    histogram.sum += sample.get("sum", 0.0)
                    histogram.count += sample.get("count", 0)

    # -- rendering ---------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The ``text/plain; version=0.0.4`` exposition of every sample."""
        snapshot = self.snapshot()
        lines: List[str] = []
        by_family: Dict[str, List[Dict]] = {}
        for sample in snapshot["samples"]:
            by_family.setdefault(sample["name"], []).append(sample)
        for name, family in snapshot["families"].items():
            help_text = family.get("help") or name
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {family['type']}")
            for sample in by_family.get(name, []):
                labels = sample["labels"]
                if family["type"] == "histogram":
                    bounds = list(family["buckets"]) + [math.inf]
                    cumulative = 0
                    for bound, count in zip(bounds, sample["buckets"]):
                        cumulative += count
                        le = {"le": _format_value(bound)}
                        lines.append(
                            f"{name}_bucket{_format_labels({**labels, **le})} {cumulative}"
                        )
                    lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(sample['sum'])}")
                    lines.append(f"{name}_count{_format_labels(labels)} {sample['count']}")
                else:
                    lines.append(f"{name}{_format_labels(labels)} {_format_value(sample['value'])}")
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self._metrics.clear()


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


#: The process-wide registry every probe helper writes into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def reset_registry() -> None:
    _REGISTRY.reset()


# -- probe helpers ---------------------------------------------------------------------
#
# One tiny function per instrumented event.  Each guards on _ENABLED so call
# sites stay one-liners; window-cadence call sites in the engines *also*
# guard (``if _metrics._ENABLED:``) to skip even the function call when off.


def record_window(engine: str, applied: int) -> None:
    """One scheduler window consumed by an engine (size = interactions applied)."""
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_windows_total", "Scheduler windows consumed, by engine.", engine=engine
    ).inc()
    _REGISTRY.histogram(
        "repro_window_size",
        "Distribution of applied window sizes (interactions per window).",
        buckets=WINDOW_BUCKETS,
        engine=engine,
    ).observe(applied)
    _REGISTRY.counter(
        "repro_interactions_total", "Interactions applied, by engine.", engine=engine
    ).inc(applied)


def record_stop_check(engine: str) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_stop_checks_total",
        "Stop-predicate evaluations at check_interval boundaries.",
        engine=engine,
    ).inc()


def record_halving(count: int = 1) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_feasibility_halvings_total",
        "Counts-engine window halvings after an infeasible tau-leap draw.",
    ).inc(count)


def record_drift_cap(count: int = 1) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_drift_cap_events_total",
        "Counts-engine windows clamped by the drift cap.",
    ).inc(count)


def record_scheduler_refill(count: int = 1) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_scheduler_refills_total",
        "Scheduler pair-buffer refills (loop engine and trial-batch cursors).",
    ).inc(count)


def record_fault_injection(kind: str, victims: int) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_fault_injections_total",
        "Adversary fault events applied, by event kind.",
        kind=kind,
    ).inc()
    _REGISTRY.counter(
        "repro_fault_victims_total",
        "Agents overwritten by adversary fault events, by event kind.",
        kind=kind,
    ).inc(victims)


def record_byzantine_install(agents: int) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_byzantine_installs_total",
        "Byzantine overlay markings drawn (once per trial with a spec).",
    ).inc()
    _REGISTRY.counter(
        "repro_byzantine_agents_total",
        "Agents marked Byzantine across all overlay installs.",
    ).inc(agents)


def record_checkpoint_seconds(seconds: float) -> None:
    if not _ENABLED:
        return
    _REGISTRY.histogram(
        "repro_checkpoint_capture_seconds",
        "Wall time to capture and persist one engine checkpoint.",
        buckets=TIME_BUCKETS,
    ).observe(seconds)


def record_trial(engine: str, interactions: int) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_trials_total", "Finished trials observed by the harness.", engine=engine
    ).inc()
    _REGISTRY.counter(
        "repro_trial_interactions_total",
        "Interactions summed over finished trials, by engine.",
        engine=engine,
    ).inc(interactions)


def record_stage_seconds(engine: str, stage: str, seconds: float) -> None:
    """Per-stage wall time (``--profile`` only; callers guard on _PROFILING)."""
    _REGISTRY.counter(
        "repro_stage_seconds_total",
        "Wall seconds per engine stage (scheduler draw, table apply, stop check).",
        engine=engine,
        stage=stage,
    ).inc(seconds)


def stage_breakdown(snapshot: Dict) -> List[Dict]:
    """``--profile`` rows: ``{engine, stage, seconds}`` sorted by time desc."""
    rows = [
        {
            "engine": sample["labels"].get("engine", "?"),
            "stage": sample["labels"].get("stage", "?"),
            "seconds": round(float(sample["value"]), 6),
        }
        for sample in snapshot.get("samples", [])
        if sample["name"] == "repro_stage_seconds_total"
    ]
    return sorted(rows, key=lambda row: -row["seconds"])


# -- serve-side probes -----------------------------------------------------------------


def record_cache_hit() -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_cache_hits_total", "Jobs satisfied from the artifact cache."
    ).inc()


def record_job_done(outcome: str) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_jobs_total", "Jobs processed by workers, by outcome.", outcome=outcome
    ).inc()


def set_queue_depth(state: str, depth: int) -> None:
    if not _ENABLED:
        return
    _REGISTRY.gauge(
        "repro_queue_depth", "Jobs currently in each queue state.", state=state
    ).set(depth)


def heartbeat(worker: str) -> None:
    if not _ENABLED:
        return
    _REGISTRY.gauge(
        "repro_worker_heartbeat_seconds",
        "Unix timestamp of each worker's last poll.",
        worker=worker,
    ).set(time.time())


def record_http_request(endpoint: str) -> None:
    if not _ENABLED:
        return
    _REGISTRY.counter(
        "repro_http_requests_total", "HTTP requests served, by endpoint.",
        endpoint=endpoint,
    ).inc()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "WINDOW_BUCKETS",
    "disable",
    "enable",
    "enabled",
    "heartbeat",
    "profiling",
    "record_byzantine_install",
    "record_cache_hit",
    "record_checkpoint_seconds",
    "record_drift_cap",
    "record_fault_injection",
    "record_halving",
    "record_http_request",
    "record_job_done",
    "record_scheduler_refill",
    "record_stage_seconds",
    "record_stop_check",
    "record_trial",
    "record_window",
    "registry",
    "reset_registry",
    "set_profiling",
    "set_queue_depth",
    "stage_breakdown",
    "telemetry_session",
]
