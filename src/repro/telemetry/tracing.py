"""Structured JSONL tracing: run -> experiment -> trial, job -> claim -> trial.

A trace is an append-only JSONL file.  The first line is a header record::

    {"kind": "header", "format": "repro.trace/v1", "run_id": ..., ...}

and every subsequent line is one event: a ``ts`` wall-clock stamp, the
``run_id`` correlation key, any fields pushed by enclosing
:meth:`TraceWriter.context` scopes (serve workers tag records with their
``job`` id this way), and the event's own fields.  Durations come from
``time.perf_counter`` and land in a ``dur`` field (seconds).

Writers are thread-safe (one lock around write+flush; context stacks are
thread-local so concurrent worker threads never cross-tag records) and
deliberately know nothing about engines -- probes hand them plain dicts.
``repro trace FILE`` summarizes a trace offline via
:mod:`repro.analysis.trace_summary`; malformed files raise
:class:`TraceError`, which the CLI maps to ``error:`` + exit 2.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: Format tag carried by every trace header line.
TRACE_FORMAT = "repro.trace/v1"


class TraceError(ValueError):
    """A file that is not a well-formed repro trace."""


def _repro_version() -> str:
    from repro import __version__  # deferred: repro.__init__ imports engines

    return __version__


class TraceWriter:
    """Append-only JSONL trace emitter with thread-local context scopes."""

    def __init__(
        self,
        path: Union[str, Path],
        run_id: Optional[str] = None,
        append: bool = False,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self._lock = threading.Lock()
        self._local = threading.local()
        self._stream = open(self.path, "a" if append else "w", encoding="utf-8")
        self._closed = False
        self.records_written = 0
        self.emit("header", format=TRACE_FORMAT, version=_repro_version())

    # -- emission ----------------------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Write one event line (``kind`` + context + fields); no-op when closed."""
        if self._closed:
            return
        record: Dict = {"kind": kind, "ts": round(time.time(), 6), "run_id": self.run_id}
        for frame in getattr(self._local, "stack", ()):
            record.update(frame)
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._closed:
                return
            self._stream.write(line + "\n")
            self._stream.flush()
            self.records_written += 1

    @contextmanager
    def context(self, **fields) -> Iterator[None]:
        """Tag every event emitted by *this thread* inside the scope."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(fields)
        try:
            yield
        finally:
            stack.pop()

    @contextmanager
    def span(self, kind: str, **fields) -> Iterator[Dict]:
        """Emit ``kind`` with a measured ``dur`` when the scope exits.

        Yields a dict the caller may stuff extra result fields into; they
        are merged into the closing event.
        """
        extra: Dict = {}
        started = time.perf_counter()
        try:
            yield extra
        finally:
            self.emit(
                kind, dur=round(time.perf_counter() - started, 6), **{**fields, **extra}
            )

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._stream.flush()
                self._stream.close()


# -- the process-wide tracer -----------------------------------------------------------

_TRACER: Optional[TraceWriter] = None


def current_tracer() -> Optional[TraceWriter]:
    return _TRACER


def set_tracer(tracer: Optional[TraceWriter]) -> Optional[TraceWriter]:
    """Install the process tracer, returning the previous one (for restore)."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def trace_to(path: Union[str, Path], **writer_kwargs) -> Iterator[TraceWriter]:
    """Write a trace to ``path`` for the scope, restoring the prior tracer."""
    writer = TraceWriter(path, **writer_kwargs)
    previous = set_tracer(writer)
    try:
        yield writer
    finally:
        set_tracer(previous)
        writer.close()


# -- reading ---------------------------------------------------------------------------


def read_trace(path: Union[str, Path]) -> List[Dict]:
    """Parse a trace file, validating the header; raises :class:`TraceError`.

    Every line must be a JSON object with a ``kind``; the first must be a
    ``header`` carrying the :data:`TRACE_FORMAT` tag.  Blank lines are
    tolerated (a crashed writer can leave one).
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"no such trace file: {path}")
    records: List[Dict] = []
    with open(path, encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as error:
                raise TraceError(f"{path}: line {number} is not JSON ({error})") from None
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceError(
                    f"{path}: line {number} is not a trace record (need an "
                    "object with a 'kind')"
                )
            records.append(record)
    if not records:
        raise TraceError(f"{path}: empty trace file")
    first = records[0]
    if first.get("kind") != "header" or first.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"{path}: not a repro trace (first line must be a header with "
            f"format={TRACE_FORMAT!r})"
        )
    return records


__all__ = [
    "TRACE_FORMAT",
    "TraceError",
    "TraceWriter",
    "current_tracer",
    "read_trace",
    "set_tracer",
    "trace_to",
]
