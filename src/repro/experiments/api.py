"""The uniform experiment-runner contract.

Every registered experiment runner has the signature::

    runner(params: Mapping, run: RunConfig) -> ExperimentResult

``params`` carries the experiment-specific knobs (population sizes, trial
counts, protocol constants); ``run`` carries the execution options that are
uniform across *all* experiments (seed, engine, jobs, stop, caps) and flow
unchanged from the CLI's ``--seed/--engine/--jobs`` flags.  The
:func:`experiment_runner` decorator adapts a row-producing function to this
contract: it times the call, stamps provenance, and wraps the rows in an
:class:`~repro.experiments.result.ExperimentResult`.

Deprecated keyword form
-----------------------
The pre-redesign call style ``run_epidemic(ns=..., trials=..., seed=...,
jobs=...)`` keeps working for one release: the decorator splits the keywords
into ``params`` and a ``RunConfig``, emits a :class:`DeprecationWarning`
(once per runner), and returns the bare row list the old API returned.
"""

from __future__ import annotations

import functools
import time
import warnings
from typing import Callable, Dict, List, Mapping, Optional, Set

from repro.engine.run_config import RunConfig
from repro.experiments.result import ExperimentResult

#: Keywords of the legacy call style that belong to the RunConfig, not to the
#: experiment parameters.
RUN_OPTION_KEYS = ("seed", "engine", "jobs", "stop", "max_interactions", "check_interval")

#: Default seed of the legacy keyword form (every old runner declared
#: ``seed: RngLike = 0``) and of experiment entry points, so experiment runs
#: are reproducible unless the caller asks for entropy.
DEFAULT_EXPERIMENT_SEED = 0

_WARNED: Set[str] = set()


def warn_deprecated_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` exactly once per ``key`` per process.

    Shims must warn loudly enough to be seen but not drown a sweep in
    thousands of identical lines; CI asserts the exactly-once behaviour.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which shims have warned (test helper)."""
    _WARNED.clear()


def read_params(params: Mapping, **defaults) -> Dict:
    """Apply ``defaults`` to ``params``, rejecting unknown parameter names.

    The uniform contract passes experiment parameters as a mapping, which
    would silently swallow a misspelled key (``trails=100`` running with the
    default trial count); this keeps the old keyword-signature behaviour of
    failing loudly instead.
    """
    unknown = set(params) - set(defaults)
    if unknown:
        raise TypeError(
            f"unknown experiment parameters {sorted(unknown)}; "
            f"known: {sorted(defaults)}"
        )
    merged = dict(defaults)
    merged.update(params)
    return merged


def split_legacy_kwargs(legacy: Dict) -> tuple:
    """Split a legacy keyword dict into ``(params, RunConfig)``."""
    params = dict(legacy)
    config = RunConfig(
        seed=params.pop("seed", DEFAULT_EXPERIMENT_SEED),
        engine=params.pop("engine", "loop"),
        jobs=params.pop("jobs", 1),
        stop=params.pop("stop", "stabilized"),
        max_interactions=params.pop("max_interactions", None),
        check_interval=params.pop("check_interval", None),
    )
    return params, config


def experiment_runner(
    identifier: str,
) -> Callable[[Callable[[Mapping, RunConfig], List[Dict]]], Callable]:
    """Adapt a ``(params, run) -> rows`` function to the uniform contract.

    The decorated callable accepts either the new positional form
    ``runner(params, run)`` (returning :class:`ExperimentResult`) or the
    deprecated keyword form (returning the bare row list).  The registry
    identifier is attached as ``runner.experiment_identifier`` so the
    explicit contract replaces signature introspection everywhere.
    """

    def decorate(fn: Callable[[Mapping, RunConfig], List[Dict]]) -> Callable:
        @functools.wraps(fn)
        def wrapper(params=None, run=None, **legacy):
            if legacy:
                if params is not None or run is not None:
                    raise TypeError(
                        f"{fn.__name__} takes (params, run: RunConfig); do not mix "
                        "positional arguments with legacy keywords"
                    )
                warn_deprecated_once(
                    identifier,
                    f"{fn.__name__}(**kwargs) is deprecated; call "
                    f"{fn.__name__}(params, run=RunConfig(...)) instead "
                    "(the keyword form will be removed next release)",
                )
                legacy_params, config = split_legacy_kwargs(legacy)
                return fn(legacy_params, config)
            if params is not None and not isinstance(params, Mapping):
                raise TypeError(
                    f"{fn.__name__} params must be a mapping of experiment "
                    f"parameters, got {type(params).__name__}"
                )
            if run is not None and not isinstance(run, RunConfig):
                raise TypeError(
                    f"{fn.__name__} run must be a RunConfig, got {type(run).__name__}"
                )
            config = run if run is not None else RunConfig(seed=DEFAULT_EXPERIMENT_SEED)
            started = time.perf_counter()
            rows = fn(dict(params or {}), config)
            wall_time = time.perf_counter() - started
            return ExperimentResult(
                identifier=identifier,
                rows=rows,
                seed=config.seed if isinstance(config.seed, int) else None,
                engine=config.engine,
                stop=config.stop,
                jobs=config.jobs,
                trial_batch=config.trial_batch,
                faults=config.faults.to_dict() if config.faults is not None else None,
                scheduler=(
                    config.scheduler.to_dict() if config.scheduler is not None else None
                ),
                byzantine=(
                    config.byzantine.to_dict() if config.byzantine is not None else None
                ),
                wall_time=wall_time,
            )

        wrapper.experiment_identifier = identifier
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


__all__ = [
    "DEFAULT_EXPERIMENT_SEED",
    "RUN_OPTION_KEYS",
    "experiment_runner",
    "read_params",
    "reset_deprecation_warnings",
    "split_legacy_kwargs",
    "warn_deprecated_once",
]
