"""Experiments E4-E6: the probabilistic tools of Section 2.1.

These validate the building blocks whose constants drive every protocol-level
running time:

* E4 (Lemma 2.7 / Corollary 2.8): the two-way epidemic completes in
  ``(n - 1) H_{n-1} ~ n ln n`` interactions, rarely exceeding ``3 n ln n``.
* E5 (Lemma 2.9): the roll-call process completes in ``~ 1.5 n ln n``
  interactions, i.e. 1.5x the plain epidemic.
* E6 (Lemmas 2.10 / 2.11): the bounded-epidemic hitting time ``tau_k`` is at
  most ``k n^{1/k}`` parallel time for constant ``k`` and ``O(log n)`` for
  ``k = 3 log2 n``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.analysis.statistics import summarize
from repro.analysis.theory import (
    expected_all_interact_interactions,
    expected_bounded_epidemic_time,
    expected_epidemic_interactions,
    expected_roll_call_interactions,
)
from repro.engine.rng import RngLike, spawn_rngs
from repro.processes.bounded_epidemic import simulate_level_hitting_times
from repro.processes.coupon_collector import simulate_all_agents_interact
from repro.processes.epidemic import simulate_epidemic_interactions
from repro.processes.roll_call import simulate_roll_call_interactions


def run_epidemic(
    ns: Sequence[int] = (64, 128, 256, 512),
    trials: int = 200,
    seed: RngLike = 0,
) -> List[Dict]:
    """E4: measured vs predicted completion time of the two-way epidemic."""
    rows: List[Dict] = []
    rngs = spawn_rngs(seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = [simulate_epidemic_interactions(n, rng) for _ in range(trials)]
        summary = summarize(samples)
        predicted = expected_epidemic_interactions(n)
        threshold = 3 * n * math.log(n)
        exceed = sum(1 for sample in samples if sample > threshold) / len(samples)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean interactions": summary.mean,
                "predicted (n-1)H_{n-1}": predicted,
                "mean / predicted": summary.mean / predicted,
                "P[T_n > 3 n ln n] (measured)": exceed,
                "P bound (Cor. 2.8)": 1.0 / (n * n),
            }
        )
    return rows


def run_roll_call(
    ns: Sequence[int] = (32, 64, 128, 256),
    trials: int = 50,
    seed: RngLike = 0,
) -> List[Dict]:
    """E5: measured vs predicted completion time of the roll-call process."""
    rows: List[Dict] = []
    rngs = spawn_rngs(seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = [simulate_roll_call_interactions(n, rng) for _ in range(trials)]
        summary = summarize(samples)
        predicted = expected_roll_call_interactions(n)
        epidemic_predicted = expected_epidemic_interactions(n)
        threshold = 3 * n * math.log(n)
        exceed = sum(1 for sample in samples if sample > threshold) / len(samples)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean interactions": summary.mean,
                "predicted 1.5 n ln n": predicted,
                "mean / epidemic mean": summary.mean / epidemic_predicted,
                "P[R_n > 3 n ln n] (measured)": exceed,
                "P bound (Lem. 2.9)": 1.0 / n,
            }
        )
    return rows


def run_bounded_epidemic(
    ns: Sequence[int] = (64, 256, 1024),
    ks: Sequence[int] = (1, 2, 3),
    trials: int = 50,
    seed: RngLike = 0,
    include_log_level: bool = True,
) -> List[Dict]:
    """E6: hitting times ``tau_k`` of the bounded epidemic vs the paper's bounds."""
    rows: List[Dict] = []
    rngs = spawn_rngs(seed, len(ns))
    for n, rng in zip(ns, rngs):
        levels = list(ks)
        if include_log_level:
            levels.append(int(3 * math.ceil(math.log2(n))))
        max_level = max(levels)
        per_level_samples: Dict[int, List[float]] = {k: [] for k in levels}
        for _ in range(trials):
            hitting = simulate_level_hitting_times(n, max_level=max_level, rng=rng)
            for k in levels:
                per_level_samples[k].append(hitting[k] / n)  # parallel time
        for k in levels:
            summary = summarize(per_level_samples[k])
            bound = expected_bounded_epidemic_time(n, k)
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "trials": trials,
                    "mean tau_k (parallel)": summary.mean,
                    "paper bound": bound,
                    "mean / bound": summary.mean / bound,
                }
            )
    return rows


def run_all_agents_interact(
    ns: Sequence[int] = (64, 256, 1024),
    trials: int = 100,
    seed: RngLike = 0,
) -> List[Dict]:
    """Auxiliary for E5: interactions until every agent has interacted (~0.5 n ln n)."""
    rows: List[Dict] = []
    rngs = spawn_rngs(seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = [simulate_all_agents_interact(n, rng) for _ in range(trials)]
        summary = summarize(samples)
        predicted = expected_all_interact_interactions(n)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean interactions": summary.mean,
                "predicted 0.5 n ln n": predicted,
                "mean / predicted": summary.mean / predicted,
            }
        )
    return rows


__all__ = [
    "run_all_agents_interact",
    "run_bounded_epidemic",
    "run_epidemic",
    "run_roll_call",
]
