"""Experiments E4-E6: the probabilistic tools of Section 2.1.

These validate the building blocks whose constants drive every protocol-level
running time:

* E4 (Lemma 2.7 / Corollary 2.8): the two-way epidemic completes in
  ``(n - 1) H_{n-1} ~ n ln n`` interactions, rarely exceeding ``3 n ln n``.
* E5 (Lemma 2.9): the roll-call process completes in ``~ 1.5 n ln n``
  interactions, i.e. 1.5x the plain epidemic.
* E6 (Lemmas 2.10 / 2.11): the bounded-epidemic hitting time ``tau_k`` is at
  most ``k n^{1/k}`` parallel time for constant ``k`` and ``O(log n)`` for
  ``k = 3 log2 n``.

All runners follow the uniform contract ``runner(params, run: RunConfig) ->
ExperimentResult`` (see :mod:`repro.experiments.api`); the closed-form
process simulators below have no engine choice, so only ``run.seed`` applies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from repro.analysis.theory import (
    expected_all_interact_interactions,
    expected_bounded_epidemic_time,
    expected_epidemic_interactions,
    expected_roll_call_interactions,
)
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner, read_params
from repro.processes.bounded_epidemic import simulate_level_hitting_times
from repro.processes.coupon_collector import simulate_all_agents_interact
from repro.processes.epidemic import simulate_epidemic_interactions
from repro.processes.roll_call import simulate_roll_call_interactions


@experiment_runner("epidemic")
def run_epidemic(params: Mapping, run: RunConfig) -> List[Dict]:
    """E4: measured vs predicted completion time of the two-way epidemic."""
    opts = read_params(params, ns=(64, 128, 256, 512), trials=200)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    rngs = spawn_rngs(run.seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = [simulate_epidemic_interactions(n, rng) for _ in range(trials)]
        stats = TrialStatistics.from_values(f"epidemic (n={n})", n, samples)
        predicted = expected_epidemic_interactions(n)
        threshold = 3 * n * math.log(n)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean interactions": stats.mean,
                "predicted (n-1)H_{n-1}": predicted,
                "mean / predicted": stats.mean / predicted,
                "P[T_n > 3 n ln n] (measured)": stats.fraction_exceeding(threshold),
                "P bound (Cor. 2.8)": 1.0 / (n * n),
            }
        )
    return rows


@experiment_runner("roll_call")
def run_roll_call(params: Mapping, run: RunConfig) -> List[Dict]:
    """E5: measured vs predicted completion time of the roll-call process."""
    opts = read_params(params, ns=(32, 64, 128, 256), trials=50)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    rngs = spawn_rngs(run.seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = [simulate_roll_call_interactions(n, rng) for _ in range(trials)]
        stats = TrialStatistics.from_values(f"roll-call (n={n})", n, samples)
        predicted = expected_roll_call_interactions(n)
        epidemic_predicted = expected_epidemic_interactions(n)
        threshold = 3 * n * math.log(n)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean interactions": stats.mean,
                "predicted 1.5 n ln n": predicted,
                "mean / epidemic mean": stats.mean / epidemic_predicted,
                "P[R_n > 3 n ln n] (measured)": stats.fraction_exceeding(threshold),
                "P bound (Lem. 2.9)": 1.0 / n,
            }
        )
    return rows


@experiment_runner("bounded_epidemic")
def run_bounded_epidemic(params: Mapping, run: RunConfig) -> List[Dict]:
    """E6: hitting times ``tau_k`` of the bounded epidemic vs the paper's bounds."""
    opts = read_params(
        params, ns=(64, 256, 1024), ks=(1, 2, 3), trials=50, include_log_level=True
    )
    ns, ks, trials = opts["ns"], opts["ks"], opts["trials"]
    include_log_level = opts["include_log_level"]
    rows: List[Dict] = []
    rngs = spawn_rngs(run.seed, len(ns))
    for n, rng in zip(ns, rngs):
        levels = list(ks)
        if include_log_level:
            levels.append(int(3 * math.ceil(math.log2(n))))
        max_level = max(levels)
        per_level_samples: Dict[int, List[float]] = {k: [] for k in levels}
        for _ in range(trials):
            hitting = simulate_level_hitting_times(n, max_level=max_level, rng=rng)
            for k in levels:
                per_level_samples[k].append(hitting[k] / n)  # parallel time
        for k in levels:
            stats = TrialStatistics.from_values(
                f"tau_{k} (n={n})", n, per_level_samples[k]
            )
            bound = expected_bounded_epidemic_time(n, k)
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "trials": trials,
                    "mean tau_k (parallel)": stats.mean,
                    "paper bound": bound,
                    "mean / bound": stats.mean / bound,
                }
            )
    return rows


@experiment_runner("all_agents_interact")
def run_all_agents_interact(params: Mapping, run: RunConfig) -> List[Dict]:
    """Auxiliary for E5: interactions until every agent has interacted (~0.5 n ln n)."""
    opts = read_params(params, ns=(64, 256, 1024), trials=100)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    rngs = spawn_rngs(run.seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = [simulate_all_agents_interact(n, rng) for _ in range(trials)]
        stats = TrialStatistics.from_values(f"all-interact (n={n})", n, samples)
        predicted = expected_all_interact_interactions(n)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean interactions": stats.mean,
                "predicted 0.5 n ln n": predicted,
                "mean / predicted": stats.mean / predicted,
            }
        )
    return rows


__all__ = [
    "run_all_agents_interact",
    "run_bounded_epidemic",
    "run_epidemic",
    "run_roll_call",
]
