"""Typed, persistable experiment results.

:class:`ExperimentResult` is the uniform return type of every registered
experiment runner: schema'd rows (an explicit, ordered column list) plus
provenance metadata (identifier, scale, seed, engine, jobs, wall time,
package version).  It round-trips through JSON and JSONL *byte-identically*
-- ``ExperimentResult.from_json(r.to_json()).to_json() == r.to_json()`` --
so saved artifacts are durable records: ``repro report`` re-renders the
exact table from the artifact alone, without re-running any simulation.

Formats
-------
* ``.json`` -- one indented, key-sorted JSON document (human-diffable).
* ``.jsonl`` -- a compact header line followed by one line per row
  (stream-appendable; the shape sweep runners will grow into).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro import __version__

#: Format tags embedded in artifacts so loaders can reject foreign files.
JSON_FORMAT = "repro.experiment-result/v1"
JSONL_FORMAT = "repro.experiment-result/v1-jsonl"


def _jsonable(value: Any) -> Any:
    """Coerce a row value to a plain JSON type.

    NumPy scalars leak out of simulations (``rng.integers`` results, array
    reductions); tuples come from parameter echoes.  Everything is coerced
    once, at construction, so the in-memory result renders exactly like a
    reloaded artifact.  Non-finite floats become ``None``: ``json.dumps``
    would otherwise emit bare ``NaN``/``Infinity`` tokens, which Python
    re-reads but strict JSON parsers (jq, JavaScript) reject.
    """
    if isinstance(value, bool):  # before int: bool is an int subclass
        return value
    if isinstance(value, (str, type(None))):
        return value
    if isinstance(value, float):  # covers numpy floating via subclass
        return float(value) if math.isfinite(value) else None
    if isinstance(value, int):
        return int(value)
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item"):  # numpy scalar (int64, bool_, float32, ...)
        return _jsonable(value.item())
    raise TypeError(
        f"experiment row value {value!r} ({type(value).__name__}) is not JSON-able"
    )


@dataclass
class ExperimentResult:
    """One experiment's measured rows plus the provenance to reproduce them.

    ``columns`` defaults to the ordered union of row keys and is persisted
    explicitly, so rendering order survives serialization even though JSON
    artifacts sort object keys for byte-stable output.
    """

    identifier: str
    rows: List[Dict[str, Any]]
    columns: List[str] = field(default_factory=list)
    title: str = ""
    paper_reference: str = ""
    scale: str = ""
    seed: Optional[int] = None
    engine: str = "loop"
    stop: str = "stabilized"
    jobs: int = 1
    trial_batch: int = 1
    faults: Optional[Dict[str, Any]] = None
    scheduler: Optional[Dict[str, Any]] = None
    byzantine: Optional[Dict[str, Any]] = None
    wall_time: float = 0.0
    version: str = __version__

    def __post_init__(self) -> None:
        self.rows = [
            {str(key): _jsonable(value) for key, value in row.items()}
            for row in self.rows
        ]
        if not self.columns:
            seen: List[str] = []
            for row in self.rows:
                for key in row:
                    if key not in seen:
                        seen.append(key)
            self.columns = seen
        else:
            self.columns = [str(column) for column in self.columns]

    # -- dict / JSON forms ----------------------------------------------------------

    def provenance(self) -> Dict[str, Any]:
        """The metadata block persisted alongside the rows.

        ``engine``/``jobs``/``stop`` record the *requested* ``RunConfig`` --
        runners that have no engine choice (closed-form process simulators)
        honour only the seed, and say so in their module docstrings.
        ``faults``/``scheduler`` hold the serialized
        :class:`~repro.adversary.plan.FaultPlan` /
        :class:`~repro.adversary.schedulers.SchedulerSpec` of the run's
        config (``None`` when the run was not adversarial); stress runners
        that build per-row plans additionally echo them in their rows.
        ``byzantine`` likewise holds the serialized
        :class:`~repro.adversary.byzantine.ByzantineSpec` of a persistent
        adversary run.
        """
        return {
            "identifier": self.identifier,
            "title": self.title,
            "paper_reference": self.paper_reference,
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "stop": self.stop,
            "jobs": self.jobs,
            "trial_batch": self.trial_batch,
            "faults": self.faults,
            "scheduler": self.scheduler,
            "byzantine": self.byzantine,
            "wall_time": self.wall_time,
            "version": self.version,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dictionary form (see :data:`JSON_FORMAT`)."""
        return {
            "format": JSON_FORMAT,
            "provenance": self.provenance(),
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        tag = payload.get("format")
        if tag not in (JSON_FORMAT, JSONL_FORMAT):
            raise ValueError(f"not an experiment-result payload (format={tag!r})")
        provenance = payload.get("provenance", {})
        return cls(
            identifier=provenance.get("identifier", ""),
            rows=[dict(row) for row in payload.get("rows", [])],
            columns=list(payload.get("columns", [])),
            title=provenance.get("title", ""),
            paper_reference=provenance.get("paper_reference", ""),
            scale=provenance.get("scale", ""),
            seed=provenance.get("seed"),
            engine=provenance.get("engine", "loop"),
            stop=provenance.get("stop", "stabilized"),
            jobs=provenance.get("jobs", 1),
            trial_batch=provenance.get("trial_batch", 1),
            faults=provenance.get("faults"),
            scheduler=provenance.get("scheduler"),
            byzantine=provenance.get("byzantine"),
            wall_time=provenance.get("wall_time", 0.0),
            version=provenance.get("version", __version__),
        )

    def to_json(self) -> str:
        """Indented, key-sorted JSON document (byte-stable round trip)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, allow_nan=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def to_jsonl(self) -> str:
        """Header line plus one compact JSON line per row."""
        header = {
            "format": JSONL_FORMAT,
            "provenance": self.provenance(),
            "columns": list(self.columns),
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"), allow_nan=False)]
        lines.extend(
            json.dumps(row, sort_keys=True, separators=(",", ":"), allow_nan=False)
            for row in self.rows
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_jsonl`."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty JSONL artifact")
        header = json.loads(lines[0])
        header["rows"] = [json.loads(line) for line in lines[1:]]
        return cls.from_dict(header)

    # -- files ----------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write the artifact; a ``.jsonl`` suffix selects the JSONL format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = self.to_jsonl() if path.suffix == ".jsonl" else self.to_json()
        path.write_text(text, encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentResult":
        """Read an artifact written by :meth:`save` (either format)."""
        text = Path(path).read_text(encoding="utf-8")
        try:
            return cls.from_json(text)
        except json.JSONDecodeError:
            return cls.from_jsonl(text)


def load_artifacts(path: Union[str, Path]) -> List[ExperimentResult]:
    """Load one artifact file, or every ``*.json``/``*.jsonl`` in a directory."""
    path = Path(path)
    if path.is_dir():
        files: Iterable[Path] = sorted(
            entry
            for entry in path.iterdir()
            if entry.suffix in (".json", ".jsonl") and entry.is_file()
        )
        results = [ExperimentResult.load(entry) for entry in files]
        if not results:
            raise FileNotFoundError(f"no .json/.jsonl artifacts in {path}")
        return results
    return [ExperimentResult.load(path)]


__all__ = ["ExperimentResult", "JSONL_FORMAT", "JSON_FORMAT", "load_artifacts"]
