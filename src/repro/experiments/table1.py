"""Experiment E1: reproduce Table 1.

For each protocol (the Cai-Izumi-Wada baseline, ``Optimal-Silent-SSR``, and
``Sublinear-Time-SSR`` in its constant-``H`` and ``H = Theta(log n)``
regimes) the harness measures expected and tail stabilization times from
adversarial starting configurations, together with the state usage, and
prints them next to the asymptotic entries of the paper's Table 1.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional

from repro.adversary.initial_configs import optimal_silent_adversarial_configuration
from repro.analysis.state_space import count_observed_states
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.silent_n_state import SilentNStateSSR, simulate_silent_n_state
from repro.core.sublinear import SublinearTimeSSR
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.optimal_silent_experiments import PRACTICAL_CONSTANTS
from repro.experiments.sublinear_experiments import PRACTICAL_RMAX_MULTIPLIER


def _measure_silent_n_state(n: int, trials: int, rng) -> Dict:
    times = []
    for trial_rng in spawn_rngs(rng, trials):
        initial_ranks = trial_rng.integers(0, n, size=n).tolist()
        times.append(simulate_silent_n_state(n, initial_ranks=initial_ranks, rng=trial_rng) / n)
    stats = TrialStatistics.from_values("silent-n-state", n, times)
    return {
        "protocol": "Silent-n-state-SSR [21]",
        "n": n,
        "trials": trials,
        "mean time": stats.mean,
        "p90 time": stats.quantile(0.9),
        "states": SilentNStateSSR(n).theoretical_state_count(),
        "silent": True,
        "paper expected time": "Theta(n^2)",
        "paper states": "n",
    }


def _measure_optimal_silent(n: int, trials: int, rng, paper_constants: bool) -> Dict:
    times = []
    observed_states = 0
    for trial_rng in spawn_rngs(rng, trials):
        protocol = (
            OptimalSilentSSR(n) if paper_constants else OptimalSilentSSR(n, **PRACTICAL_CONSTANTS)
        )
        configuration = optimal_silent_adversarial_configuration(protocol, trial_rng)
        simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
        result = simulation.run_until_stabilized(check_interval=n)
        times.append(result.parallel_time)
        observed_states = max(
            observed_states, count_observed_states(protocol, interactions=5 * n, rng=trial_rng)
        )
    stats = TrialStatistics.from_values("optimal-silent", n, times)
    protocol = OptimalSilentSSR(n) if paper_constants else OptimalSilentSSR(n, **PRACTICAL_CONSTANTS)
    return {
        "protocol": "Optimal-Silent-SSR (Sec. 4)",
        "n": n,
        "trials": trials,
        "mean time": stats.mean,
        "p90 time": stats.quantile(0.9),
        "states": protocol.theoretical_state_count(),
        "silent": True,
        "paper expected time": "Theta(n)",
        "paper states": "O(n)",
    }


def _measure_sublinear(n: int, trials: int, rng, depth: Optional[int]) -> Dict:
    times = []
    for trial_rng in spawn_rngs(rng, trials):
        protocol = SublinearTimeSSR(
            n, depth=depth, rmax_multiplier=PRACTICAL_RMAX_MULTIPLIER
        )
        configuration = protocol.planted_collision_configuration(trial_rng)
        simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
        result = simulation.run_until_stabilized(
            max_interactions=100 * n * n, check_interval=n
        )
        times.append(result.parallel_time)
    stats = TrialStatistics.from_values("sublinear", n, times)
    protocol = SublinearTimeSSR(n, depth=depth, rmax_multiplier=PRACTICAL_RMAX_MULTIPLIER)
    effective_depth = protocol.depth
    if effective_depth >= math.log2(n):
        label = "Sublinear-Time-SSR (H = Theta(log n))"
        paper_time = "Theta(log n)"
        paper_states = "exp(O(n^{log n} log n))"
    else:
        label = f"Sublinear-Time-SSR (H = {effective_depth})"
        paper_time = "Theta(H n^{1/(H+1)})"
        paper_states = "Theta(n^{Theta(n^H)} log n)"
    return {
        "protocol": label,
        "n": n,
        "trials": trials,
        "mean time": stats.mean,
        "p90 time": stats.quantile(0.9),
        "states": f"~2^{protocol.theoretical_state_bits():.0f}",
        "silent": False,
        "paper expected time": paper_time,
        "paper states": paper_states,
    }


@experiment_runner("table1")
def run_table1(params: Mapping, run: RunConfig) -> List[Dict]:
    """Measure every Table 1 row for each population size in ``ns``."""
    opts = read_params(
        params, ns=(16, 32), trials=5, paper_constants=False, sublinear_constant_depth=1
    )
    ns, trials = opts["ns"], opts["trials"]
    paper_constants = opts["paper_constants"]
    sublinear_constant_depth = opts["sublinear_constant_depth"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        protocol_rngs = spawn_rngs(n_rng, 4)
        rows.append(_measure_silent_n_state(n, trials, protocol_rngs[0]))
        rows.append(_measure_optimal_silent(n, trials, protocol_rngs[1], paper_constants))
        rows.append(_measure_sublinear(n, trials, protocol_rngs[2], sublinear_constant_depth))
        rows.append(_measure_sublinear(n, trials, protocol_rngs[3], None))
    return rows


__all__ = ["run_table1"]
