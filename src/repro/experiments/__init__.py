"""Experiment harness reproducing the paper's table, figures, and claims.

Each experiment module exposes one or more ``run_*`` runners following the
uniform contract ``runner(params, run: RunConfig) -> ExperimentResult``
(see :mod:`repro.experiments.api`): ``params`` holds experiment-specific
knobs, the :class:`~repro.engine.run_config.RunConfig` holds the execution
options shared by every experiment (seed, engine, jobs), and the returned
:class:`~repro.experiments.result.ExperimentResult` carries schema'd rows
plus provenance and round-trips through JSON/JSONL byte-identically.  The
registry maps experiment identifiers (the ids used in ``DESIGN.md`` and
``EXPERIMENTS.md``) to those runners so the CLI and the benchmarks can
invoke them uniformly:

``python -m repro run table1 --scale quick --seed 1 --output artifacts/``
``python -m repro report artifacts/``
"""

from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner
from repro.experiments.harness import (
    ExperimentSpec,
    measure_parallel_times,
    run_trials,
    sweep_parallel_time,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import format_table, rows_to_markdown
from repro.experiments.result import ExperimentResult, load_artifacts

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "ExperimentSpec",
    "RunConfig",
    "experiment_runner",
    "format_table",
    "get_experiment",
    "list_experiments",
    "load_artifacts",
    "measure_parallel_times",
    "rows_to_markdown",
    "run_experiment",
    "run_trials",
    "sweep_parallel_time",
]
