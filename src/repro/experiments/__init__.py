"""Experiment harness reproducing the paper's table, figures, and claims.

Each experiment module exposes one or more ``run_*`` functions that return a
list of row dictionaries (one per measured setting) ready to be rendered with
:func:`repro.experiments.report.format_table`.  The registry maps experiment
identifiers (the ids used in ``DESIGN.md`` and ``EXPERIMENTS.md``) to those
functions so the CLI and the benchmarks can invoke them uniformly:

``python -m repro run table1 --scale quick``
"""

from repro.experiments.harness import (
    ExperimentSpec,
    measure_parallel_times,
    run_trials,
    sweep_parallel_time,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.report import format_table, rows_to_markdown

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "format_table",
    "get_experiment",
    "list_experiments",
    "measure_parallel_times",
    "rows_to_markdown",
    "run_experiment",
    "run_trials",
    "sweep_parallel_time",
]
