"""Shared experiment machinery: repeated trials and population-size sweeps.

One :class:`~repro.engine.run_config.RunConfig` describes *how* to execute --
engine, stop condition, seed, caps, worker count -- and flows unchanged from
the CLI through :class:`ExperimentSpec` down to :func:`run_trials`, which
builds each trial's engine via
:func:`~repro.engine.run_config.make_simulation` and executes the plan with
the polymorphic ``simulation.run(config)`` entry point.

Multi-trial measurements embarrassingly parallelize: every trial derives its
random stream from its own ``numpy.random.SeedSequence`` child, so trials are
independent no matter which process executes them.  :func:`run_trials`
exploits this with a ``concurrent.futures.ProcessPoolExecutor`` when
``config.jobs > 1``: results are bit-identical across any ``jobs`` value (the
stream of trial ``i`` depends only on ``(seed, i)``), which
``tests/experiments/test_parallel_harness.py`` enforces.  Worker processes
are forked, so closures (the lambdas experiments pass as factories) and a
pre-compiled transition table are inherited rather than pickled; on platforms
without ``fork`` the harness silently runs sequentially.

The pre-redesign keyword style (``stop=``/``engine=``/``jobs=``/``seed=``
threaded as parallel keywords) keeps working for one release through
deprecation shims; see ``docs/ARCHITECTURE.md`` for the migration note.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.compiled import CompiledProtocol, ProtocolCompiler
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.results import SimulationResult, TrialStatistics
from repro.engine.rng import RngLike, batch_seed_sequence, spawn_seed_sequences
from repro.engine.run_config import ENGINES, STOPS, RunConfig, make_simulation
from repro.engine.trial_batch import (
    CountsTrialBatchSimulation,
    TrialBatchSimulation,
)
from repro.experiments.api import (
    DEFAULT_EXPERIMENT_SEED,
    RUN_OPTION_KEYS,
    warn_deprecated_once,
)
from repro.experiments.result import ExperimentResult
from repro.telemetry import metrics as _metrics
from repro.telemetry import tracing as _tracing

ProtocolFactory = Callable[[int], PopulationProtocol]
ConfigurationFactory = Callable[[PopulationProtocol, np.random.Generator], Configuration]

#: Counts-engine seed factory: ``(protocol, compiled, rng) -> state-count
#: vector`` -- the O(S) way to seed huge populations without building ``n``
#: state objects (forwarded to ``make_simulation(counts=...)``).
CountsFactory = Callable[
    [PopulationProtocol, CompiledProtocol, np.random.Generator], np.ndarray
]

#: Per-trial observer: ``on_trial_done(index, result)``, called in trial
#: order on the coordinating process (also when ``jobs > 1``).
TrialObserver = Callable[[int, SimulationResult], None]

#: Trial context inherited by forked pool workers (see :func:`run_trials`).
#: Holding it in a module global instead of pickling it lets experiments keep
#: passing plain lambdas as factories.
_POOL_STATE: Optional[Dict] = None

#: The active trial memo (installed via :func:`trial_memo`); ``None`` runs
#: every trial live.  A memo makes :func:`run_trials` durable: finished
#: trials replay from it, the in-flight one checkpoints through it.
_TRIAL_MEMO = None


@contextmanager
def trial_memo(memo):
    """Install a durable trial memo for every :func:`run_trials` call inside.

    ``memo`` implements the duck protocol of
    :class:`repro.serve.worker.TrialMemo`: ``begin_call(trials, config)``
    names each harness call positionally (experiments are deterministic
    call sequences, and inner configs may carry unserializable seeds, so
    *position* is the stable identity); ``lookup``/``record`` replay and
    persist per-trial :class:`~repro.engine.results.SimulationResult`
    records; ``inflight_checkpoint``/``checkpoint_hook`` resume and persist
    the one trial that was interrupted mid-run.  Because trial streams are
    bit-identical for every ``jobs``/``trial_batch`` layout, a memo written
    under one layout replays correctly under any other.
    """
    global _TRIAL_MEMO
    previous = _TRIAL_MEMO
    _TRIAL_MEMO = memo
    try:
        yield memo
    finally:
        _TRIAL_MEMO = previous


def _coerce_run_config(run, legacy: Dict, caller: str) -> RunConfig:
    """Resolve the new ``run=RunConfig`` form or the deprecated keyword form.

    ``run`` is either a :class:`RunConfig` (new style), ``None``, or -- for
    backward compatibility -- a seed passed in the old third positional slot.
    """
    if isinstance(run, RunConfig):
        if legacy:
            raise TypeError(
                f"{caller}: pass execution options on the RunConfig, "
                f"not as keywords {sorted(legacy)}"
            )
        return run
    unknown = set(legacy) - set(RUN_OPTION_KEYS)
    if unknown:
        raise TypeError(f"{caller}() got unexpected keyword arguments {sorted(unknown)}")
    if run is not None:
        if "seed" in legacy:
            raise TypeError(f"{caller}: seed passed both positionally and as a keyword")
        legacy = dict(legacy, seed=run)
    if legacy:
        warn_deprecated_once(
            f"harness.{caller}",
            f"{caller}({', '.join(sorted(legacy))}=...) keywords are deprecated; "
            f"pass run=RunConfig(...) instead (removed next release)",
            stacklevel=4,
        )
    return RunConfig(
        seed=legacy.get("seed"),
        stop=legacy.get("stop", "stabilized"),
        engine=legacy.get("engine", "loop"),
        jobs=legacy.get("jobs", 1),
        max_interactions=legacy.get("max_interactions"),
        check_interval=legacy.get("check_interval"),
    )


@dataclass
class ExperimentSpec:
    """Declarative description of one experiment (used by the registry and CLI).

    ``runner`` follows the uniform contract ``runner(params, run: RunConfig)
    -> ExperimentResult`` (see :mod:`repro.experiments.api`); ``quick_params``
    and ``full_params`` hold only experiment-specific parameters -- execution
    options live on the :class:`RunConfig` that :meth:`run` builds, so
    ``--seed/--engine/--jobs`` apply uniformly to every experiment.
    """

    identifier: str
    title: str
    paper_reference: str
    runner: Callable[[Mapping, RunConfig], ExperimentResult]
    description: str = ""
    quick_params: Dict = field(default_factory=dict)
    full_params: Dict = field(default_factory=dict)

    @property
    def quick_kwargs(self) -> Dict:
        """Deprecated alias of :attr:`quick_params`."""
        warn_deprecated_once(
            "ExperimentSpec.quick_kwargs",
            "ExperimentSpec.quick_kwargs is deprecated; use quick_params",
        )
        return self.quick_params

    @property
    def full_kwargs(self) -> Dict:
        """Deprecated alias of :attr:`full_params`."""
        warn_deprecated_once(
            "ExperimentSpec.full_kwargs",
            "ExperimentSpec.full_kwargs is deprecated; use full_params",
        )
        return self.full_params

    def run(
        self,
        scale: str = "quick",
        run: Optional[RunConfig] = None,
        *,
        seed: Optional[int] = None,
        engine: Optional[str] = None,
        jobs: Optional[int] = None,
        trial_batch: Optional[int] = None,
        **overrides,
    ) -> ExperimentResult:
        """Run the experiment at the requested scale and return the result.

        Either pass a complete ``run=RunConfig(...)`` or let this method
        build one from ``seed``/``engine``/``jobs``/``trial_batch``
        (defaults: seed 0, loop engine, one worker, per-trial execution).
        ``overrides`` update the scale's experiment parameters.
        """
        if scale not in ("quick", "full"):
            raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
        params = dict(self.quick_params if scale == "quick" else self.full_params)
        params.update(overrides)
        if run is not None:
            if seed is not None or engine is not None or jobs is not None or trial_batch is not None:
                raise TypeError(
                    "pass seed/engine/jobs/trial_batch on the RunConfig, not alongside it"
                )
            config = run
        else:
            config = RunConfig(
                seed=DEFAULT_EXPERIMENT_SEED if seed is None else seed,
                engine=engine if engine is not None else "loop",
                jobs=jobs if jobs is not None else 1,
                trial_batch=trial_batch if trial_batch is not None else 1,
            )
        started = time.perf_counter()
        outcome = self.runner(params, config)
        if not isinstance(outcome, ExperimentResult):
            # Undecorated runner returning bare rows: wrap it here so every
            # spec yields the typed record.
            outcome = ExperimentResult(
                identifier=self.identifier,
                rows=list(outcome),
                seed=config.seed if isinstance(config.seed, int) else None,
                engine=config.engine,
                stop=config.stop,
                jobs=config.jobs,
                trial_batch=config.trial_batch,
                faults=config.faults.to_dict() if config.faults is not None else None,
                scheduler=(
                    config.scheduler.to_dict() if config.scheduler is not None else None
                ),
                byzantine=(
                    config.byzantine.to_dict() if config.byzantine is not None else None
                ),
                wall_time=time.perf_counter() - started,
            )
        outcome.identifier = outcome.identifier or self.identifier
        outcome.title = self.title
        outcome.paper_reference = self.paper_reference
        outcome.scale = scale
        return outcome


def _execute_trial(
    protocol_factory: Callable[[], PopulationProtocol],
    configuration_factory: Optional[ConfigurationFactory],
    config: RunConfig,
    compiled: Optional[CompiledProtocol],
    seed_seq: np.random.SeedSequence,
    counts_factory: Optional[CountsFactory] = None,
    memo_slot=None,
) -> SimulationResult:
    """Run one trial from its own seed sequence (process-agnostic).

    ``memo_slot`` is ``(memo, call_key, index)`` when a :func:`trial_memo`
    is active: the trial resumes from its persisted in-flight checkpoint
    (if one matches this config) and keeps checkpointing at every
    ``check_interval`` boundary.  Seeding happens first either way -- the
    generator consumption up to ``run()`` must match the uninterrupted
    path exactly; a restore then *overwrites* the generator state.
    """
    rng = np.random.default_rng(seed_seq)
    protocol = protocol_factory()
    configuration = (
        configuration_factory(protocol, rng) if configuration_factory is not None else None
    )
    counts = (
        counts_factory(protocol, compiled, rng) if counts_factory is not None else None
    )
    simulation = make_simulation(
        protocol,
        config,
        configuration=configuration,
        rng=rng,
        compiled=compiled,
        counts=counts,
    )
    if memo_slot is not None:
        memo, call_key, index = memo_slot
        if hasattr(simulation, "restore_checkpoint_state"):
            checkpoint = memo.inflight_checkpoint(call_key, index, config)
            if checkpoint is not None:
                try:
                    simulation.restore_checkpoint_state(checkpoint.state)
                except (ValueError, RuntimeError, KeyError):
                    pass  # stale or corrupt checkpoint: run from the start
        if hasattr(simulation, "checkpoint_state"):
            hook = memo.checkpoint_hook(call_key, index, config)
            if hook is not None:
                simulation.on_check = hook
    return simulation.run(config)


def _pool_trial(index: int) -> SimulationResult:
    """Pool worker entry point: run trial ``index`` of the inherited context."""
    state = _POOL_STATE
    if state is None:
        raise RuntimeError(
            "worker has no inherited trial context; the parallel harness "
            "requires fork-started workers"
        )
    memo = state["memo"]
    return _execute_trial(
        protocol_factory=state["protocol_factory"],
        configuration_factory=state["configuration_factory"],
        config=state["config"],
        compiled=state["compiled"],
        seed_seq=state["seeds"][index],
        counts_factory=state["counts_factory"],
        memo_slot=(memo, state["call_key"], index) if memo is not None else None,
    )


def _unbatchable_reason(config: RunConfig) -> Optional[str]:
    """Why the trial-batched engines cannot honour this config (None if they can).

    Fault plans with events, non-uniform schedulers, and byzantine overlays
    are per-trial constructs; the harness falls back to per-trial execution
    for them (the batched path is an optimization, not a semantic switch) and
    :func:`run_trials` warns once per run so an ignored ``--trial-batch`` is
    never silent.
    """
    if config.faults is not None and config.faults.events:
        return "fault campaigns run per trial"
    if config.scheduler is not None and getattr(config.scheduler, "kind", None) != "uniform":
        return "adversarial schedulers run per trial"
    if config.byzantine is not None:
        return "byzantine overlays run per trial"
    if config.engine not in ("compiled", "counts"):
        return f"engine {config.engine!r} has no trial-batched form"
    return None


def _execute_trial_batch(
    protocol_factory: Callable[[], PopulationProtocol],
    configuration_factory: Optional[ConfigurationFactory],
    config: RunConfig,
    compiled: CompiledProtocol,
    seeds: Sequence[np.random.SeedSequence],
    counts_factory: Optional[CountsFactory] = None,
) -> List[SimulationResult]:
    """Run one batch of trials through a trial-batched engine.

    Seeding consumes each trial's generator exactly as the per-trial path
    does (fresh protocol, then configuration/counts factory), so for the
    compiled engine the whole per-trial stream -- seeding plus execution --
    is bit-identical for every batch composition.
    """
    rngs = [np.random.default_rng(seed_seq) for seed_seq in seeds]
    shared = protocol_factory()
    if config.engine == "compiled":
        if counts_factory is not None:
            rows = [counts_factory(protocol_factory(), compiled, rng) for rng in rngs]
            indices = np.stack(
                [
                    np.repeat(
                        np.arange(compiled.num_states, dtype=np.int32),
                        np.asarray(row, dtype=np.int64),
                    )
                    for row in rows
                ]
            )
            simulation = TrialBatchSimulation(
                shared, rngs, indices=indices, compiled=compiled
            )
        else:
            configurations = []
            for rng in rngs:
                protocol = protocol_factory()
                configurations.append(
                    configuration_factory(protocol, rng)
                    if configuration_factory is not None
                    else protocol.initial_configuration(rng)
                )
            simulation = TrialBatchSimulation(
                shared, rngs, configurations=configurations, compiled=compiled
            )
        return simulation.run(config)
    # counts engine: per-trial generators seed the start rows, one derived
    # batch-level generator (independent of all of them) drives the sampling.
    rows = []
    for rng in rngs:
        protocol = protocol_factory()
        if counts_factory is not None:
            rows.append(np.asarray(counts_factory(protocol, compiled, rng), dtype=np.int64))
        else:
            configuration = (
                configuration_factory(protocol, rng)
                if configuration_factory is not None
                else protocol.initial_configuration(rng)
            )
            rows.append(
                np.bincount(
                    compiled.encode_configuration(configuration),
                    minlength=compiled.num_states,
                )
            )
    batch_rng = np.random.default_rng(batch_seed_sequence(seeds[0]))
    simulation = CountsTrialBatchSimulation(
        shared, np.stack(rows), rng=batch_rng, compiled=compiled
    )
    return simulation.run(config)


def _pool_trial_batch(start: int) -> List[SimulationResult]:
    """Pool worker entry point: run the batch starting at trial ``start``."""
    state = _POOL_STATE
    if state is None:
        raise RuntimeError(
            "worker has no inherited trial context; the parallel harness "
            "requires fork-started workers"
        )
    config: RunConfig = state["config"]
    seeds = state["seeds"][start : start + config.trial_batch]
    return _execute_trial_batch(
        protocol_factory=state["protocol_factory"],
        configuration_factory=state["configuration_factory"],
        config=config,
        compiled=state["compiled"],
        seeds=seeds,
        counts_factory=state["counts_factory"],
    )


def run_trials(
    protocol_factory: Callable[[], PopulationProtocol],
    trials: int,
    run: Optional[RunConfig] = None,
    *,
    configuration_factory: Optional[ConfigurationFactory] = None,
    counts_factory: Optional[CountsFactory] = None,
    on_trial_done: Optional[TrialObserver] = None,
    **legacy,
) -> List[SimulationResult]:
    """Run ``trials`` independent simulations, optionally across processes.

    Returns the per-trial :class:`SimulationResult` records in trial order.
    Trial ``i`` always consumes the generator spawned from the ``i``-th child
    ``SeedSequence`` of ``run.seed``, so the results are **bit-identical for
    every value of ``run.jobs``** -- parallelism redistributes work, never
    randomness.

    ``on_trial_done(index, result)`` is invoked in trial order on the
    coordinating process as results become available -- including the
    ``jobs > 1`` path, where the pool's ordered result stream drives the
    callbacks (so observers need no locking).

    ``run.jobs > 1`` executes trials on a ``ProcessPoolExecutor`` with forked
    workers; factories may be arbitrary closures (they are inherited through
    the fork, not pickled).  With the table-driven engines
    (``engine="compiled"`` / ``engine="counts"``) the protocol is compiled
    once up front and the table shared -- by reference across sequential
    trials, via fork copy-on-write across workers.  On platforms without the
    ``fork`` start method the harness degrades to sequential execution (same
    results, no speedup).

    ``counts_factory`` seeds table-engine trials with a state-count vector
    (O(S) instead of O(n)); it requires a table engine (``"counts"`` or
    ``"compiled"``, where the vector expands to a sorted index array --
    exchangeable under the uniform scheduler) and is mutually exclusive with
    ``configuration_factory``.

    ``run.trial_batch > 1`` slices the trial list into batches of that size
    and advances each batch as one trial-batched engine instance
    (:mod:`repro.engine.trial_batch`); with ``jobs > 1`` each worker process
    runs whole batches.  Compiled-engine per-trial results are bit-identical
    for every ``trial_batch`` x ``jobs`` composition; fault plans with
    events and non-uniform schedulers fall back to per-trial execution.
    """
    config = _coerce_run_config(run, legacy, caller="run_trials")
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if counts_factory is not None:
        if config.engine not in ("counts", "compiled"):
            raise ValueError(
                f"counts_factory requires a table engine, got {config.engine!r}"
            )
        if configuration_factory is not None:
            raise ValueError(
                "pass either configuration_factory or counts_factory, not both"
            )
    seeds = spawn_seed_sequences(config.seed, trials)
    compiled = (
        ProtocolCompiler().compile(protocol_factory())
        if config.engine in ("compiled", "counts")
        else None
    )
    fallback_reason = _unbatchable_reason(config)
    batched = config.trial_batch > 1 and fallback_reason is None
    if config.trial_batch > 1 and fallback_reason is not None:
        warnings.warn(
            f"--trial-batch ignored: {fallback_reason}; "
            "running trials one at a time",
            RuntimeWarning,
            stacklevel=2,
        )
    units = (
        list(range(0, trials, config.trial_batch)) if batched else list(range(trials))
    )

    # The memo, when installed, names this call positionally and replays any
    # trials it already holds; replay hits never reach the pool.
    memo = _TRIAL_MEMO
    call_key = memo.begin_call(trials, config) if memo is not None else None
    tracer = _tracing.current_tracer()
    call_started = time.perf_counter()

    def unit_replay(start: int) -> Optional[List[SimulationResult]]:
        """The full unit (batch or single trial) from the memo, or ``None``."""
        if memo is None:
            return None
        size = len(seeds[start : start + config.trial_batch]) if batched else 1
        cached = [memo.lookup(call_key, start + offset) for offset in range(size)]
        return cached if all(item is not None for item in cached) else None

    def unit_record(start: int, batch: List[SimulationResult]) -> None:
        if memo is not None:
            for offset, result in enumerate(batch):
                memo.record(call_key, start + offset, result)

    replayed = {start: unit_replay(start) for start in units} if memo is not None else {}
    pending = [start for start in units if replayed.get(start) is None]

    context = None
    if config.jobs > 1 and len(pending) > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None

    def emit(results: List[SimulationResult], start: int, batch: List[SimulationResult]):
        for offset, result in enumerate(batch):
            results.append(result)
            _metrics.record_trial(result.engine, result.interactions)
            if tracer is not None:
                tracer.emit(
                    "trial",
                    call=call_key,
                    trial=start + offset,
                    engine=result.engine,
                    n=result.n,
                    interactions=result.interactions,
                    stopped=result.stopped,
                    reason=result.reason,
                )
            if on_trial_done is not None:
                on_trial_done(start + offset, result)

    def finish(results: List[SimulationResult]) -> List[SimulationResult]:
        if tracer is not None:
            tracer.emit(
                "harness_call",
                call=call_key,
                trials=trials,
                engine=config.engine,
                jobs=config.jobs,
                dur=round(time.perf_counter() - call_started, 6),
            )
        return results

    if context is None:
        results: List[SimulationResult] = []
        for start in units:
            batch = replayed.get(start)
            if batch is None:
                if batched:
                    batch = _execute_trial_batch(
                        protocol_factory=protocol_factory,
                        configuration_factory=configuration_factory,
                        config=config,
                        compiled=compiled,
                        seeds=seeds[start : start + config.trial_batch],
                        counts_factory=counts_factory,
                    )
                else:
                    batch = [
                        _execute_trial(
                            protocol_factory=protocol_factory,
                            configuration_factory=configuration_factory,
                            config=config,
                            compiled=compiled,
                            seed_seq=seeds[start],
                            counts_factory=counts_factory,
                            memo_slot=(
                                (memo, call_key, start) if memo is not None else None
                            ),
                        )
                    ]
                unit_record(start, batch)
            emit(results, start, batch)
        return finish(results)

    global _POOL_STATE
    _POOL_STATE = {
        "protocol_factory": protocol_factory,
        "configuration_factory": configuration_factory,
        "config": config,
        "compiled": compiled,
        "seeds": seeds,
        "counts_factory": counts_factory,
        "memo": memo,
        "call_key": call_key,
    }
    try:
        workers = min(config.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as executor:
            results = []
            if batched:
                # One batch per map item: batches are the work unit, so the
                # pool schedules them whole (batch-per-worker composition).
                pool_iter = executor.map(_pool_trial_batch, pending, chunksize=1)
            else:
                chunksize = max(1, len(pending) // (4 * workers))
                pool_iter = (
                    [result]
                    for result in executor.map(_pool_trial, pending, chunksize=chunksize)
                )
            # ``pending`` is increasing and the pool yields in input order,
            # so interleaving replayed units keeps trial order intact.
            for start in units:
                batch = replayed.get(start)
                if batch is None:
                    batch = next(pool_iter)
                    unit_record(start, batch)
                emit(results, start, batch)
            return finish(results)
    finally:
        _POOL_STATE = None


def measure_parallel_times(
    protocol_factory: Callable[[], PopulationProtocol],
    trials: int,
    run: Optional[RunConfig] = None,
    *,
    configuration_factory: Optional[ConfigurationFactory] = None,
    label: str = "",
    on_trial_done: Optional[TrialObserver] = None,
    **legacy,
) -> TrialStatistics:
    """Run ``trials`` independent simulations and collect stabilization times.

    A thin wrapper around :func:`run_trials` that accepts a configuration
    factory for adversarial starts and returns :class:`TrialStatistics` of
    the measured parallel times.  Trials that hit the interaction cap
    contribute their (censored) cap time, so results stay conservative rather
    than silently optimistic.

    ``run`` selects engine, stop condition, seed, caps, and worker count; see
    :class:`~repro.engine.run_config.RunConfig` and ``docs/ARCHITECTURE.md``
    for the engine tradeoffs.  With ``engine="compiled"`` the protocol is
    compiled once and the tables are shared across trials, so the factory
    must build identically parameterized protocols every call.
    """
    config = _coerce_run_config(run, legacy, caller="measure_parallel_times")
    results = run_trials(
        protocol_factory=protocol_factory,
        trials=trials,
        run=config,
        configuration_factory=configuration_factory,
        on_trial_done=on_trial_done,
    )
    times = [result.parallel_time for result in results]
    n = results[0].n if results else 0
    return TrialStatistics.from_values(label or protocol_factory().name, n, times)


def sweep_parallel_time(
    ns: Sequence[int],
    protocol_factory: ProtocolFactory,
    trials: int,
    run: Optional[RunConfig] = None,
    *,
    configuration_factory: Optional[ConfigurationFactory] = None,
    max_interactions_factory: Optional[Callable[[int], int]] = None,
    label: str = "",
    on_trial_done: Optional[TrialObserver] = None,
    **legacy,
) -> List[TrialStatistics]:
    """Measure stabilization time across a sweep of population sizes.

    ``protocol_factory`` receives the population size; the per-``n`` seeds are
    derived from ``run.seed`` so runs are reproducible yet independent.  The
    engine and worker count on ``run`` are forwarded to
    :func:`measure_parallel_times`, so a multi-trial/multi-``n`` sweep
    saturates ``jobs`` cores with either engine.
    """
    config = _coerce_run_config(run, legacy, caller="sweep_parallel_time")
    results: List[TrialStatistics] = []
    seeds = spawn_seed_sequences(config.seed, len(ns))
    for n, n_seed in zip(ns, seeds):
        cap = (
            max_interactions_factory(n)
            if max_interactions_factory is not None
            else config.max_interactions
        )
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: protocol_factory(n),
            trials=trials,
            run=config.replace(
                seed=np.random.default_rng(n_seed), max_interactions=cap
            ),
            configuration_factory=configuration_factory,
            label=f"{label or 'sweep'} (n={n})",
            on_trial_done=on_trial_done,
        )
        results.append(statistics)
    return results


__all__ = [
    "ENGINES",
    "STOPS",
    "ExperimentSpec",
    "RunConfig",
    "measure_parallel_times",
    "run_trials",
    "sweep_parallel_time",
    "trial_memo",
]
