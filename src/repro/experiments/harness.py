"""Shared experiment machinery: repeated trials and population-size sweeps.

Multi-trial measurements embarrassingly parallelize: every trial derives its
random stream from its own ``numpy.random.SeedSequence`` child, so trials are
independent no matter which process executes them.  :func:`run_trials` exploits
this with a ``concurrent.futures.ProcessPoolExecutor`` when ``jobs > 1``:
results are bit-identical across any ``jobs`` value (the stream of trial ``i``
depends only on ``(seed, i)``), which ``tests/experiments/test_parallel_harness.py``
enforces.  Worker processes are forked, so closures (the lambdas experiments
pass as factories) and a pre-compiled transition table are inherited rather
than pickled; on platforms without ``fork`` the harness silently runs
sequentially.
"""

from __future__ import annotations

import inspect
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import CompiledProtocol, ProtocolCompiler
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.results import SimulationResult, TrialStatistics
from repro.engine.rng import RngLike, spawn_seed_sequences
from repro.engine.simulation import Simulation

ProtocolFactory = Callable[[int], PopulationProtocol]
ConfigurationFactory = Callable[[PopulationProtocol, np.random.Generator], Configuration]

#: Engines selectable by experiments and the CLI (see docs/ARCHITECTURE.md).
ENGINES = ("loop", "compiled")

#: Stop conditions understood by the trial runners.
STOPS = ("stabilized", "correct", "silent")

#: Trial context inherited by forked pool workers (see :func:`run_trials`).
#: Holding it in a module global instead of pickling it lets experiments keep
#: passing plain lambdas as factories.
_POOL_STATE: Optional[Dict] = None


@dataclass
class ExperimentSpec:
    """Declarative description of one experiment (used by the registry and CLI)."""

    identifier: str
    title: str
    paper_reference: str
    runner: Callable[..., List[Dict]]
    description: str = ""
    quick_kwargs: Dict = field(default_factory=dict)
    full_kwargs: Dict = field(default_factory=dict)

    def supports_jobs(self) -> bool:
        """``True`` iff the runner accepts a ``jobs`` keyword (worker count)."""
        try:
            parameters = inspect.signature(self.runner).parameters
        except (TypeError, ValueError):
            return False
        if "jobs" in parameters:
            return True
        return any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )

    def run(self, scale: str = "quick", jobs: Optional[int] = None, **overrides) -> List[Dict]:
        """Run the experiment at the requested scale, applying overrides.

        ``jobs`` (the ``--jobs N`` CLI flag) is forwarded to runners that
        accept it and ignored otherwise, so a single flag can fan a whole
        ``run all`` over every sweep-style experiment.
        """
        if scale not in ("quick", "full"):
            raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
        kwargs = dict(self.quick_kwargs if scale == "quick" else self.full_kwargs)
        kwargs.update(overrides)
        if jobs is not None and "jobs" not in kwargs and self.supports_jobs():
            kwargs["jobs"] = jobs
        return self.runner(**kwargs)


def _execute_trial(
    protocol_factory: Callable[[], PopulationProtocol],
    configuration_factory: Optional[ConfigurationFactory],
    stop: str,
    engine: str,
    max_interactions: Optional[int],
    check_interval: Optional[int],
    compiled: Optional[CompiledProtocol],
    seed_seq: np.random.SeedSequence,
) -> SimulationResult:
    """Run one trial from its own seed sequence (process-agnostic)."""
    rng = np.random.default_rng(seed_seq)
    protocol = protocol_factory()
    configuration = (
        configuration_factory(protocol, rng) if configuration_factory is not None else None
    )
    if engine == "compiled":
        simulation = BatchSimulation(
            protocol, configuration=configuration, rng=rng, compiled=compiled
        )
    else:
        simulation = Simulation(protocol, configuration=configuration, rng=rng)
    runner = {
        "stabilized": simulation.run_until_stabilized,
        "correct": simulation.run_until_correct,
        "silent": simulation.run_until_silent,
    }[stop]
    return runner(max_interactions=max_interactions, check_interval=check_interval)


def _pool_trial(index: int) -> SimulationResult:
    """Pool worker entry point: run trial ``index`` of the inherited context."""
    state = _POOL_STATE
    if state is None:
        raise RuntimeError(
            "worker has no inherited trial context; the parallel harness "
            "requires fork-started workers"
        )
    return _execute_trial(
        protocol_factory=state["protocol_factory"],
        configuration_factory=state["configuration_factory"],
        stop=state["stop"],
        engine=state["engine"],
        max_interactions=state["max_interactions"],
        check_interval=state["check_interval"],
        compiled=state["compiled"],
        seed_seq=state["seeds"][index],
    )


def run_trials(
    protocol_factory: Callable[[], PopulationProtocol],
    trials: int,
    seed: RngLike = None,
    configuration_factory: Optional[ConfigurationFactory] = None,
    stop: str = "stabilized",
    max_interactions: Optional[int] = None,
    check_interval: Optional[int] = None,
    engine: str = "loop",
    jobs: int = 1,
) -> List[SimulationResult]:
    """Run ``trials`` independent simulations, optionally across processes.

    Returns the per-trial :class:`SimulationResult` records in trial order.
    Trial ``i`` always consumes the generator spawned from the ``i``-th child
    ``SeedSequence`` of ``seed``, so the results are **bit-identical for every
    value of ``jobs``** -- parallelism redistributes work, never randomness.

    ``jobs > 1`` executes trials on a ``ProcessPoolExecutor`` with forked
    workers; factories may be arbitrary closures (they are inherited through
    the fork, not pickled).  With ``engine="compiled"`` the protocol is
    compiled once up front and the table shared -- by reference across
    sequential trials, via fork copy-on-write across workers.  On platforms
    without the ``fork`` start method the harness degrades to sequential
    execution (same results, no speedup).
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if jobs < 1:
        raise ValueError(f"jobs must be positive, got {jobs}")
    if stop not in STOPS:
        raise ValueError(f"unknown stop condition {stop!r}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}, expected one of {ENGINES}")
    seeds = spawn_seed_sequences(seed, trials)
    compiled = (
        ProtocolCompiler().compile(protocol_factory()) if engine == "compiled" else None
    )

    context = None
    if jobs > 1 and trials > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None

    if context is None:
        return [
            _execute_trial(
                protocol_factory=protocol_factory,
                configuration_factory=configuration_factory,
                stop=stop,
                engine=engine,
                max_interactions=max_interactions,
                check_interval=check_interval,
                compiled=compiled,
                seed_seq=seed_seq,
            )
            for seed_seq in seeds
        ]

    global _POOL_STATE
    _POOL_STATE = {
        "protocol_factory": protocol_factory,
        "configuration_factory": configuration_factory,
        "stop": stop,
        "engine": engine,
        "max_interactions": max_interactions,
        "check_interval": check_interval,
        "compiled": compiled,
        "seeds": seeds,
    }
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, trials), mp_context=context
        ) as executor:
            chunksize = max(1, trials // (4 * min(jobs, trials)))
            return list(executor.map(_pool_trial, range(trials), chunksize=chunksize))
    finally:
        _POOL_STATE = None


def measure_parallel_times(
    protocol_factory: Callable[[], PopulationProtocol],
    trials: int,
    seed: RngLike = None,
    configuration_factory: Optional[ConfigurationFactory] = None,
    stop: str = "stabilized",
    max_interactions: Optional[int] = None,
    check_interval: Optional[int] = None,
    label: str = "",
    engine: str = "loop",
    jobs: int = 1,
) -> TrialStatistics:
    """Run ``trials`` independent simulations and collect stabilization times.

    A thin wrapper around :func:`run_trials` that accepts a configuration
    factory for adversarial starts and returns :class:`TrialStatistics` of
    the measured parallel times.  Trials that hit the interaction cap
    contribute their (censored) cap time, so results stay conservative rather
    than silently optimistic.

    ``engine`` selects the execution engine: ``"loop"`` (the per-interaction
    :class:`Simulation`) or ``"compiled"`` (the table-driven
    :class:`BatchSimulation`; the protocol is compiled once and the tables
    are shared across trials, so the factory must build identically
    parameterized protocols every call -- state-space mismatches are
    detected, but outcome-only parameters such as branch probabilities are
    the caller's responsibility).  ``jobs`` fans the trials over worker
    processes without changing any trial's random stream.  See
    ``docs/ARCHITECTURE.md`` for tradeoffs.
    """
    results = run_trials(
        protocol_factory=protocol_factory,
        trials=trials,
        seed=seed,
        configuration_factory=configuration_factory,
        stop=stop,
        max_interactions=max_interactions,
        check_interval=check_interval,
        engine=engine,
        jobs=jobs,
    )
    times = [result.parallel_time for result in results]
    n = results[0].n if results else 0
    return TrialStatistics.from_values(label or protocol_factory().name, n, times)


def sweep_parallel_time(
    ns: Sequence[int],
    protocol_factory: ProtocolFactory,
    trials: int,
    seed: RngLike = None,
    configuration_factory: Optional[ConfigurationFactory] = None,
    stop: str = "stabilized",
    max_interactions_factory: Optional[Callable[[int], int]] = None,
    label: str = "",
    engine: str = "loop",
    jobs: int = 1,
) -> List[TrialStatistics]:
    """Measure stabilization time across a sweep of population sizes.

    ``protocol_factory`` receives the population size; the per-``n`` seeds are
    derived from ``seed`` so runs are reproducible yet independent.  The
    ``engine`` and ``jobs`` choices are forwarded to
    :func:`measure_parallel_times`, so a multi-trial/multi-``n`` sweep
    saturates ``jobs`` cores with either engine.
    """
    results: List[TrialStatistics] = []
    seeds = spawn_seed_sequences(seed, len(ns))
    for n, n_seed in zip(ns, seeds):
        cap = max_interactions_factory(n) if max_interactions_factory is not None else None
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: protocol_factory(n),
            trials=trials,
            seed=np.random.default_rng(n_seed),
            configuration_factory=configuration_factory,
            stop=stop,
            max_interactions=cap,
            label=f"{label or 'sweep'} (n={n})",
            engine=engine,
            jobs=jobs,
        )
        results.append(statistics)
    return results


__all__ = [
    "ENGINES",
    "STOPS",
    "ExperimentSpec",
    "measure_parallel_times",
    "run_trials",
    "sweep_parallel_time",
]
