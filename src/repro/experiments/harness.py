"""Shared experiment machinery: repeated trials and population-size sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.engine.batch_simulation import BatchSimulation
from repro.engine.compiled import CompiledProtocol, ProtocolCompiler
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.results import TrialStatistics
from repro.engine.rng import RngLike, spawn_rngs
from repro.engine.simulation import Simulation

ProtocolFactory = Callable[[int], PopulationProtocol]
ConfigurationFactory = Callable[[PopulationProtocol, np.random.Generator], Configuration]

#: Engines selectable by experiments and the CLI (see docs/ARCHITECTURE.md).
ENGINES = ("loop", "compiled")


@dataclass
class ExperimentSpec:
    """Declarative description of one experiment (used by the registry and CLI)."""

    identifier: str
    title: str
    paper_reference: str
    runner: Callable[..., List[Dict]]
    description: str = ""
    quick_kwargs: Dict = field(default_factory=dict)
    full_kwargs: Dict = field(default_factory=dict)

    def run(self, scale: str = "quick", **overrides) -> List[Dict]:
        """Run the experiment at the requested scale, applying overrides."""
        if scale not in ("quick", "full"):
            raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
        kwargs = dict(self.quick_kwargs if scale == "quick" else self.full_kwargs)
        kwargs.update(overrides)
        return self.runner(**kwargs)


def measure_parallel_times(
    protocol_factory: Callable[[], PopulationProtocol],
    trials: int,
    seed: RngLike = None,
    configuration_factory: Optional[ConfigurationFactory] = None,
    stop: str = "stabilized",
    max_interactions: Optional[int] = None,
    check_interval: Optional[int] = None,
    label: str = "",
    engine: str = "loop",
) -> TrialStatistics:
    """Run ``trials`` independent simulations and collect stabilization times.

    A thin wrapper around the simulation engines that accepts a configuration
    factory for adversarial starts and returns :class:`TrialStatistics` of
    the measured parallel times.  Trials that hit the interaction cap
    contribute their (censored) cap time, so results stay conservative rather
    than silently optimistic.

    ``engine`` selects the execution engine: ``"loop"`` (the per-interaction
    :class:`Simulation`) or ``"compiled"`` (the table-driven
    :class:`BatchSimulation`; the protocol is compiled once and the tables
    are shared across trials, so the factory must build identically
    parameterized protocols every call -- state-space mismatches are
    detected, but outcome-only parameters such as branch probabilities are
    the caller's responsibility).  See ``docs/ARCHITECTURE.md`` for
    tradeoffs.
    """
    if trials < 1:
        raise ValueError(f"trials must be positive, got {trials}")
    if stop not in ("stabilized", "correct", "silent"):
        raise ValueError(f"unknown stop condition {stop!r}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}, expected one of {ENGINES}")
    rngs = spawn_rngs(seed, trials)
    times: List[float] = []
    n = None
    compiled: Optional[CompiledProtocol] = None
    for rng in rngs:
        protocol = protocol_factory()
        n = protocol.n
        configuration = (
            configuration_factory(protocol, rng) if configuration_factory is not None else None
        )
        if engine == "compiled":
            if compiled is None:
                compiled = ProtocolCompiler().compile(protocol)
            simulation = BatchSimulation(
                protocol, configuration=configuration, rng=rng, compiled=compiled
            )
        else:
            simulation = Simulation(protocol, configuration=configuration, rng=rng)
        runner = {
            "stabilized": simulation.run_until_stabilized,
            "correct": simulation.run_until_correct,
            "silent": simulation.run_until_silent,
        }[stop]
        result = runner(max_interactions=max_interactions, check_interval=check_interval)
        times.append(result.parallel_time)
    return TrialStatistics.from_values(label or protocol_factory().name, n or 0, times)


def sweep_parallel_time(
    ns: Sequence[int],
    protocol_factory: ProtocolFactory,
    trials: int,
    seed: RngLike = None,
    configuration_factory: Optional[ConfigurationFactory] = None,
    stop: str = "stabilized",
    max_interactions_factory: Optional[Callable[[int], int]] = None,
    label: str = "",
    engine: str = "loop",
) -> List[TrialStatistics]:
    """Measure stabilization time across a sweep of population sizes.

    ``protocol_factory`` receives the population size; the per-``n`` seeds are
    derived from ``seed`` so runs are reproducible yet independent.  The
    ``engine`` choice is forwarded to :func:`measure_parallel_times`.
    """
    results: List[TrialStatistics] = []
    seeds = spawn_rngs(seed, len(ns))
    for n, n_rng in zip(ns, seeds):
        cap = max_interactions_factory(n) if max_interactions_factory is not None else None
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: protocol_factory(n),
            trials=trials,
            seed=n_rng,
            configuration_factory=configuration_factory,
            stop=stop,
            max_interactions=cap,
            label=f"{label or 'sweep'} (n={n})",
            engine=engine,
        )
        results.append(statistics)
    return results


__all__ = ["ENGINES", "ExperimentSpec", "measure_parallel_times", "sweep_parallel_time"]
