"""Experiment E2: the Theta(n^2) running time of ``Silent-n-state-SSR`` (Theorem 2.4).

The protocol is run from the worst-case configuration of the theorem (two
agents at rank 0, a hole at rank ``n - 1``) and from uniformly random rank
assignments; the measured parallel times are compared against the predicted
``~ n^2 / 2`` and a fitted power-law exponent is reported.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.scaling import fit_power_law
from repro.analysis.statistics import summarize
from repro.analysis.theory import expected_silent_n_state_worst_case_interactions
from repro.core.silent_n_state import simulate_silent_n_state
from repro.engine.rng import RngLike, spawn_rngs


def run_silent_n_state_scaling(
    ns: Sequence[int] = (16, 32, 64, 128),
    trials: int = 20,
    seed: RngLike = 0,
    start: str = "worst-case",
) -> List[Dict]:
    """Measure stabilization time of Protocol 1 across a sweep of ``n``.

    ``start`` is ``"worst-case"`` (Theorem 2.4's lower-bound configuration) or
    ``"random"`` (uniformly random ranks).
    """
    if start not in ("worst-case", "random"):
        raise ValueError(f"start must be 'worst-case' or 'random', got {start!r}")
    rows: List[Dict] = []
    mean_times: List[float] = []
    rngs = spawn_rngs(seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = []
        for _ in range(trials):
            if start == "worst-case":
                initial_ranks = None
            else:
                initial_ranks = rng.integers(0, n, size=n).tolist()
            interactions = simulate_silent_n_state(n, initial_ranks=initial_ranks, rng=rng)
            samples.append(interactions / n)
        summary = summarize(samples)
        mean_times.append(summary.mean)
        predicted = expected_silent_n_state_worst_case_interactions(n) / n
        rows.append(
            {
                "n": n,
                "start": start,
                "trials": trials,
                "mean time": summary.mean,
                "max time": summary.maximum,
                "predicted time (worst case)": predicted,
                "mean / n^2": summary.mean / (n * n),
            }
        )
    if len(ns) >= 2:
        exponent, _, r_squared = fit_power_law(list(ns), mean_times)
        for row in rows:
            row["fitted exponent"] = exponent
            row["fit R^2"] = r_squared
    return rows


__all__ = ["run_silent_n_state_scaling"]
