"""Experiment E2: the Theta(n^2) running time of ``Silent-n-state-SSR`` (Theorem 2.4).

The protocol is run from the worst-case configuration of the theorem (two
agents at rank 0, a hole at rank ``n - 1``) and from uniformly random rank
assignments; the measured parallel times are compared against the predicted
``~ n^2 / 2`` and a fitted power-law exponent is reported.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.analysis.scaling import fit_power_law
from repro.analysis.theory import expected_silent_n_state_worst_case_interactions
from repro.core.silent_n_state import simulate_silent_n_state
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner, read_params


@experiment_runner("silent_n_state_quadratic")
def run_silent_n_state_scaling(params: Mapping, run: RunConfig) -> List[Dict]:
    """Measure stabilization time of Protocol 1 across a sweep of ``n``.

    ``start`` is ``"worst-case"`` (Theorem 2.4's lower-bound configuration) or
    ``"random"`` (uniformly random ranks).
    """
    opts = read_params(params, ns=(16, 32, 64, 128), trials=20, start="worst-case")
    ns, trials, start = opts["ns"], opts["trials"], opts["start"]
    if start not in ("worst-case", "random"):
        raise ValueError(f"start must be 'worst-case' or 'random', got {start!r}")
    rows: List[Dict] = []
    mean_times: List[float] = []
    rngs = spawn_rngs(run.seed, len(ns))
    for n, rng in zip(ns, rngs):
        samples = []
        for _ in range(trials):
            if start == "worst-case":
                initial_ranks = None
            else:
                initial_ranks = rng.integers(0, n, size=n).tolist()
            interactions = simulate_silent_n_state(n, initial_ranks=initial_ranks, rng=rng)
            samples.append(interactions / n)
        stats = TrialStatistics.from_values(f"silent-n-state (n={n})", n, samples)
        mean_times.append(stats.mean)
        predicted = expected_silent_n_state_worst_case_interactions(n) / n
        rows.append(
            {
                "n": n,
                "start": start,
                "trials": trials,
                "mean time": stats.mean,
                "max time": stats.maximum,
                "predicted time (worst case)": predicted,
                "mean / n^2": stats.mean / (n * n),
            }
        )
    if len(ns) >= 2:
        exponent, _, r_squared = fit_power_law(list(ns), mean_times)
        for row in rows:
            row["fitted exponent"] = exponent
            row["fit R^2"] = r_squared
    return rows


__all__ = ["run_silent_n_state_scaling"]
