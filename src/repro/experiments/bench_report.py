"""Cross-PR benchmark trend report from committed ``BENCH_<area>.json`` files.

Every benchmark area records a durable baseline at the repo root (see
``benchmarks/bench_utils.py``): the current ``rows`` that CI gates read,
plus a ``history`` list appended on each re-record -- one ``{head, rows}``
entry per recording, nothing time-dependent.  This module renders that
history as tables, one per area, so the speed trajectory across PRs is
readable without digging through git archaeology::

    python -m repro bench report
    python -m repro bench report --area compiled_engine --markdown

Artifacts written before the ``history`` field exist too; they render as a
single unattributed entry built from their current ``rows``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.report import format_table, rows_to_markdown

#: Repo root -- where ``BENCH_<area>.json`` baselines are committed.
REPO_ROOT = Path(__file__).resolve().parent.parent.parent.parent


def list_bench_areas(root: Union[str, Path] = REPO_ROOT) -> List[str]:
    """Areas with a committed baseline, sorted (``BENCH_<area>.json``)."""
    return sorted(
        path.name[len("BENCH_") : -len(".json")]
        for path in Path(root).glob("BENCH_*.json")
    )


def load_bench_history(area: str, root: Union[str, Path] = REPO_ROOT) -> List[Dict]:
    """The recording history for ``area``: a list of ``{head, rows}`` entries.

    Raises ``ValueError`` for an unknown area (no committed baseline).
    Baselines recorded before the ``history`` field synthesize one entry
    from their current ``rows`` so every area renders uniformly.
    """
    path = Path(root) / f"BENCH_{area}.json"
    if not path.exists():
        known = ", ".join(list_bench_areas(root)) or "none"
        raise ValueError(f"unknown benchmark area {area!r}; known: {known}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"unreadable benchmark baseline {path}: {error}") from None
    history = payload.get("history") or []
    if not history:
        history = [{"head": None, "rows": payload.get("rows", [])}]
    return [
        {"head": entry.get("head"), "rows": list(entry.get("rows", []))}
        for entry in history
    ]


def bench_trend_rows(area: str, root: Union[str, Path] = REPO_ROOT) -> List[Dict]:
    """History flattened to one table: entry index + short head + row fields."""
    rows: List[Dict] = []
    for index, entry in enumerate(load_bench_history(area, root), start=1):
        head = entry["head"]
        label = head[:10] if isinstance(head, str) else "(unrecorded)"
        for row in entry["rows"]:
            rows.append({"entry": index, "head": label, **row})
    return rows


def _trend_columns(rows: Sequence[Dict]) -> List[str]:
    columns = ["entry", "head"]
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def render_bench_report(
    areas: Optional[Sequence[str]] = None,
    root: Union[str, Path] = REPO_ROOT,
    markdown: bool = False,
) -> str:
    """The full report: one trend table per area, newest entry last.

    ``areas=None`` renders every committed baseline.  Unknown areas raise
    ``ValueError`` (the CLI turns that into a clean ``error:`` line).
    """
    selected = list(areas) if areas else list_bench_areas(root)
    if not selected:
        raise ValueError(f"no BENCH_*.json baselines found under {Path(root)}")
    sections: List[str] = []
    for area in selected:
        rows = bench_trend_rows(area, root)
        entries = max((row["entry"] for row in rows), default=0)
        render = rows_to_markdown if markdown else format_table
        sections.append(
            f"== bench {area}: {entries} recorded entr"
            f"{'y' if entries == 1 else 'ies'} ==\n"
            + render(rows, columns=_trend_columns(rows))
        )
    return "\n\n".join(sections) + "\n"


__all__ = [
    "bench_trend_rows",
    "list_bench_areas",
    "load_bench_history",
    "render_bench_report",
]
