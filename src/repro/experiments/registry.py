"""Registry mapping experiment identifiers to their runners.

The identifiers match the per-experiment index in ``DESIGN.md`` and the
records in ``EXPERIMENTS.md``; the CLI resolves names through this table.
Each entry carries a ``quick`` parameterization (seconds to a couple of
minutes on a laptop) and a ``full`` one (closer to the ranges quoted in
``EXPERIMENTS.md``).

Every runner follows the uniform contract ``runner(params, run: RunConfig)
-> ExperimentResult`` (enforced at registration time), so the execution
options -- ``--seed``, ``--engine``, ``--jobs`` -- apply to every experiment
through one :class:`~repro.engine.run_config.RunConfig` built by
:meth:`~repro.experiments.harness.ExperimentSpec.run`; no signature
introspection is involved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.run_config import RunConfig
from repro.experiments.ablations import (
    run_dormancy_ablation,
    run_sync_range_ablation,
    run_timer_ablation,
)
from repro.experiments.epidemic_experiments import (
    run_all_agents_interact,
    run_bounded_epidemic,
    run_epidemic,
    run_roll_call,
)
from repro.experiments.byzantine_experiments import (
    run_byzantine_tolerance,
    run_epsilon_consensus,
)
from repro.experiments.counts_experiments import (
    run_counts_scaling,
    run_counts_table1,
    run_epidemic_convergence,
)
from repro.experiments.harness import ExperimentSpec
from repro.experiments.lower_bounds import (
    run_fratricide_failure,
    run_log_lower_bound,
    run_silent_lower_bound,
)
from repro.experiments.optimal_silent_experiments import (
    run_binary_tree_assignment,
    run_optimal_silent_scaling,
    run_propagate_reset,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.silent_n_state_experiments import run_silent_n_state_scaling
from repro.experiments.state_space_experiments import run_state_space
from repro.experiments.stress_experiments import (
    run_recovery_burst,
    run_recovery_scheduler,
)
from repro.experiments.sublinear_experiments import (
    run_safety,
    run_sublinear_scaling,
    run_sublinear_tradeoff,
)
from repro.experiments.synthetic_coin_experiments import run_synthetic_coin
from repro.experiments.table1 import run_table1

EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def _register(spec: ExperimentSpec) -> None:
    declared = getattr(spec.runner, "experiment_identifier", None)
    if declared is not None and declared != spec.identifier:
        raise ValueError(
            f"runner declares identifier {declared!r} but is registered "
            f"as {spec.identifier!r}"
        )
    EXPERIMENTS[spec.identifier] = spec


_register(
    ExperimentSpec(
        identifier="table1",
        title="Table 1: time/space of the three SSR protocols",
        paper_reference="Table 1",
        runner=run_table1,
        quick_params={"ns": (12, 16), "trials": 3},
        full_params={"ns": (16, 24, 32), "trials": 5},
    )
)
_register(
    ExperimentSpec(
        identifier="silent_n_state_quadratic",
        title="Silent-n-state-SSR is Theta(n^2) from the worst case",
        paper_reference="Theorem 2.4",
        runner=run_silent_n_state_scaling,
        quick_params={"ns": (16, 32, 64), "trials": 10},
        full_params={"ns": (16, 32, 64, 128, 192), "trials": 20},
    )
)
_register(
    ExperimentSpec(
        identifier="silent_lower_bound",
        title="Silent protocols need Omega(n) time",
        paper_reference="Observation 2.6",
        runner=run_silent_lower_bound,
        quick_params={"ns": (16, 32, 64), "trials": 10},
        full_params={"ns": (16, 32, 64, 128), "trials": 30},
    )
)
_register(
    ExperimentSpec(
        identifier="log_lower_bound",
        title="Any SSLE protocol needs Omega(log n) time",
        paper_reference="Section 1.1 remark",
        runner=run_log_lower_bound,
        quick_params={"ns": (64, 256), "trials": 50},
        full_params={"ns": (64, 256, 1024, 4096), "trials": 200},
    )
)
_register(
    ExperimentSpec(
        identifier="fratricide_failure",
        title="Initialized leader election is not self-stabilizing",
        paper_reference="Section 1 (Reliable leader election)",
        runner=run_fratricide_failure,
        quick_params={"n": 32},
        full_params={"n": 128, "horizon_factor": 200.0},
    )
)
_register(
    ExperimentSpec(
        identifier="epidemic",
        title="Two-way epidemic completes in ~n ln n interactions",
        paper_reference="Lemma 2.7 / Corollary 2.8",
        runner=run_epidemic,
        quick_params={"ns": (64, 128, 256), "trials": 100},
        full_params={"ns": (64, 128, 256, 512, 1024), "trials": 500},
    )
)
_register(
    ExperimentSpec(
        identifier="epidemic_convergence",
        title="Two-way epidemic convergence (byte-stable rows, any engine)",
        paper_reference="Lemma 2.7",
        runner=run_epidemic_convergence,
        description=(
            "Deterministic convergence sweep with no wall-clock columns: "
            "artifacts are byte-stable, so this is the reference workload "
            "for the serve subsystem's content-addressed cache and "
            "checkpoint/resume guarantees (see docs/ARCHITECTURE.md)."
        ),
        quick_params={"ns": (256, 1024), "trials": 10},
        full_params={"ns": (1024, 4096, 16384), "trials": 20},
    )
)
_register(
    ExperimentSpec(
        identifier="counts_scaling",
        title="Counts-engine throughput is independent of population size",
        paper_reference="Lemma 2.7 (epidemic workload)",
        runner=run_counts_scaling,
        description=(
            "Engine throughput sweep over population sizes on the two-way "
            "epidemic; with --engine counts the O(S) count-vector seeding "
            "reaches n = 1e7+ (see docs/ARCHITECTURE.md, counts engine)."
        ),
        quick_params={"ns": (1_000, 10_000), "trials": 3},
        full_params={"ns": (1_000_000, 10_000_000), "trials": 3},
    )
)
_register(
    ExperimentSpec(
        identifier="counts_table1",
        title="Table-1-style convergence sweep at n up to 1e8 (counts engine)",
        paper_reference="Table 1 / Lemma 2.7",
        runner=run_counts_table1,
        description=(
            "Epidemic completion-time statistics at populations only the "
            "agent-free counts engine reaches, executed through the "
            "trial-batched counts path (all trials of one n advance as a "
            "single (T, S) matrix; see docs/ARCHITECTURE.md)."
        ),
        quick_params={"ns": (10_000, 100_000), "trials": 4},
        full_params={"ns": (1_000_000, 100_000_000), "trials": 5},
    )
)
_register(
    ExperimentSpec(
        identifier="roll_call",
        title="Roll-call process completes in ~1.5 n ln n interactions",
        paper_reference="Lemma 2.9",
        runner=run_roll_call,
        quick_params={"ns": (32, 64, 128), "trials": 30},
        full_params={"ns": (32, 64, 128, 256, 512), "trials": 100},
    )
)
_register(
    ExperimentSpec(
        identifier="all_agents_interact",
        title="Every agent interacts within ~0.5 n ln n interactions",
        paper_reference="Lemma 2.9 (lower-bound step)",
        runner=run_all_agents_interact,
        quick_params={"ns": (64, 256), "trials": 50},
        full_params={"ns": (64, 256, 1024), "trials": 200},
    )
)
_register(
    ExperimentSpec(
        identifier="bounded_epidemic",
        title="Bounded-epidemic hitting times tau_k",
        paper_reference="Lemmas 2.10 and 2.11",
        runner=run_bounded_epidemic,
        quick_params={"ns": (64, 256), "ks": (1, 2, 3), "trials": 20},
        full_params={"ns": (64, 256, 1024), "ks": (1, 2, 3, 4), "trials": 50},
    )
)
_register(
    ExperimentSpec(
        identifier="binary_tree_assignment",
        title="Leader-driven binary-tree ranking is O(n)",
        paper_reference="Lemma 4.1 / Figure 1",
        runner=run_binary_tree_assignment,
        quick_params={"ns": (32, 64, 128), "trials": 10},
        full_params={"ns": (32, 64, 128, 256), "trials": 20},
    )
)
_register(
    ExperimentSpec(
        identifier="optimal_silent",
        title="Optimal-Silent-SSR stabilizes in O(n) time",
        paper_reference="Theorem 4.3 / Corollary 4.4",
        runner=run_optimal_silent_scaling,
        quick_params={"ns": (16, 32, 64), "trials": 5},
        full_params={"ns": (16, 32, 64, 128), "trials": 10},
    )
)
_register(
    ExperimentSpec(
        identifier="propagate_reset",
        title="Propagate-Reset recovers in O(log n) time",
        paper_reference="Theorem 3.4 / Corollary 3.5",
        runner=run_propagate_reset,
        quick_params={"ns": (16, 32, 64), "trials": 10},
        full_params={"ns": (16, 32, 64, 128), "trials": 20},
    )
)
_register(
    ExperimentSpec(
        identifier="sublinear_tradeoff",
        title="Sublinear-Time-SSR: stabilization time vs depth H",
        paper_reference="Theorem 5.7 / Table 1",
        runner=run_sublinear_tradeoff,
        quick_params={"n": 20, "depths": (0, 1, 2), "trials": 5},
        full_params={"n": 32, "depths": (0, 1, 2, None), "trials": 10},
    )
)
_register(
    ExperimentSpec(
        identifier="sublinear_scaling",
        title="Sublinear-Time-SSR: stabilization time vs n at fixed H",
        paper_reference="Theorem 5.7",
        runner=run_sublinear_scaling,
        quick_params={"ns": (8, 16, 24), "depth": 1, "trials": 5},
        full_params={"ns": (8, 16, 32, 48), "depth": 1, "trials": 8},
    )
)
_register(
    ExperimentSpec(
        identifier="history_tree_safety",
        title="No false collision detections after a clean reset",
        paper_reference="Lemmas 5.4 and 5.5 / Figure 2",
        runner=run_safety,
        quick_params={"n": 12, "depth": 2, "trials": 3},
        full_params={"n": 16, "depth": 2, "trials": 5},
    )
)
_register(
    ExperimentSpec(
        identifier="state_complexity",
        title="Observed state usage per protocol",
        paper_reference="Table 1 (states column) / Theorem 2.1",
        runner=run_state_space,
        quick_params={"ns": (8, 16), "interactions_factor": 20},
        full_params={"ns": (8, 16, 32), "interactions_factor": 40},
    )
)
_register(
    ExperimentSpec(
        identifier="synthetic_coin",
        title="Synthetic-coin derandomization",
        paper_reference="Section 6",
        runner=run_synthetic_coin,
        quick_params={"ns": (16, 64), "bits_needed": 16},
        full_params={"ns": (16, 64, 256), "bits_needed": 32},
    )
)


_register(
    ExperimentSpec(
        identifier="ablation_dormancy",
        title="Ablation: dormant-phase length D_max in Optimal-Silent-SSR",
        paper_reference="Lemma 4.2 / Theorem 4.3",
        runner=run_dormancy_ablation,
        quick_params={"n": 24, "dmax_factors": (1.0, 4.0, 8.0), "trials": 5},
        full_params={"n": 48, "dmax_factors": (1.0, 2.0, 4.0, 8.0), "trials": 10},
    )
)
_register(
    ExperimentSpec(
        identifier="ablation_timer",
        title="Ablation: edge-timer horizon T_H in Detect-Name-Collision",
        paper_reference="Lemma 5.6",
        runner=run_timer_ablation,
        quick_params={"n": 16, "timer_multipliers": (0.5, 8.0), "trials": 5},
        full_params={"n": 24, "timer_multipliers": (0.5, 2.0, 8.0), "trials": 10},
    )
)
_register(
    ExperimentSpec(
        identifier="ablation_sync_range",
        title="Ablation: sync-value range S_max in Detect-Name-Collision",
        paper_reference="Lemma 5.6",
        runner=run_sync_range_ablation,
        quick_params={"n": 16, "sync_values": (2, 0), "trials": 5},
        full_params={"n": 24, "sync_values": (2, 8, 0), "trials": 10},
    )
)


_register(
    ExperimentSpec(
        identifier="recovery_burst",
        title="Stress: recovery time vs transient-fault burst size",
        paper_reference="Section 1 (self-stabilization)",
        runner=run_recovery_burst,
        description=(
            "Timed corrupt bursts mid-run; parallel time from the last burst "
            "to re-stabilization, per burst size (see 'repro stress')."
        ),
        quick_params={"n": 12, "burst_sizes": (2, 6, 12), "trials": 4},
        full_params={"n": 24, "burst_sizes": (2, 6, 12, 24), "trials": 10},
    )
)
_register(
    ExperimentSpec(
        identifier="recovery_scheduler",
        title="Stress: recovery time under adversarial schedulers",
        paper_reference="Section 1 (fair schedulers)",
        runner=run_recovery_scheduler,
        description=(
            "The same fault campaign under uniform, weight-biased, and "
            "epoch-partition scheduling (see 'repro stress')."
        ),
        quick_params={"n": 12, "burst_size": 6, "trials": 4},
        full_params={"n": 24, "burst_size": 12, "trials": 10},
    )
)

_register(
    ExperimentSpec(
        identifier="byzantine_tolerance",
        title="Stress: tolerance curves under persistent Byzantine agents",
        paper_reference="Section 1 (self-stabilization)",
        runner=run_byzantine_tolerance,
        description=(
            "Stabilized fraction (honest scope) vs the Byzantine fraction f "
            "per catalogue protocol, from adversarial starts; the summary is "
            "the largest tolerated f (see 'repro stress --byzantine')."
        ),
        quick_params={"n": 12, "trials": 4},
        full_params={"n": 24, "fractions": (0.05, 0.1, 0.2, 0.35), "trials": 10},
    )
)
_register(
    ExperimentSpec(
        identifier="epsilon_consensus",
        title="Stress: approximate consensus vs random-reply adversaries",
        paper_reference="approximate-consensus phase bound (related work)",
        runner=run_epsilon_consensus,
        description=(
            "Measured time to epsilon-agreement next to the AlgorithmOne "
            "phase count log(eps)/log(f/(n-f)), per Byzantine fraction "
            "(see 'repro stress --byzantine')."
        ),
        quick_params={"n": 16, "trials": 4},
        full_params={"n": 32, "fractions": (0.05, 0.1, 0.2, 0.4), "trials": 10},
    )
)

#: Registry identifiers the ``repro stress`` subcommand fronts.
STRESS_EXPERIMENTS = (
    "recovery_burst",
    "recovery_scheduler",
    "byzantine_tolerance",
    "epsilon_consensus",
)

#: The persistent-adversary subset (``repro stress --byzantine``).
BYZANTINE_EXPERIMENTS = ("byzantine_tolerance", "epsilon_consensus")


def list_experiments() -> List[str]:
    """Identifiers of all registered experiments (sorted)."""
    return sorted(EXPERIMENTS)


def get_experiment(identifier: str) -> ExperimentSpec:
    """Look up an experiment by identifier, raising ``KeyError`` with a hint."""
    try:
        return EXPERIMENTS[identifier]
    except KeyError:
        known = ", ".join(list_experiments())
        raise KeyError(f"unknown experiment {identifier!r}; known: {known}") from None


def run_experiment(
    identifier: str,
    scale: str = "quick",
    run: Optional[RunConfig] = None,
    *,
    seed: Optional[int] = None,
    engine: Optional[str] = None,
    jobs: Optional[int] = None,
    trial_batch: Optional[int] = None,
    **overrides,
) -> ExperimentResult:
    """Resolve ``identifier`` and run it with a uniformly built ``RunConfig``.

    Pass either a complete ``run=RunConfig(...)`` or the individual
    ``seed``/``engine``/``jobs``/``trial_batch`` options (the CLI flags);
    ``overrides`` update the scale's experiment parameters.
    """
    return get_experiment(identifier).run(
        scale=scale,
        run=run,
        seed=seed,
        engine=engine,
        jobs=jobs,
        trial_batch=trial_batch,
        **overrides,
    )


__all__ = [
    "BYZANTINE_EXPERIMENTS",
    "EXPERIMENTS",
    "STRESS_EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
