"""Plain-text and Markdown rendering of experiment rows.

Experiments return lists of row dictionaries; these helpers align them into
fixed-width tables (for the CLI) or Markdown tables (for ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def _collect_columns(rows: Sequence[Dict], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    seen: List[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def format_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned fixed-width text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = _collect_columns(rows, columns)
    cells = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(row_cells[i]) for row_cells in cells))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row_cells in cells:
        lines.append("  ".join(row_cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_markdown(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as a Markdown table."""
    if not rows:
        return "(no rows)"
    columns = _collect_columns(rows, columns)
    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(column, "")) for column in columns) + " |"
        )
    return "\n".join(lines)


__all__ = ["format_table", "rows_to_markdown"]
