"""Counts-engine scaling experiment: window cost independent of ``n``.

The counts engine's claim is structural -- one window costs O(S^2) however
large the population -- so the experiment that locks it in is a scaling
sweep: run the two-way epidemic (S = 2, convergence ~ ``n ln n``
interactions) across population sizes spanning orders of magnitude and
report interactions per second.  On the per-agent engines throughput is
bounded by per-interaction (loop) or per-agent (compiled) work; on the
counts engine it *grows* with ``n`` because each O(S^2) window covers
Θ(n) interactions.

The runner honours ``run.engine`` like every other experiment (so the same
sweep doubles as a cross-engine comparison); with ``engine="counts"`` the
trials are seeded through the harness's ``counts_factory`` fast path --
an O(S) count vector, never an O(n) per-agent array -- which is what lets
``--scale full`` reach n = 1e7 in CI.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping

import numpy as np

from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.harness import run_trials
from repro.engine.rng import spawn_seed_sequences
from repro.processes.epidemic import TwoWayEpidemicProtocol


def _one_infected_counts(protocol, compiled, rng) -> np.ndarray:
    """The epidemic's clean start as a count vector: one infected agent."""
    infected = compiled.encode_state(protocol.initial_state(0, rng))
    susceptible = compiled.encode_state(protocol.initial_state(protocol.n - 1, rng))
    counts = np.zeros(compiled.num_states, dtype=np.int64)
    counts[infected] += protocol.initially_infected
    counts[susceptible] += protocol.n - protocol.initially_infected
    return counts


@experiment_runner("epidemic_convergence")
def run_epidemic_convergence(params: Mapping, run: RunConfig) -> List[Dict]:
    """Convergence law of the two-way epidemic with fully deterministic rows.

    The same sweep as :func:`run_counts_scaling` minus the throughput
    columns: every row is a pure function of ``(params, run)`` -- no wall
    clock anywhere -- so artifacts are byte-stable across machines and
    re-runs.  That makes this the reference workload for the serve
    subsystem (``repro submit``): content-addressed caching, checkpoint /
    resume, and worker crash recovery are all asserted by comparing
    artifact *bytes*, which only a deterministic experiment allows.
    Honours ``run.engine`` like every harness experiment; per-``n`` seeds
    are tuple-derived from ``run.seed`` so each row is independent.
    """
    opts = read_params(params, ns=(256, 1024), trials=10)
    ns, trials = opts["ns"], opts["trials"]
    base_seed = run.seed if isinstance(run.seed, int) else 0
    rows: List[Dict] = []
    for n in ns:
        config = run.replace(seed=(base_seed, n), stop="correct")
        counts_factory = (
            _one_infected_counts if run.engine in ("counts", "compiled") else None
        )
        results = run_trials(
            lambda n=n: TwoWayEpidemicProtocol(n),
            trials=trials,
            run=config,
            counts_factory=counts_factory,
        )
        times = np.array([result.parallel_time for result in results])
        rows.append(
            {
                "n": n,
                "engine": run.engine,
                "trials": trials,
                "mean parallel time": float(times.mean()),
                "max parallel time": float(times.max()),
                "time / ln n": float(times.mean() / np.log(n)),
                "total interactions": int(sum(r.interactions for r in results)),
            }
        )
    return rows


@experiment_runner("counts_table1")
def run_counts_table1(params: Mapping, run: RunConfig) -> List[Dict]:
    """Table-1-style convergence sweep at populations up to ``n = 1e8``.

    The paper's Table 1 reports convergence times over repeated trials; this
    is the counts-engine rendition at population sizes no per-agent engine
    reaches: the two-way epidemic's completion law (~``ln n`` parallel time,
    Lemma 2.7) measured over ``trials`` independent trials per ``n``.  The
    engine is pinned to ``counts`` (the point of the experiment), and the
    whole per-``n`` trial set runs through the trial-batched counts path --
    ``trial_batch`` defaults to the full trial count unless the caller set
    one explicitly on the :class:`RunConfig`.
    """
    opts = read_params(params, ns=(1_000_000, 100_000_000), trials=5)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    seeds = spawn_seed_sequences(run.seed, len(ns))
    for n, n_seed in zip(ns, seeds):
        config = run.replace(
            seed=np.random.default_rng(n_seed),
            engine="counts",
            stop="correct",
            trial_batch=run.trial_batch if run.trial_batch > 1 else trials,
        )
        started = time.perf_counter()
        results = run_trials(
            lambda n=n: TwoWayEpidemicProtocol(n),
            trials=trials,
            run=config,
            counts_factory=_one_infected_counts,
        )
        wall = time.perf_counter() - started
        times = np.array([result.parallel_time for result in results])
        rows.append(
            {
                "n": n,
                "trials": trials,
                "trial_batch": config.trial_batch,
                "mean parallel time": float(times.mean()),
                "std parallel time": float(times.std()),
                "time / ln n": float(times.mean() / np.log(n)),
                "wall (s)": wall,
            }
        )
    return rows


@experiment_runner("counts_scaling")
def run_counts_scaling(params: Mapping, run: RunConfig) -> List[Dict]:
    """Throughput of the selected engine on the epidemic across population sizes."""
    opts = read_params(params, ns=(1_000, 10_000), trials=3)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    seeds = spawn_seed_sequences(run.seed, len(ns))
    for n, n_seed in zip(ns, seeds):
        config = run.replace(seed=np.random.default_rng(n_seed), stop="correct")
        counts_factory = _one_infected_counts if run.engine == "counts" else None
        started = time.perf_counter()
        results = run_trials(
            lambda n=n: TwoWayEpidemicProtocol(n),
            trials=trials,
            run=config,
            counts_factory=counts_factory,
        )
        wall = time.perf_counter() - started
        interactions = int(sum(result.interactions for result in results))
        rows.append(
            {
                "n": n,
                "engine": run.engine,
                "trials": trials,
                "mean parallel time": float(
                    np.mean([result.parallel_time for result in results])
                ),
                "total interactions": interactions,
                "interactions/s": interactions / wall if wall > 0 else float("inf"),
                "wall (s)": wall,
            }
        )
    return rows
