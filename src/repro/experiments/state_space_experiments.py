"""Experiment E12: the "states" column of Table 1 and Theorem 2.1.

For each protocol we report the closed-form state count where one exists and
the number of distinct states actually observed in executions, demonstrating
the qualitative separation: ``n`` states for Protocol 1, ``O(n)`` for
``Optimal-Silent-SSR``, and rapidly exploding state usage for the
history-tree protocol as ``H`` grows.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.analysis.state_space import count_observed_states
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.silent_n_state import SilentNStateSSR
from repro.core.sublinear import SublinearTimeSSR
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.optimal_silent_experiments import PRACTICAL_CONSTANTS
from repro.experiments.sublinear_experiments import PRACTICAL_RMAX_MULTIPLIER


@experiment_runner("state_complexity")
def run_state_space(params: Mapping, run: RunConfig) -> List[Dict]:
    """Observed distinct states per protocol, per population size."""
    opts = read_params(params, ns=(8, 16, 32), interactions_factor=30, sublinear_depth=1)
    ns, interactions_factor = opts["ns"], opts["interactions_factor"]
    sublinear_depth = opts["sublinear_depth"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        protocol_rngs = spawn_rngs(n_rng, 3)
        interactions = interactions_factor * n

        baseline = SilentNStateSSR(n)
        rows.append(
            {
                "protocol": baseline.name,
                "n": n,
                "observed states": count_observed_states(
                    baseline,
                    configuration=baseline.worst_case_configuration(),
                    interactions=interactions,
                    rng=protocol_rngs[0],
                ),
                "theoretical states": baseline.theoretical_state_count(),
            }
        )

        optimal = OptimalSilentSSR(n, **PRACTICAL_CONSTANTS)
        rows.append(
            {
                "protocol": optimal.name,
                "n": n,
                "observed states": count_observed_states(
                    optimal, interactions=interactions, rng=protocol_rngs[1]
                ),
                "theoretical states": optimal.theoretical_state_count(),
            }
        )

        sublinear = SublinearTimeSSR(
            n, depth=sublinear_depth, rmax_multiplier=PRACTICAL_RMAX_MULTIPLIER
        )
        rows.append(
            {
                "protocol": f"{sublinear.name} (H={sublinear.depth})",
                "n": n,
                "observed states": count_observed_states(
                    sublinear,
                    configuration=sublinear.unique_names_configuration(protocol_rngs[2]),
                    interactions=interactions,
                    rng=protocol_rngs[2],
                ),
                "theoretical states": f"~2^{sublinear.theoretical_state_bits():.0f}",
            }
        )
    return rows


__all__ = ["run_state_space"]
