"""Stress experiments: recovery-time measurements under fault campaigns.

These experiments exercise the adversary subsystem end to end on the
self-stabilizing catalogue entries: a :class:`~repro.adversary.plan.FaultPlan`
rides on the :class:`~repro.engine.run_config.RunConfig` into either engine,
and :mod:`repro.analysis.stabilization` turns the per-trial results into
recovery times measured from the *last* burst.

* ``recovery_burst``: recovery time as a function of burst size -- how much
  of the population a transient fault may corrupt before re-stabilization
  slows down (or fails within the cap).
* ``recovery_scheduler``: recovery time under adversarial schedulers --
  uniform vs. weight-biased vs. epoch-partitioned scheduling of the same
  fault campaign (self-stabilization must hold under any fair scheduler).

Both run through the multi-trial harness, so ``--engine``, ``--jobs``, and
``--seed`` apply; the ``repro stress`` CLI subcommand is a front end over
exactly these registry entries.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Mapping, Optional

from repro.adversary.plan import FaultPlan
from repro.adversary.schedulers import SchedulerSpec
from repro.analysis.stabilization import recovered_fraction, recovery_statistics
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.propagate_reset import ResetWaveProtocol
from repro.core.silent_n_state import SilentNStateSSR
from repro.engine.protocol import PopulationProtocol
from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.harness import run_trials

#: Reduced Optimal-Silent-SSR constants.  ``D_max``/``E_max`` scale linearly
#: in ``n`` and enter the compiled state count multiplicatively, so the
#: stress experiments use the same compile-friendly constants as the
#: cross-engine equivalence matrix -- a run at quick scale must compile in
#: seconds on either engine, not minutes.
STRESS_CONSTANTS = {"rmax_multiplier": 1.0, "dmax_factor": 2.0, "emax_factor": 3.0}


def make_stress_protocol(name: str, n: int) -> PopulationProtocol:
    """Catalogue protocols the stress experiments run against.

    All three support both engines, so ``--engine compiled`` works for every
    stress scenario.
    """
    if name == "optimal-silent":
        return OptimalSilentSSR(n, **STRESS_CONSTANTS)
    if name == "silent-n-state":
        return SilentNStateSSR(n)
    if name == "reset-wave":
        return ResetWaveProtocol(n)
    raise ValueError(
        f"unknown stress protocol {name!r}; "
        "known: optimal-silent, silent-n-state, reset-wave"
    )


def _base_seed(run: RunConfig) -> int:
    """Integer root for the per-row seed tuples below."""
    return run.seed if isinstance(run.seed, int) else 0


def _burst_plan(n: int, burst_times, burst_size: int, kind: str = "corrupt") -> FaultPlan:
    """Timed bursts at the given parallel times (converted to interactions)."""
    return FaultPlan.bursts(
        [(int(round(time * n)), burst_size) for time in burst_times], kind=kind
    )


def _clamped_burst_sizes(burst_sizes, n: int) -> List[int]:
    """Burst sizes capped at the population size, de-duplicated, in order.

    The defaults scale with the default ``n``; a CLI ``--n`` override below
    them must degrade to "corrupt everything", not crash.
    """
    sizes: List[int] = []
    for burst_size in burst_sizes:
        if burst_size < 0:
            raise ValueError(f"burst size must be non-negative, got {burst_size}")
        clamped = min(int(burst_size), n)
        if clamped not in sizes:
            sizes.append(clamped)
    return sizes


def _recovery_row(
    label: str, results, extra: Optional[Dict] = None
) -> Dict:
    """One report row from per-trial results (recovery measured post-burst)."""
    statistics = recovery_statistics(label, results)
    row = dict(extra or {})
    row.update(
        {
            "trials": len(results),
            "recovered fraction": recovered_fraction(results),
            "mean recovery time": statistics.mean,
            "p90 recovery time": statistics.quantile(0.9),
            "max recovery time": statistics.maximum,
        }
    )
    return row


@experiment_runner("recovery_burst")
def run_recovery_burst(params: Mapping, run: RunConfig) -> List[Dict]:
    """Recovery time vs. transient-fault burst size.

    Each setting runs a campaign of ``len(burst_times)`` corrupt bursts of
    ``burst_size`` agents (victims and replacement states drawn from the
    protocol's adversarial sampler) and measures parallel time from the last
    burst to the run's stop condition.  ``burst_sizes`` may include ``n``
    (the full-population burst, equivalent to an adversarial restart);
    larger sizes are clamped to ``n`` and de-duplicated, so an ``--n``
    override below the default sizes keeps working (rows report the actual
    size run).
    """
    opts = read_params(
        params,
        protocol="optimal-silent",
        n=12,
        burst_sizes=(2, 6, 12),
        burst_times=(1.0, 3.0),
        trials=5,
    )
    n, trials = opts["n"], opts["trials"]
    seed = _base_seed(run)
    rows: List[Dict] = []
    for burst_size in _clamped_burst_sizes(opts["burst_sizes"], n):
        plan = _burst_plan(n, opts["burst_times"], burst_size)
        results = run_trials(
            protocol_factory=lambda: make_stress_protocol(opts["protocol"], n),
            trials=trials,
            run=run.replace(seed=(seed, n, burst_size), faults=plan),
        )
        rows.append(
            _recovery_row(
                f"{opts['protocol']} burst={burst_size}",
                results,
                extra={
                    "n": n,
                    "burst size": burst_size,
                    "bursts": len(opts["burst_times"]),
                },
            )
        )
    return rows


@experiment_runner("recovery_scheduler")
def run_recovery_scheduler(params: Mapping, run: RunConfig) -> List[Dict]:
    """Recovery time under uniform vs. adversarial schedulers.

    The same fault campaign (corrupt bursts of ``burst_size`` agents) runs
    under the paper's uniform scheduler, a weight-biased scheduler (a hot
    set of over-scheduled agents), and an epoch-partition scheduler whose
    blocks stay split until after the last burst -- so part of the recovery
    happens while the population is partitioned.
    """
    opts = read_params(
        params,
        protocol="optimal-silent",
        n=12,
        burst_size=6,
        burst_times=(1.0, 3.0),
        trials=5,
        hot_fraction=0.25,
        hot_weight=4.0,
        blocks=2,
        split_time=4.0,
    )
    n, trials = opts["n"], opts["trials"]
    (burst_size,) = _clamped_burst_sizes((opts["burst_size"],), n)
    plan = _burst_plan(n, opts["burst_times"], burst_size)
    schedulers = (
        ("uniform", None),
        (
            "biased",
            SchedulerSpec(
                kind="biased",
                hot_fraction=opts["hot_fraction"],
                hot_weight=opts["hot_weight"],
            ),
        ),
        (
            "epoch",
            SchedulerSpec(
                kind="epoch", blocks=opts["blocks"], split_time=opts["split_time"]
            ),
        ),
    )
    seed = _base_seed(run)
    rows: List[Dict] = []
    for name, spec in schedulers:
        results = run_trials(
            protocol_factory=lambda: make_stress_protocol(opts["protocol"], n),
            trials=trials,
            run=run.replace(
                # crc32, not hash(): str hashing is salted per process, which
                # would break same-seed reproducibility across runs.
                seed=(seed, n, zlib.crc32(name.encode()) % (2**16)),
                faults=plan,
                scheduler=spec,
            ),
        )
        rows.append(
            _recovery_row(
                f"{opts['protocol']} {name}",
                results,
                extra={
                    "n": n,
                    "scheduler": spec.describe() if spec is not None else "uniform",
                    "burst size": burst_size,
                },
            )
        )
    return rows


__all__ = [
    "STRESS_CONSTANTS",
    "make_stress_protocol",
    "run_recovery_burst",
    "run_recovery_scheduler",
]
