"""Experiments E7, E8, E11: ``Optimal-Silent-SSR`` and its ingredients.

* E7 (Lemma 4.1, Figure 1): the leader-driven binary-tree rank assignment
  completes in O(n) parallel time.
* E8 (Theorem 4.3 / Corollary 4.4): the full protocol stabilizes from
  arbitrary adversarial configurations in O(n) expected time.
* E11 (Theorem 3.4 / Corollary 3.5): ``Propagate-Reset`` brings a partially
  triggered population to an awakening configuration within O(D_max) time.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.adversary.initial_configs import optimal_silent_adversarial_configuration
from repro.analysis.scaling import fit_power_law
from repro.analysis.theory import expected_binary_tree_assignment_time
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.sublinear import SublinearTimeSSR
from repro.engine.rng import RngLike, make_rng, spawn_rngs
from repro.engine.simulation import Simulation
from repro.experiments.harness import measure_parallel_times

#: Reduced constants that keep small-n simulations representative of the
#: asymptotic behaviour (the paper's R_max = 60 ln n swamps n <= 256).
PRACTICAL_CONSTANTS = {"rmax_multiplier": 4.0, "dmax_factor": 6.0, "emax_factor": 16.0}


def _make_protocol(n: int, paper_constants: bool) -> OptimalSilentSSR:
    if paper_constants:
        return OptimalSilentSSR(n)
    return OptimalSilentSSR(n, **PRACTICAL_CONSTANTS)


def run_binary_tree_assignment(
    ns: Sequence[int] = (32, 64, 128, 256),
    trials: int = 20,
    seed: RngLike = 0,
    paper_constants: bool = False,
    jobs: int = 1,
) -> List[Dict]:
    """E7: time for one Settled leader to rank the whole population (Lemma 4.1)."""
    rows: List[Dict] = []
    mean_times: List[float] = []
    for n in ns:
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: _make_protocol(n, paper_constants),
            trials=trials,
            seed=(seed, n),
            configuration_factory=lambda protocol, rng: (
                protocol.single_leader_awakening_configuration()
            ),
            stop="stabilized",
            label=f"binary-tree (n={n})",
            jobs=jobs,
        )
        mean_times.append(statistics.mean)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean time": statistics.mean,
                "max time": statistics.maximum,
                "paper bound O(n)": expected_binary_tree_assignment_time(n),
                "mean / n": statistics.mean / n,
            }
        )
    if len(ns) >= 2:
        exponent, _, r_squared = fit_power_law(list(ns), mean_times)
        for row in rows:
            row["fitted exponent"] = exponent
            row["fit R^2"] = r_squared
    return rows


def run_optimal_silent_scaling(
    ns: Sequence[int] = (16, 32, 64, 128),
    trials: int = 10,
    seed: RngLike = 0,
    paper_constants: bool = False,
    start: str = "adversarial",
    jobs: int = 1,
) -> List[Dict]:
    """E8: stabilization time of ``Optimal-Silent-SSR`` across population sizes.

    ``start`` selects the initial configuration: ``"adversarial"`` (independent
    uniformly random states per agent), ``"duplicate-ranks"`` (every agent
    Settled at rank 1), or ``"clean"`` (the protocol's default dormant start).
    """
    starts = {
        "adversarial": lambda protocol, rng: optimal_silent_adversarial_configuration(
            protocol, rng
        ),
        "duplicate-ranks": lambda protocol, rng: protocol.duplicate_rank_configuration(),
        "clean": None,
    }
    if start not in starts:
        raise ValueError(f"unknown start {start!r}")
    rows: List[Dict] = []
    mean_times: List[float] = []
    for n in ns:
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: _make_protocol(n, paper_constants),
            trials=trials,
            seed=(seed, n, hash(start) % (2**16)),
            configuration_factory=starts[start],
            stop="stabilized",
            label=f"optimal-silent (n={n})",
            jobs=jobs,
        )
        mean_times.append(statistics.mean)
        rows.append(
            {
                "n": n,
                "start": start,
                "trials": trials,
                "mean time": statistics.mean,
                "p90 time": statistics.quantile(0.9),
                "mean / n": statistics.mean / n,
            }
        )
    if len(ns) >= 2:
        exponent, _, r_squared = fit_power_law(list(ns), mean_times)
        for row in rows:
            row["fitted exponent"] = exponent
            row["fit R^2"] = r_squared
    return rows


def run_propagate_reset(
    ns: Sequence[int] = (16, 32, 64, 128),
    trials: int = 20,
    seed: RngLike = 0,
    rmax_multiplier: float = 4.0,
) -> List[Dict]:
    """E11: time from a partially triggered configuration back to full computation.

    Uses ``Sublinear-Time-SSR`` (whose ``D_max`` is Theta(log n)) so the
    measured recovery time tracks the O(log n) claim of Theorem 3.4 /
    Corollary 3.5 rather than the deliberately long Theta(n) dormancy of
    ``Optimal-Silent-SSR``.
    """
    rows: List[Dict] = []
    rng_streams = spawn_rngs(seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        times: List[float] = []
        for _ in range(trials):
            protocol = SublinearTimeSSR(n, depth=1, rmax_multiplier=rmax_multiplier)
            configuration = protocol.unique_names_configuration(n_rng)
            # Trigger a single agent, as an error detection would.
            protocol.reset_machinery.trigger(configuration[0], n_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=n_rng)
            result = simulation.run_until(
                protocol.reset_machinery.fully_computing,
                max_interactions=4000 * n * max(1, protocol.dmax),
                check_interval=n,
                reason="fully-computing",
            )
            times.append(result.parallel_time)
        mean_time = sum(times) / len(times)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "D_max": SublinearTimeSSR(n, depth=1, rmax_multiplier=rmax_multiplier).dmax,
                "mean recovery time": mean_time,
                "max recovery time": max(times),
                "mean / log2 n": mean_time / max(1.0, math.log2(n)),
            }
        )
    return rows


__all__ = [
    "PRACTICAL_CONSTANTS",
    "run_binary_tree_assignment",
    "run_optimal_silent_scaling",
    "run_propagate_reset",
]
