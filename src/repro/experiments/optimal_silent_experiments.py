"""Experiments E7, E8, E11: ``Optimal-Silent-SSR`` and its ingredients.

* E7 (Lemma 4.1, Figure 1): the leader-driven binary-tree rank assignment
  completes in O(n) parallel time.
* E8 (Theorem 4.3 / Corollary 4.4): the full protocol stabilizes from
  arbitrary adversarial configurations in O(n) expected time.
* E11 (Theorem 3.4 / Corollary 3.5): ``Propagate-Reset`` brings a partially
  triggered population to an awakening configuration within O(D_max) time.

E7 and E8 run through the multi-trial harness, so the ``RunConfig``'s engine
and worker count apply; per-``n`` child seeds are derived from ``run.seed``.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, List, Mapping

from repro.adversary.initial_configs import optimal_silent_adversarial_configuration
from repro.analysis.scaling import fit_power_law
from repro.analysis.theory import expected_binary_tree_assignment_time
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.sublinear import SublinearTimeSSR
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.harness import measure_parallel_times

#: Reduced constants that keep small-n simulations representative of the
#: asymptotic behaviour (the paper's R_max = 60 ln n swamps n <= 256).
PRACTICAL_CONSTANTS = {"rmax_multiplier": 4.0, "dmax_factor": 6.0, "emax_factor": 16.0}


def _make_protocol(n: int, paper_constants: bool) -> OptimalSilentSSR:
    if paper_constants:
        return OptimalSilentSSR(n)
    return OptimalSilentSSR(n, **PRACTICAL_CONSTANTS)


def _base_seed(run: RunConfig) -> int:
    """Integer root for the per-``n`` seed tuples below."""
    return run.seed if isinstance(run.seed, int) else 0


@experiment_runner("binary_tree_assignment")
def run_binary_tree_assignment(params: Mapping, run: RunConfig) -> List[Dict]:
    """E7: time for one Settled leader to rank the whole population (Lemma 4.1)."""
    opts = read_params(params, ns=(32, 64, 128, 256), trials=20, paper_constants=False)
    ns, trials = opts["ns"], opts["trials"]
    paper_constants = opts["paper_constants"]
    seed = _base_seed(run)
    rows: List[Dict] = []
    mean_times: List[float] = []
    for n in ns:
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: _make_protocol(n, paper_constants),
            trials=trials,
            run=run.replace(seed=(seed, n), stop="stabilized"),
            configuration_factory=lambda protocol, rng: (
                protocol.single_leader_awakening_configuration()
            ),
            label=f"binary-tree (n={n})",
        )
        mean_times.append(statistics.mean)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean time": statistics.mean,
                "max time": statistics.maximum,
                "paper bound O(n)": expected_binary_tree_assignment_time(n),
                "mean / n": statistics.mean / n,
            }
        )
    if len(ns) >= 2:
        exponent, _, r_squared = fit_power_law(list(ns), mean_times)
        for row in rows:
            row["fitted exponent"] = exponent
            row["fit R^2"] = r_squared
    return rows


@experiment_runner("optimal_silent")
def run_optimal_silent_scaling(params: Mapping, run: RunConfig) -> List[Dict]:
    """E8: stabilization time of ``Optimal-Silent-SSR`` across population sizes.

    ``start`` selects the initial configuration: ``"adversarial"`` (independent
    uniformly random states per agent), ``"duplicate-ranks"`` (every agent
    Settled at rank 1), or ``"clean"`` (the protocol's default dormant start).
    """
    opts = read_params(
        params, ns=(16, 32, 64, 128), trials=10, paper_constants=False, start="adversarial"
    )
    ns, trials = opts["ns"], opts["trials"]
    paper_constants, start = opts["paper_constants"], opts["start"]
    starts = {
        "adversarial": lambda protocol, rng: optimal_silent_adversarial_configuration(
            protocol, rng
        ),
        "duplicate-ranks": lambda protocol, rng: protocol.duplicate_rank_configuration(),
        "clean": None,
    }
    if start not in starts:
        raise ValueError(f"unknown start {start!r}")
    seed = _base_seed(run)
    rows: List[Dict] = []
    mean_times: List[float] = []
    for n in ns:
        statistics = measure_parallel_times(
            protocol_factory=lambda n=n: _make_protocol(n, paper_constants),
            trials=trials,
            run=run.replace(
                # crc32, not hash(): str hashing is salted per process, which
                # would break same-seed reproducibility across runs.
                seed=(seed, n, zlib.crc32(start.encode()) % (2**16)),
                stop="stabilized",
            ),
            configuration_factory=starts[start],
            label=f"optimal-silent (n={n})",
        )
        mean_times.append(statistics.mean)
        rows.append(
            {
                "n": n,
                "start": start,
                "trials": trials,
                "mean time": statistics.mean,
                "p90 time": statistics.quantile(0.9),
                "mean / n": statistics.mean / n,
            }
        )
    if len(ns) >= 2:
        exponent, _, r_squared = fit_power_law(list(ns), mean_times)
        for row in rows:
            row["fitted exponent"] = exponent
            row["fit R^2"] = r_squared
    return rows


@experiment_runner("propagate_reset")
def run_propagate_reset(params: Mapping, run: RunConfig) -> List[Dict]:
    """E11: time from a partially triggered configuration back to full computation.

    Uses ``Sublinear-Time-SSR`` (whose ``D_max`` is Theta(log n)) so the
    measured recovery time tracks the O(log n) claim of Theorem 3.4 /
    Corollary 3.5 rather than the deliberately long Theta(n) dormancy of
    ``Optimal-Silent-SSR``.
    """
    opts = read_params(params, ns=(16, 32, 64, 128), trials=20, rmax_multiplier=4.0)
    ns, trials = opts["ns"], opts["trials"]
    rmax_multiplier = opts["rmax_multiplier"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        times: List[float] = []
        for _ in range(trials):
            protocol = SublinearTimeSSR(n, depth=1, rmax_multiplier=rmax_multiplier)
            configuration = protocol.unique_names_configuration(n_rng)
            # Trigger a single agent, as an error detection would.
            protocol.reset_machinery.trigger(configuration[0], n_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=n_rng)
            result = simulation.run_until(
                protocol.reset_machinery.fully_computing,
                max_interactions=4000 * n * max(1, protocol.dmax),
                check_interval=n,
                reason="fully-computing",
            )
            times.append(result.parallel_time)
        stats = TrialStatistics.from_values(f"propagate-reset (n={n})", n, times)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "D_max": SublinearTimeSSR(n, depth=1, rmax_multiplier=rmax_multiplier).dmax,
                "mean recovery time": stats.mean,
                "max recovery time": stats.maximum,
                "mean / log2 n": stats.mean / max(1.0, math.log2(n)),
            }
        )
    return rows


__all__ = [
    "PRACTICAL_CONSTANTS",
    "run_binary_tree_assignment",
    "run_optimal_silent_scaling",
    "run_propagate_reset",
]
