"""Ablations of the protocols' tunable constants.

The paper fixes several constants asymptotically (``R_max = 60 ln n``,
``D_max = Theta(n)`` or ``Theta(log n)``, ``T_H = Theta(H n^{1/(H+1)})``,
``S_max = Theta(n^2)``) and the correctness/time proofs lean on them.  These
ablations quantify what each constant buys at simulable sizes:

* ``run_dormancy_ablation`` -- Lemma 4.2 needs the dormant phase of
  ``Optimal-Silent-SSR`` to be long enough for the slow fratricide election to
  finish; too small a ``D_max`` means frequent multi-leader awakenings, extra
  reset epochs, and a longer stabilization time.
* ``run_timer_ablation`` -- Lemma 5.6 needs ``T_H`` (the edge-timer horizon of
  ``Detect-Name-Collision``) to be at least the order of the bounded-epidemic
  hitting time tau_{H+1}; too small a ``T_H`` makes detection paths expire
  before they can be checked and slows detection down.
* ``run_sync_range_ablation`` -- Lemma 5.6 also needs ``S_max`` large enough
  that a fresh impostor rarely guesses a matching sync value; a tiny ``S_max``
  does not break safety but allows coincidental "consistent" answers and hence
  slower detection.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.propagate_reset import RESETTING
from repro.core.sublinear import SublinearTimeSSR
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.api import experiment_runner, read_params


@experiment_runner("ablation_dormancy")
def run_dormancy_ablation(params: Mapping, run: RunConfig) -> List[Dict]:
    """Stabilization time of Optimal-Silent-SSR as a function of ``D_max / n``."""
    opts = read_params(params, n=32, dmax_factors=(1.0, 2.0, 4.0, 8.0), trials=8)
    n, dmax_factors, trials = opts["n"], opts["dmax_factors"], opts["trials"]
    rows: List[Dict] = []
    factor_rngs = spawn_rngs(run.seed, len(dmax_factors))
    for factor, factor_rng in zip(dmax_factors, factor_rngs):
        times: List[float] = []
        for trial_rng in spawn_rngs(factor_rng, trials):
            protocol = OptimalSilentSSR(
                n, rmax_multiplier=4.0, dmax_factor=factor, emax_factor=16.0
            )
            configuration = protocol.random_configuration(trial_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
            result = simulation.run_until_stabilized(max_interactions=4000 * n * n)
            times.append(result.parallel_time)
        stats = TrialStatistics.from_values(f"dormancy (factor={factor})", n, times)
        rows.append(
            {
                "n": n,
                "D_max / n": factor,
                "trials": trials,
                "mean stabilization time": stats.mean,
                "max stabilization time": stats.maximum,
            }
        )
    return rows


@experiment_runner("ablation_timer")
def run_timer_ablation(params: Mapping, run: RunConfig) -> List[Dict]:
    """Collision-detection time of Sublinear-Time-SSR as a function of ``T_H``."""
    opts = read_params(params, n=20, depth=1, timer_multipliers=(0.5, 2.0, 8.0), trials=8)
    n, depth, trials = opts["n"], opts["depth"], opts["trials"]
    timer_multipliers = opts["timer_multipliers"]
    rows: List[Dict] = []
    multiplier_rngs = spawn_rngs(run.seed, len(timer_multipliers))
    for multiplier, multiplier_rng in zip(timer_multipliers, multiplier_rngs):
        detection_times: List[float] = []
        for trial_rng in spawn_rngs(multiplier_rng, trials):
            protocol = SublinearTimeSSR(
                n, depth=depth, rmax_multiplier=3.0, timer_multiplier=multiplier
            )
            configuration = protocol.planted_collision_configuration(trial_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
            result = simulation.run_until(
                lambda config: any(state.role == RESETTING for state in config),
                max_interactions=400 * n * n,
                check_interval=max(1, n // 2),
                reason="collision-detected",
            )
            detection_times.append(result.parallel_time)
        protocol = SublinearTimeSSR(
            n, depth=depth, rmax_multiplier=3.0, timer_multiplier=multiplier
        )
        stats = TrialStatistics.from_values(f"timer (x{multiplier})", n, detection_times)
        rows.append(
            {
                "n": n,
                "H": depth,
                "timer multiplier": multiplier,
                "T_H": protocol.detector.timer_max,
                "trials": trials,
                "mean detection time": stats.mean,
                "max detection time": stats.maximum,
            }
        )
    return rows


@experiment_runner("ablation_sync_range")
def run_sync_range_ablation(params: Mapping, run: RunConfig) -> List[Dict]:
    """Collision-detection time as a function of ``S_max`` (0 = paper default 2 n^2)."""
    opts = read_params(params, n=20, depth=1, sync_values=(2, 8, 0), trials=8)
    n, depth, trials = opts["n"], opts["depth"], opts["trials"]
    sync_values = opts["sync_values"]
    rows: List[Dict] = []
    value_rngs = spawn_rngs(run.seed, len(sync_values))
    for value, value_rng in zip(sync_values, value_rngs):
        effective = value if value else None
        detection_times: List[float] = []
        for trial_rng in spawn_rngs(value_rng, trials):
            protocol = SublinearTimeSSR(
                n, depth=depth, rmax_multiplier=3.0, sync_values=effective
            )
            configuration = protocol.planted_collision_configuration(trial_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
            result = simulation.run_until(
                lambda config: any(state.role == RESETTING for state in config),
                max_interactions=400 * n * n,
                check_interval=max(1, n // 2),
                reason="collision-detected",
            )
            detection_times.append(result.parallel_time)
        protocol = SublinearTimeSSR(n, depth=depth, rmax_multiplier=3.0, sync_values=effective)
        stats = TrialStatistics.from_values(f"sync (S={value})", n, detection_times)
        rows.append(
            {
                "n": n,
                "H": depth,
                "S_max": protocol.detector.sync_values,
                "trials": trials,
                "mean detection time": stats.mean,
            }
        )
    return rows


__all__ = ["run_dormancy_ablation", "run_sync_range_ablation", "run_timer_ablation"]
