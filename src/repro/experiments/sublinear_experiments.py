"""Experiments E9 and E10: ``Sublinear-Time-SSR``.

* E9 (Theorem 5.7, Table 1 rows 3-4): stabilization time as a function of the
  depth parameter ``H``.  Starting from a planted name collision (the
  situation the detector exists for), larger ``H`` should detect and recover
  faster, with ``H = 0`` (direct detection) the slowest and
  ``H = Theta(log n)`` the fastest.
* E10 (Lemmas 5.4 / 5.5, Figure 2): safety.  After a clean configuration no
  collision is ever falsely detected; adversarially corrupted history trees
  cause at most a bounded disruption and the protocol still stabilizes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.adversary.initial_configs import corrupted_tree_configuration
from repro.analysis.theory import predicted_parallel_time
from repro.core.propagate_reset import RESETTING
from repro.core.sublinear import SublinearTimeSSR
from repro.engine.hooks import CountingHook
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.api import experiment_runner, read_params

#: Reduced reset constant used by default; the paper's R_max = 60 ln n adds a
#: large additive overhead that hides the H-dependence at simulable sizes.
PRACTICAL_RMAX_MULTIPLIER = 3.0


def _make_protocol(
    n: int,
    depth: Optional[int],
    rmax_multiplier: float,
    timer_multiplier: float = 8.0,
) -> SublinearTimeSSR:
    return SublinearTimeSSR(
        n,
        depth=depth,
        rmax_multiplier=rmax_multiplier,
        timer_multiplier=timer_multiplier,
    )


@experiment_runner("sublinear_tradeoff")
def run_sublinear_tradeoff(params: Mapping, run: RunConfig) -> List[Dict]:
    """E9: stabilization time from a planted name collision, per depth ``H``.

    ``None`` in ``depths`` selects ``H = ceil(log2 n)`` (the O(log n) regime).
    """
    opts = read_params(
        params,
        n=24,
        depths=(0, 1, 2, None),
        trials=10,
        rmax_multiplier=PRACTICAL_RMAX_MULTIPLIER,
        max_time_factor=60.0,
    )
    n, depths, trials = opts["n"], opts["depths"], opts["trials"]
    rmax_multiplier, max_time_factor = opts["rmax_multiplier"], opts["max_time_factor"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(depths))
    for depth, depth_rng in zip(depths, rng_streams):
        times: List[float] = []
        detection_times: List[float] = []
        for trial_rng in spawn_rngs(depth_rng, trials):
            protocol = _make_protocol(n, depth, rmax_multiplier)
            configuration = protocol.planted_collision_configuration(trial_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
            cap = int(max_time_factor * n * n)
            # First: how long until the collision is detected (some agent resets)?
            detection = simulation.run_until(
                lambda config: any(state.role == RESETTING for state in config),
                max_interactions=cap,
                check_interval=max(1, n // 2),
                reason="collision-detected",
            )
            detection_times.append(detection.parallel_time)
            # Then: run on until full stabilization (fresh names, full rosters, ranks).
            result = simulation.run_until_stabilized(max_interactions=cap, check_interval=n)
            times.append(result.parallel_time)
        effective_depth = protocol.depth
        stats = TrialStatistics.from_values(f"sublinear (H={effective_depth})", n, times)
        detection_stats = TrialStatistics.from_values(
            f"detection (H={effective_depth})", n, detection_times
        )
        predicted = predicted_parallel_time("sublinear", n, depth=max(effective_depth, 1))
        rows.append(
            {
                "n": n,
                "H": effective_depth,
                "trials": trials,
                "mean detection time": detection_stats.mean,
                "mean stabilization time": stats.mean,
                "max stabilization time": stats.maximum,
                "predicted shape": predicted,
                "T_H": getattr(protocol.detector, "timer_max", 0),
            }
        )
    return rows


@experiment_runner("sublinear_scaling")
def run_sublinear_scaling(params: Mapping, run: RunConfig) -> List[Dict]:
    """E9 (companion): stabilization time vs ``n`` at a fixed depth ``H``."""
    opts = read_params(
        params, ns=(8, 16, 32), depth=1, trials=8,
        rmax_multiplier=PRACTICAL_RMAX_MULTIPLIER,
    )
    ns, depth, trials = opts["ns"], opts["depth"], opts["trials"]
    rmax_multiplier = opts["rmax_multiplier"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        times: List[float] = []
        for trial_rng in spawn_rngs(n_rng, trials):
            protocol = _make_protocol(n, depth, rmax_multiplier)
            configuration = protocol.planted_collision_configuration(trial_rng)
            simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
            result = simulation.run_until_stabilized(
                max_interactions=80 * n * n, check_interval=n
            )
            times.append(result.parallel_time)
        effective_depth = protocol.depth
        stats = TrialStatistics.from_values(f"sublinear (n={n})", n, times)
        rows.append(
            {
                "n": n,
                "H": effective_depth,
                "trials": trials,
                "mean stabilization time": stats.mean,
                "predicted shape": predicted_parallel_time(
                    "sublinear", n, depth=max(effective_depth, 1)
                ),
            }
        )
    return rows


@experiment_runner("history_tree_safety")
def run_safety(params: Mapping, run: RunConfig) -> List[Dict]:
    """E10: no false collision detections from clean configurations.

    From a stabilized configuration (unique names, full rosters, correct
    ranks) the protocol is run for ``horizon_factor * n`` parallel time and
    the number of interactions in which any agent enters the Resetting role is
    counted -- the safety lemmas say it must be zero.  The same horizon is
    then run from a configuration with adversarially corrupted history trees,
    where a bounded number of resets is allowed but the run must end
    stabilized again.
    """
    opts = read_params(
        params, n=16, depth=2, horizon_factor=30.0, trials=5,
        rmax_multiplier=PRACTICAL_RMAX_MULTIPLIER,
    )
    n, depth, trials = opts["n"], opts["depth"], opts["trials"]
    horizon_factor, rmax_multiplier = opts["horizon_factor"], opts["rmax_multiplier"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, trials)
    clean_false_positives = 0
    corrupted_recovered = 0
    corrupted_resets = 0
    for trial_rng in rng_streams:
        # Clean start: count any reset as a false positive.
        protocol = _make_protocol(n, depth, rmax_multiplier)
        configuration = protocol.ranked_configuration(trial_rng)
        resets = CountingHook(
            lambda a, b: a.role == RESETTING or b.role == RESETTING
        )
        simulation = Simulation(protocol, configuration=configuration, rng=trial_rng, hooks=[resets])
        simulation.run(int(horizon_factor * n * n))
        if resets.count > 0:
            clean_false_positives += 1

        # Corrupted trees: must re-stabilize within the horizon.
        protocol = _make_protocol(n, depth, rmax_multiplier)
        configuration = corrupted_tree_configuration(protocol, trial_rng)
        resets = CountingHook(lambda a, b: a.role == RESETTING or b.role == RESETTING)
        simulation = Simulation(protocol, configuration=configuration, rng=trial_rng, hooks=[resets])
        result = simulation.run_until_stabilized(
            max_interactions=int(4 * horizon_factor * n * n), check_interval=n
        )
        corrupted_recovered += int(result.stopped)
        corrupted_resets += int(resets.count > 0)
    rows.append(
        {
            "n": n,
            "H": depth,
            "trials": trials,
            "clean runs with false positives": clean_false_positives,
            "corrupted runs recovered": corrupted_recovered,
            "corrupted runs that reset": corrupted_resets,
        }
    )
    return rows


__all__ = [
    "PRACTICAL_RMAX_MULTIPLIER",
    "run_safety",
    "run_sublinear_scaling",
    "run_sublinear_tradeoff",
]
