"""Experiment E14: the synthetic coin of Section 6.

Measures the empirical bias of the harvested bits and the number of
interactions an agent needs per bit (expected 4), confirming that the paper's
protocols can be derandomized without changing their asymptotic running
times.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.derandomize.synthetic_coin import (
    SyntheticCoinProtocol,
    expected_interactions_per_bit,
)
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.api import experiment_runner, read_params


@experiment_runner("synthetic_coin")
def run_synthetic_coin(params: Mapping, run: RunConfig) -> List[Dict]:
    """Bias and harvesting rate of the time-multiplexed synthetic coin."""
    opts = read_params(params, ns=(16, 64, 256), bits_needed=16)
    ns, bits_needed = opts["ns"], opts["bits_needed"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        protocol = SyntheticCoinProtocol(n, bits_needed=bits_needed)
        simulation = Simulation(protocol, rng=n_rng)
        result = simulation.run_until_correct(
            max_interactions=500 * n * bits_needed, check_interval=n
        )
        ones = 0
        total_bits = 0
        total_interactions = 0
        for state in simulation.configuration:
            ones += state.bits.count("1")
            total_bits += len(state.bits)
            total_interactions += state.interactions
        rows.append(
            {
                "n": n,
                "bits per agent": bits_needed,
                "completed": result.stopped,
                "parallel time": result.parallel_time,
                "fraction of ones": ones / total_bits if total_bits else 0.0,
                "interactions per bit": total_interactions / total_bits if total_bits else 0.0,
                "expected interactions per bit": expected_interactions_per_bit(),
            }
        )
    return rows


__all__ = ["run_synthetic_coin"]
