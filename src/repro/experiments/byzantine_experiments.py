"""Byzantine experiments: tolerance curves and approximate consensus.

Both families exercise the persistent-adversary machinery end to end: a
:class:`~repro.adversary.byzantine.ByzantineSpec` rides on the
:class:`~repro.engine.run_config.RunConfig` into any of the three engines,
the adversarial agent selection is bit-identical across engines and
``--jobs`` layouts (see ``tests/adversary/test_byzantine.py``), and
:mod:`repro.analysis.tolerance` turns the per-trial results into tolerance
curves with the censoring conventions of the stabilization analysis.

* ``byzantine_tolerance``: for each catalogue protocol, the fraction of
  trials that stabilize (honest scope, within the cap) as a function of the
  Byzantine fraction ``f``, from adversarial starting configurations --
  self-stabilization *and* persistent hostility at once.  The summary per
  protocol is the largest tolerated ``f`` before the curve first fails.
* ``epsilon_consensus``: the approximate-consensus averaging workload
  against ``random_reply`` adversaries, with the measured time to
  epsilon-agreement next to the AlgorithmOne phase-count prediction
  ``p_end = log(eps) / log(f / (n - f))`` (valid for ``n > 2f``).

Strategy choice is deliberate: ``worst_case`` maximizes per-interaction
damage against ranking/leader protocols, while for averaging workloads its
smallest-index tie-break degenerates into always claiming value 0 -- which
*helps* agreement -- so the consensus family defaults to ``random_reply``,
whose uniform claims keep re-inflating the spread the honest averaging
contracts.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Mapping

from repro.adversary.byzantine import ByzantineSpec
from repro.analysis.tolerance import max_tolerated_fraction, measure_tolerance
from repro.core.epsilon_consensus import (
    EpsilonConsensusProtocol,
    theoretical_phase_count,
)
from repro.engine.protocol import PopulationProtocol
from repro.engine.results import TrialStatistics
from repro.engine.run_config import RunConfig
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.harness import run_trials
from repro.experiments.stress_experiments import make_stress_protocol

#: Default Byzantine fractions for the tolerance sweep.  ``ByzantineSpec``
#: rounds to whole agents, so at quick-scale ``n`` adjacent fractions may
#: realize the same count; rows echo the realized count.
DEFAULT_FRACTIONS = (0.1, 0.2, 0.35)


def make_tolerance_protocol(name: str, n: int, **kwargs) -> PopulationProtocol:
    """The tolerance catalogue: the stress protocols plus the consensus workload."""
    if name == "epsilon-consensus":
        return EpsilonConsensusProtocol(n, **kwargs)
    return make_stress_protocol(name, n)


def _base_seed(run: RunConfig) -> int:
    return run.seed if isinstance(run.seed, int) else 0


@experiment_runner("byzantine_tolerance")
def run_byzantine_tolerance(params: Mapping, run: RunConfig) -> List[Dict]:
    """Tolerance curve per catalogue protocol: stabilized fraction vs ``f``.

    Each (protocol, fraction) setting runs ``trials`` independent trials
    from adversarial starting configurations (``random_configuration``) with
    a persistent :class:`ByzantineSpec` of the given strategy, and measures
    the fraction that stabilized (honest scope) within the cap.  Rows carry
    the per-protocol tolerance threshold -- the largest fraction before the
    curve first drops below ``threshold`` -- so the curve and its summary
    live in one table.
    """
    opts = read_params(
        params,
        protocols=("silent-n-state", "reset-wave", "epsilon-consensus"),
        n=12,
        fractions=DEFAULT_FRACTIONS,
        trials=4,
        strategy="worst_case",
        threshold=0.5,
    )
    n, trials = opts["n"], opts["trials"]
    seed = _base_seed(run)
    rows: List[Dict] = []
    for name in opts["protocols"]:
        curve = measure_tolerance(
            protocol_factory=lambda name=name: make_tolerance_protocol(name, n),
            fractions=opts["fractions"],
            trials=trials,
            run=run.replace(
                # crc32, not hash(): str hashing is salted per process, which
                # would break same-seed reproducibility across runs.
                seed=(seed, n, zlib.crc32(name.encode()) % (2**16))
            ),
            strategy=opts["strategy"],
            configuration_factory=lambda protocol, rng: protocol.random_configuration(rng),
            label=name,
        )
        tolerated = max_tolerated_fraction(curve, threshold=opts["threshold"])
        for point in curve:
            spec = ByzantineSpec(fraction=point["fraction"], strategy=opts["strategy"])
            rows.append(
                {
                    "protocol": name,
                    "n": n,
                    "strategy": opts["strategy"],
                    "fraction": point["fraction"],
                    "byzantine count": spec.count(n),
                    "trials": point["trials"],
                    "stabilized fraction": point["stabilized fraction"],
                    "mean time": point["mean time"],
                    "p90 time": point["p90 time"],
                    "max tolerated f": tolerated,
                }
            )
    return rows


@experiment_runner("epsilon_consensus")
def run_epsilon_consensus(params: Mapping, run: RunConfig) -> List[Dict]:
    """Approximate consensus vs ``random_reply`` adversaries: theory and measurement.

    Runs the polarized-start averaging workload to epsilon-agreement at each
    Byzantine fraction and reports the measured parallel time next to the
    AlgorithmOne phase count ``p_end = log(eps) / log(f / (n - f))``
    (``eps = tolerance_levels / levels``; one phase is parallel time 1, i.e.
    ``n`` interactions).  Fractions with ``n <= 2f`` are beyond the
    approximate-consensus impossibility bound: their ``theory phases`` is
    ``None`` and the measured row documents the breakdown.
    """
    opts = read_params(
        params,
        n=16,
        levels=16,
        tolerance_levels=1,
        fractions=(0.1, 0.2, 0.4),
        trials=4,
        strategy="random_reply",
    )
    n, trials = opts["n"], opts["trials"]
    eps = opts["tolerance_levels"] / opts["levels"]
    seed = _base_seed(run)
    rows: List[Dict] = []
    for fraction in opts["fractions"]:
        spec = ByzantineSpec(fraction=float(fraction), strategy=opts["strategy"])
        count = spec.count(n)
        results = run_trials(
            protocol_factory=lambda: EpsilonConsensusProtocol(
                n,
                levels=opts["levels"],
                tolerance_levels=opts["tolerance_levels"],
            ),
            trials=trials,
            run=run.replace(seed=(seed, n, int(round(fraction * 10_000))), byzantine=spec),
        )
        statistics = TrialStatistics.from_values(
            f"epsilon-consensus f={fraction}",
            n,
            [result.parallel_time for result in results],
        )
        theory = (
            theoretical_phase_count(n, count, eps) if n > 2 * count else None
        )
        rows.append(
            {
                "n": n,
                "levels": opts["levels"],
                "eps": eps,
                "fraction": float(fraction),
                "byzantine count": count,
                "theory valid (n > 2f)": n > 2 * count,
                "theory phases": theory,
                "trials": trials,
                "stabilized fraction": sum(
                    1 for result in results if result.stopped
                ) / len(results),
                "mean time": statistics.mean,
                "p90 time": statistics.quantile(0.9),
                "time per theory phase": (
                    statistics.mean / theory if theory else None
                ),
            }
        )
    return rows


__all__ = [
    "DEFAULT_FRACTIONS",
    "make_tolerance_protocol",
    "run_byzantine_tolerance",
    "run_epsilon_consensus",
]
