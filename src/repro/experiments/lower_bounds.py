"""Experiments E3 and E13: the paper's lower bounds.

* E3 (Observation 2.6): any *silent* SSLE protocol needs Omega(n) time.  The
  witness configuration is the protocol's silent single-leader configuration
  with one extra copy of the leader state: nothing can happen until the two
  leaders meet directly, which takes ``>= n/3`` expected parallel time.
* E13 (Section 1.1): any SSLE protocol needs Omega(log n) time, because from
  the all-leaders configuration ``n - 1`` agents must each interact at least
  once (a coupon-collector argument).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping

from repro.adversary.initial_configs import duplicate_leader_silent_configuration
from repro.core.fratricide import FratricideLeaderElection
from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.propagate_reset import RESETTING
from repro.engine.results import TrialStatistics
from repro.engine.rng import spawn_rngs
from repro.engine.run_config import RunConfig
from repro.engine.simulation import Simulation
from repro.experiments.api import experiment_runner, read_params
from repro.experiments.optimal_silent_experiments import PRACTICAL_CONSTANTS
from repro.processes.coupon_collector import simulate_all_agents_interact
from repro.processes.fratricide_process import simulate_fratricide_interactions


@experiment_runner("silent_lower_bound")
def run_silent_lower_bound(params: Mapping, run: RunConfig) -> List[Dict]:
    """E3: time until the duplicated leader is noticed in ``Optimal-Silent-SSR``.

    From the stable configuration plus a duplicated rank-1 agent, the first
    state change requires the two rank-1 agents to meet, after which the
    protocol resets.  The measured waiting time is compared against the
    Observation 2.6 lower bound of ``n / 3``.
    """
    opts = read_params(params, ns=(16, 32, 64, 128), trials=20)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        times: List[float] = []
        for trial_rng in spawn_rngs(n_rng, trials):
            protocol = OptimalSilentSSR(n, **PRACTICAL_CONSTANTS)
            configuration = duplicate_leader_silent_configuration(protocol)
            simulation = Simulation(protocol, configuration=configuration, rng=trial_rng)
            result = simulation.run_until(
                lambda config: any(state.role == RESETTING for state in config),
                max_interactions=200 * n * n,
                check_interval=max(1, n // 4),
                reason="collision-noticed",
            )
            times.append(result.parallel_time)
        stats = TrialStatistics.from_values(f"silent-lb (n={n})", n, times)
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean time to notice": stats.mean,
                "lower bound n/3": n / 3.0,
                "mean / (n/3)": stats.mean / (n / 3.0),
            }
        )
    return rows


@experiment_runner("log_lower_bound")
def run_log_lower_bound(params: Mapping, run: RunConfig) -> List[Dict]:
    """E13: Omega(log n) for any SSLE protocol, via the all-leaders configuration.

    Reports (a) the coupon-collector time for all agents to interact at least
    once -- the lower bound itself, ``~ 0.5 ln n`` parallel time -- and (b) the
    convergence time of the one-bit fratricide election from all leaders,
    showing that the bound is far from tight for that particular protocol.
    """
    opts = read_params(params, ns=(64, 256, 1024), trials=100)
    ns, trials = opts["ns"], opts["trials"]
    rows: List[Dict] = []
    rng_streams = spawn_rngs(run.seed, len(ns))
    for n, n_rng in zip(ns, rng_streams):
        interact = TrialStatistics.from_values(
            f"all-interact (n={n})",
            n,
            [simulate_all_agents_interact(n, n_rng) / n for _ in range(trials)],
        )
        fratricide = TrialStatistics.from_values(
            f"fratricide (n={n})",
            n,
            [simulate_fratricide_interactions(n, rng=n_rng) / n for _ in range(trials)],
        )
        rows.append(
            {
                "n": n,
                "trials": trials,
                "mean all-interact time": interact.mean,
                "0.5 ln n": 0.5 * math.log(n),
                "mean fratricide time": fratricide.mean,
                "fratricide / n": fratricide.mean / n,
            }
        )
    return rows


@experiment_runner("fratricide_failure")
def run_fratricide_failure(params: Mapping, run: RunConfig) -> List[Dict]:
    """Companion to E3/E13: the initialized protocol is not self-stabilizing.

    From the all-followers configuration the fratricide protocol can never
    elect a leader; the run confirms zero leaders persist for the whole
    horizon, motivating the paper's reset-based constructions.
    """
    opts = read_params(params, n=32, horizon_factor=50.0)
    n, horizon_factor = opts["n"], opts["horizon_factor"]
    protocol = FratricideLeaderElection(n)
    configuration = protocol.all_followers_configuration()
    simulation = Simulation(protocol, configuration=configuration, rng=run.seed)
    simulation.run(int(horizon_factor * n))
    leaders = protocol.leader_count(simulation.configuration)
    return [
        {
            "n": n,
            "horizon (parallel time)": horizon_factor,
            "leaders at end": leaders,
            "self-stabilizing": leaders == 1,
        }
    ]


__all__ = ["run_fratricide_failure", "run_log_lower_bound", "run_silent_lower_bound"]
