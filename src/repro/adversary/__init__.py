"""The adversary subsystem: everything that attacks a running protocol.

Self-stabilization means recovering from *any* configuration under *any*
fair scheduler -- in particular from configurations and interaction patterns
an adversary has crafted.  This subpackage centralizes the attacks:

* **Adversarial starting points** (:mod:`repro.adversary.initial_configs`):
  worst-case and maximally colliding configurations for each protocol,
  planted name collisions and corrupted history trees, the all-leaders /
  zero-leader configurations behind the lower bounds.
* **Transient faults** (:mod:`repro.adversary.faults`,
  :mod:`repro.adversary.plan`, :mod:`repro.adversary.campaign`): the
  one-shot injector plus the declarative :class:`FaultPlan` timeline
  (corrupt / reset / reseed bursts pinned to interaction counts) that both
  engines execute mid-run via :class:`FaultCampaign`.
* **Adversarial schedulers** (:mod:`repro.adversary.schedulers`): biased
  (weight-proportional) and epoch-partition (split-then-merge)
  implementations of the engine's scheduler contract, declaratively
  described by :class:`SchedulerSpec`.
* **Persistent Byzantine agents** (:mod:`repro.adversary.byzantine`): a
  fraction of the population permanently runs a hostile transition table
  (worst-case responder / random-reply / cheat-then-punish), implemented as
  a state-tag overlay on the compiled encoding so all three engines honour
  it; declaratively described by :class:`ByzantineSpec`.

Plans, scheduler specs, and byzantine specs ride on
:class:`~repro.engine.run_config.RunConfig` (fields ``faults``,
``scheduler``, and ``byzantine``), so a stress scenario flows unchanged from
the CLI through the harness into any engine and into persisted artifact
provenance; see ``docs/ARCHITECTURE.md`` (adversary subsystem) and the
``repro stress`` CLI subcommand.
"""

from repro.adversary.byzantine import (
    BYZANTINE_STRATEGIES,
    ByzantineOverlay,
    ByzantineOverlayError,
    ByzantineSpec,
    build_byzantine_overlay,
)
from repro.adversary.campaign import FaultCampaign, FaultCheckpoint, signature_digest
from repro.adversary.faults import inject_transient_faults
from repro.adversary.initial_configs import (
    corrupted_tree_configuration,
    duplicate_leader_silent_configuration,
    optimal_silent_adversarial_configuration,
    silent_n_state_worst_case,
    sublinear_adversarial_configuration,
)
from repro.adversary.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.adversary.schedulers import (
    SCHEDULER_KINDS,
    BiasedPairScheduler,
    EpochPartitionScheduler,
    SchedulerSpec,
)

__all__ = [
    "BYZANTINE_STRATEGIES",
    "BiasedPairScheduler",
    "ByzantineOverlay",
    "ByzantineOverlayError",
    "ByzantineSpec",
    "build_byzantine_overlay",
    "EpochPartitionScheduler",
    "FAULT_KINDS",
    "FaultCampaign",
    "FaultCheckpoint",
    "FaultEvent",
    "FaultPlan",
    "SCHEDULER_KINDS",
    "SchedulerSpec",
    "corrupted_tree_configuration",
    "duplicate_leader_silent_configuration",
    "inject_transient_faults",
    "optimal_silent_adversarial_configuration",
    "signature_digest",
    "silent_n_state_worst_case",
    "sublinear_adversarial_configuration",
]
