"""Adversarial initial configurations and transient fault injection.

Self-stabilization means recovering from *any* configuration -- in particular
from configurations an adversary (or an arbitrary burst of transient memory
faults) has crafted.  This subpackage centralizes the nasty starting points
used by the experiments and tests:

* worst-case and maximally-colliding configurations for each protocol,
* configurations with planted name collisions, ghost names, and corrupted
  history trees for ``Sublinear-Time-SSR``,
* the all-leaders / zero-leader configurations behind the lower bounds,
* a transient fault injector that corrupts a chosen number of agents mid-run.
"""

from repro.adversary.faults import inject_transient_faults
from repro.adversary.initial_configs import (
    corrupted_tree_configuration,
    duplicate_leader_silent_configuration,
    optimal_silent_adversarial_configuration,
    silent_n_state_worst_case,
    sublinear_adversarial_configuration,
)

__all__ = [
    "corrupted_tree_configuration",
    "duplicate_leader_silent_configuration",
    "inject_transient_faults",
    "optimal_silent_adversarial_configuration",
    "silent_n_state_worst_case",
    "sublinear_adversarial_configuration",
]
