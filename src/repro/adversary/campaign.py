"""Mid-run execution of a :class:`~repro.adversary.plan.FaultPlan`.

Both engines execute fault campaigns through one :class:`FaultCampaign`
object: the loop engine applies events to its :class:`Configuration`
(:meth:`FaultCampaign.apply_to_configuration`), the compiled batch engine to
its integer state-index array (:meth:`FaultCampaign.apply_to_batch`,
scattering encoded indices and updating the cached state-count vector
incrementally -- no ``O(n)`` decode of agent objects, so million-agent
campaigns stay fast).

Determinism contract
--------------------
Every event draws its victims and replacement states from its own generator,
spawned via :func:`~repro.engine.rng.spawn_seed_sequences` from the engine's
generator *seed sequence* -- not from the engine's random stream.  Three
properties follow:

1. **Cross-engine equivalence.**  The two engines consume the shared stream
   differently (their trajectory equivalence is statistical), but both build
   their generator from the same per-trial ``SeedSequence``, so a campaign
   injects bit-identical (victim, state) sequences on either engine.  After
   an event that determines the full configuration (``reseed``, or
   ``corrupt`` with ``count == n``) the engines' configurations are exactly
   equal -- ``tests/adversary/test_campaign.py`` asserts checkpoint equality.
2. **Jobs invariance.**  A trial's fault stream depends only on
   ``(root seed, trial index)``, never on which worker process runs it, so
   ``run_trials`` results remain bit-identical for every ``jobs`` value.
3. **Plan-shape stability.**  Event ``k`` always uses child ``k``; adding an
   event never perturbs the draws of the events before it.

Each applied event records a :class:`FaultCheckpoint` (victims, injected
state signatures, and the post-event signature histogram); the engines expose
the campaign as ``simulation.campaign`` and a combined CRC digest of the
checkpoints travels inside ``SimulationResult.extra`` so cross-engine and
cross-jobs equivalence can be asserted from results alone.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.adversary.plan import FaultEvent, FaultPlan
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.results import SimulationResult
from repro.engine.rng import spawn_seed_sequences
from repro.telemetry import metrics as _metrics
from repro.engine.state import AgentState

#: Keys the campaign writes into ``SimulationResult.extra``.
FAULT_EVENTS_KEY = "fault_events"
LAST_FAULT_AT_KEY = "last_fault_at"
FAULT_DIGEST_KEY = "fault_checkpoint_digest"


def signature_digest(signature_counts: Dict[Hashable, int]) -> int:
    """Stable CRC32 of a signature histogram.

    Entries are ordered by ``repr`` (signatures of different shapes need not
    be comparable) and hashed as text, so the digest is reproducible across
    processes -- unlike ``hash()``, which salts strings per interpreter.
    """
    body = "|".join(
        f"{key}:{count}"
        for key, count in sorted(
            ((repr(sig), int(count)) for sig, count in signature_counts.items())
        )
    )
    return zlib.crc32(body.encode())


@dataclass
class FaultCheckpoint:
    """Record of one applied fault event (the campaign's audit trail)."""

    index: int
    at: int
    kind: str
    victims: List[int]
    injected_signatures: List[Hashable]
    signature_counts: Dict[Hashable, int]
    digest: int = field(init=False)

    def __post_init__(self) -> None:
        self.digest = signature_digest(self.signature_counts)


class FaultCampaign:
    """Executes one plan's events against a running simulation.

    Built by the engines inside ``run(config)`` when the
    :class:`~repro.engine.run_config.RunConfig` carries a
    :class:`~repro.adversary.plan.FaultPlan`; the engine exposes it as
    ``simulation.campaign`` so callers can inspect the checkpoints.
    """

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        self.plan = plan
        self._rngs = [
            np.random.default_rng(seq)
            for seq in spawn_seed_sequences(rng, len(plan.events))
        ]
        self.checkpoints: List[FaultCheckpoint] = []

    # -- event drawing (engine-independent) ------------------------------------------

    def _draw_event(
        self, index: int, protocol: PopulationProtocol
    ) -> Tuple[FaultEvent, np.ndarray, List[AgentState]]:
        """Victims and replacement states of event ``index``.

        The draw order is fixed -- victims first, then one state per victim
        in victim order -- so both engines consume the event generator
        identically.
        """
        event = self.plan.events[index]
        rng = self._rngs[index]
        n = protocol.n
        if event.kind == "reseed":
            victims = np.arange(n, dtype=np.int64)
        elif event.agent_ids is not None:
            victims = np.asarray(event.agent_ids, dtype=np.int64)
            if len(victims) and int(victims.max()) >= n:
                raise ValueError(
                    f"event {index}: agent_ids {list(event.agent_ids)} out of "
                    f"range for population size {n}"
                )
        else:
            if event.count > n:
                raise ValueError(
                    f"event {index}: fault count {event.count} exceeds "
                    f"population size {n}"
                )
            victims = (
                rng.choice(n, size=event.count, replace=False).astype(np.int64)
                if event.count
                else np.empty(0, dtype=np.int64)
            )
        if event.kind == "reset":
            states = [protocol.initial_state(int(victim), rng) for victim in victims]
        else:
            states = [protocol.random_state(rng) for _ in victims]
        return event, victims, states

    # -- engine entry points -----------------------------------------------------------

    def apply_to_configuration(
        self, index: int, protocol: PopulationProtocol, configuration: Configuration
    ) -> FaultCheckpoint:
        """Apply event ``index`` in place on a loop-engine configuration."""
        event, victims, states = self._draw_event(index, protocol)
        for victim, state in zip(victims, states):
            configuration[int(victim)] = state
        checkpoint = FaultCheckpoint(
            index=index,
            at=event.at,
            kind=event.kind,
            victims=[int(v) for v in victims],
            injected_signatures=[protocol.state_signature(s) for s in states],
            signature_counts=dict(
                configuration.signature_counts(protocol.state_signature)
            ),
        )
        self.checkpoints.append(checkpoint)
        _metrics.record_fault_injection(event.kind, len(victims))
        return checkpoint

    def apply_to_batch(self, index: int, simulation) -> FaultCheckpoint:
        """Apply event ``index`` on a compiled batch engine.

        ``simulation`` is a
        :class:`~repro.engine.batch_simulation.BatchSimulation` (duck-typed
        to keep this module engine-agnostic).  Replacement states are
        encoded to table indices and scattered straight into the index
        array; the state-count vector is updated incrementally, so the cost
        is ``O(burst size)``, never ``O(n)`` object churn.
        """
        protocol = simulation.protocol
        event, victims, states = self._draw_event(index, protocol)
        compiled = simulation.compiled
        indices = np.fromiter(
            (compiled.encode_state(state) for state in states),
            dtype=np.int32,
            count=len(states),
        )
        simulation.apply_fault(victims, indices)
        counts = simulation.state_counts
        present = np.nonzero(counts > 0)[0]
        signature_counts = {
            protocol.state_signature(compiled.states[int(k)]): int(counts[k])
            for k in present
        }
        checkpoint = FaultCheckpoint(
            index=index,
            at=event.at,
            kind=event.kind,
            victims=[int(v) for v in victims],
            injected_signatures=[protocol.state_signature(s) for s in states],
            signature_counts=signature_counts,
        )
        self.checkpoints.append(checkpoint)
        _metrics.record_fault_injection(event.kind, len(victims))
        return checkpoint

    # -- result annotation -------------------------------------------------------------

    @property
    def digest(self) -> int:
        """CRC32 over the per-checkpoint digests (order-sensitive)."""
        body = ",".join(str(checkpoint.digest) for checkpoint in self.checkpoints)
        return zlib.crc32(body.encode())

    def annotate(self, result: SimulationResult) -> SimulationResult:
        """Stamp campaign provenance into ``result.extra``.

        ``last_fault_at`` is what :mod:`repro.analysis.stabilization` uses to
        measure recovery from the final burst.  It records the last event
        that actually *applied* -- events beyond the run's interaction cap
        are truncated by the engines and must not shift the recovery origin.
        The digest makes cross-engine and cross-jobs equivalence checkable
        from results alone.
        """
        last_applied = self.checkpoints[-1].at if self.checkpoints else 0
        result.extra[FAULT_EVENTS_KEY] = float(len(self.checkpoints))
        result.extra[LAST_FAULT_AT_KEY] = float(last_applied)
        result.extra[FAULT_DIGEST_KEY] = float(self.digest)
        return result


__all__ = [
    "FAULT_DIGEST_KEY",
    "FAULT_EVENTS_KEY",
    "FaultCampaign",
    "FaultCheckpoint",
    "LAST_FAULT_AT_KEY",
    "signature_digest",
]
