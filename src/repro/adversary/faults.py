"""Transient fault injection.

Self-stabilization is exactly tolerance to transient faults: a burst of
arbitrary memory corruptions leaves the system in some arbitrary configuration,
from which it must re-stabilize on its own.  The injector below corrupts a
chosen number of agents in place (using the protocol's adversarial state
sampler), which examples and tests use to demonstrate recovery mid-run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import RngLike, make_rng


def inject_transient_faults(
    protocol: PopulationProtocol,
    configuration: Configuration,
    count: int,
    rng: RngLike = None,
    agent_ids: Optional[Sequence[int]] = None,
) -> List[int]:
    """Corrupt ``count`` agents of ``configuration`` in place.

    Each corrupted agent's state is replaced by ``protocol.random_state``.
    Returns the list of corrupted agent indices.

    Parameters
    ----------
    agent_ids:
        Explicit victims; if omitted, ``count`` distinct agents are chosen
        uniformly at random.
    """
    n = len(configuration)
    if not 0 <= count <= n:
        raise ValueError(f"fault count must be in [0, {n}], got {count}")
    rng = make_rng(rng)
    if agent_ids is None:
        victims = list(rng.choice(n, size=count, replace=False)) if count else []
    else:
        victims = [int(v) for v in agent_ids]
        if len(victims) != count:
            raise ValueError("agent_ids length must equal count")
        if any(not 0 <= v < n for v in victims):
            raise ValueError("agent_ids must be valid agent indices")
        if len(set(victims)) != len(victims):
            # [3, 3] with count=2 would pass the length check yet corrupt
            # only one distinct agent, silently weakening the burst.
            raise ValueError(f"agent_ids contains duplicates: {victims}")
    for victim in victims:
        configuration[int(victim)] = protocol.random_state(rng)
    return [int(v) for v in victims]


__all__ = ["inject_transient_faults"]
