"""Constructors for adversarial initial configurations.

Each constructor documents which claim of the paper it stresses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.optimal_silent import OptimalSilentSSR
from repro.core.silent_n_state import SilentNStateSSR, SilentNStateState
from repro.core.sublinear import SublinearTimeSSR
from repro.core.sublinear.history_tree import TreeNode
from repro.core.sublinear.names import random_name
from repro.engine.configuration import Configuration
from repro.engine.rng import RngLike, make_rng


def silent_n_state_worst_case(protocol: SilentNStateSSR) -> Configuration:
    """Theorem 2.4's Omega(n^2) configuration for ``Silent-n-state-SSR``."""
    return protocol.worst_case_configuration()


def duplicate_leader_silent_configuration(protocol: OptimalSilentSSR) -> Configuration:
    """Observation 2.6's configuration: the stable ranking plus one duplicated leader.

    Take the silent configuration (ranks ``1..n``) and overwrite one non-leader
    agent with a copy of the rank-1 state.  Because the original configuration
    is silent, the only productive interaction is the direct meeting of the two
    rank-1 agents, which takes Omega(n) expected parallel time -- the silent
    lower bound.
    """
    configuration = protocol.stable_configuration()
    leader_state = configuration[0]
    # Agents are listed in rank order; overwrite the last one (rank n != 1).
    configuration[protocol.n - 1] = leader_state.clone()
    return configuration


def optimal_silent_adversarial_configuration(
    protocol: OptimalSilentSSR, rng: RngLike = None
) -> Configuration:
    """Fully arbitrary configuration for ``Optimal-Silent-SSR`` (Theorem 4.3 setting)."""
    rng = make_rng(rng)
    return protocol.random_configuration(rng)


def sublinear_adversarial_configuration(
    protocol: SublinearTimeSSR, rng: RngLike = None
) -> Configuration:
    """Fully arbitrary configuration for ``Sublinear-Time-SSR`` (Theorem 5.7 setting)."""
    rng = make_rng(rng)
    return protocol.random_configuration(rng)


def corrupted_tree_configuration(
    protocol: SublinearTimeSSR,
    rng: RngLike = None,
    fake_sync: int = 1,
) -> Configuration:
    """Unique names but adversarially planted, mutually inconsistent history trees.

    Every agent's tree claims a fabricated interaction (with sync value
    ``fake_sync + agent index``, so no two agents agree) with the *next* agent
    in a cycle, with fresh timers.  Lemma 5.5 says such data either triggers at
    most one extra reset or ages out within ``O(T_H)`` time, after which the
    configuration is safe; the experiments verify stabilization still happens
    quickly.
    """
    if protocol.depth < 1:
        raise ValueError("corrupted trees require the history-tree detector (H >= 1)")
    rng = make_rng(rng)
    configuration = protocol.unique_names_configuration(rng)
    timer_max = protocol.detector.timer_max
    n = protocol.n
    for index in range(n):
        state = configuration[index]
        neighbour = configuration[(index + 1) % n]
        planted_child = TreeNode.singleton(neighbour.name)
        state.tree.attach(planted_child, sync=fake_sync + index, timer=timer_max)
    return configuration


__all__ = [
    "corrupted_tree_configuration",
    "duplicate_leader_silent_configuration",
    "optimal_silent_adversarial_configuration",
    "silent_n_state_worst_case",
    "sublinear_adversarial_configuration",
]
