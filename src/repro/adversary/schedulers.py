"""Adversarial pair schedulers and their declarative spec.

Self-stabilization must hold under *any* fair scheduler, not just the
uniform one the paper analyses.  This module provides two adversarial
implementations of the :class:`~repro.engine.scheduler.PairScheduler`
contract plus :class:`SchedulerSpec`, the frozen declarative form that rides
on a :class:`~repro.engine.run_config.RunConfig` (and therefore flows from
the CLI into artifact provenance).

* :class:`BiasedPairScheduler` -- agents carry non-uniform selection
  weights; both the initiator and the responder are drawn proportionally to
  weight (the responder conditioned on being distinct).  A "hot set" of
  over-scheduled agents models e.g. physically clustered devices.
* :class:`EpochPartitionScheduler` -- the population is temporarily split
  into blocks; until a configured interaction count, pairs are drawn only
  *within* a block (each within-block ordered pair equally likely), after
  which the blocks merge and scheduling becomes uniform.  This models
  transient network partitions and stresses information flow across the
  merge.

Performance
-----------
``BiasedPairScheduler`` groups agents into *weight classes* and samples with
one uniform draw per agent slot: the draw selects the class through the
class-probability partition of ``[0, 1)`` and its position within the class
from the leftover fraction of the same uniform -- no per-agent alias or
cumulative table, so the hot arrays stay cache-resident.  When every class
occupies a contiguous agent-id range (always true for specs built from
``hot_fraction``) the member lookup collapses to arithmetic.  Batches are
drawn in large chunks and served as slices, amortizing the fixed NumPy call
cost over the batch engine's adaptively sized windows.  The compiled-engine
overhead versus the uniform scheduler is gated at <= 25% by
``benchmarks/test_bench_adversary.py``.

``EpochPartitionScheduler`` is time-inhomogeneous: it tracks the interaction
position to know which side of the split boundary each drawn pair falls on.
The loop engine applies every pair it is served, so the internal position is
exact there; the batch engine discards window tails after conflicts and
re-aligns the scheduler with :meth:`~repro.engine.scheduler.PairScheduler.sync`
before every draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.engine.rng import RngLike
from repro.engine.scheduler import (
    PairScheduler,
    UniformPairScheduler,
    draw_uniform_pairs,
)

#: Scheduler kinds understood by :class:`SchedulerSpec`.
SCHEDULER_KINDS = ("uniform", "biased", "epoch")


class BiasedPairScheduler(PairScheduler):
    """Ordered pairs with weight-proportional agent selection.

    The initiator is agent ``a`` with probability ``w_a / W``; the responder
    is drawn from the same distribution conditioned on being distinct from
    the initiator (rare collisions are redrawn).  Zero-weight agents are
    never scheduled; at least two agents must have positive weight.
    """

    def __init__(
        self,
        n: int,
        weights: Sequence[float],
        rng: RngLike = None,
        batch_size: int = 4096,
        chunk: int = 1 << 16,
    ):
        super().__init__(n, rng=rng, batch_size=batch_size)
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {weights.shape}")
        if not np.all(np.isfinite(weights)) or np.any(weights < 0):
            raise ValueError("weights must be finite and non-negative")
        if int(np.count_nonzero(weights)) < 2:
            raise ValueError("at least two agents need positive weight")
        self.weights = weights.copy()

        # Group agents into classes of equal weight (stable sort keeps each
        # class's member ids ascending); zero-weight agents are dropped.
        order = np.argsort(weights, kind="stable")
        sorted_weights = weights[order]
        positive = sorted_weights > 0
        order = order[positive]
        sorted_weights = sorted_weights[positive]
        boundaries = np.nonzero(np.diff(sorted_weights))[0] + 1
        starts = np.concatenate(([0], boundaries)).astype(np.int64)
        ends = np.concatenate((boundaries, [len(order)])).astype(np.int64)
        sizes = (ends - starts).astype(np.float64)
        class_probability = sorted_weights[starts] * sizes
        class_probability /= class_probability.sum()
        self._cum = np.cumsum(class_probability)
        self._cum[-1] = 1.0
        cum_low = self._cum - class_probability
        # Positions per unit of probability mass: a uniform that lands in a
        # class also encodes, through its leftover fraction, a uniform member.
        self._inv = sizes / class_probability
        limits = sizes.astype(np.int64) - 1
        contiguous = bool(np.all(order[ends - 1] - order[starts] == limits))
        self._bases = order[starts].astype(np.int64) if contiguous else None
        self._members = None if contiguous else order.astype(np.int64)
        # Fused per-class lookup tables: agent = min(u * inv + offset, top),
        # gathered through the class index -- three small-array gathers total.
        first = order[starts].astype(np.float64) if contiguous else starts.astype(np.float64)
        self._offset = first - cum_low * self._inv
        self._top = first.astype(np.int64) + limits
        self._chunk = max(int(chunk), batch_size)
        self._buffer_i: np.ndarray = np.empty(0, dtype=np.int64)
        self._buffer_j: np.ndarray = np.empty(0, dtype=np.int64)
        self._buffer_pos = 0

    def _class_of(self, u: np.ndarray) -> np.ndarray:
        """Class index of each uniform (the partition of [0, 1) by ``_cum``).

        ``searchsorted`` pays a per-element binary search even over a
        two-entry table; for the handful of weight classes real campaigns
        use, accumulating vectorized comparisons is several times faster.
        """
        thresholds = self._cum
        if len(thresholds) <= 8:
            cls = np.zeros(len(u), dtype=np.int64)
            for threshold in thresholds[:-1]:
                cls += u >= threshold
            return cls
        cls = np.searchsorted(thresholds, u, side="right")
        np.minimum(cls, len(thresholds) - 1, out=cls)
        return cls

    def _sample_agents(self, count: int) -> np.ndarray:
        """Draw ``count`` independent weight-proportional agent ids."""
        u = self._rng.random(count)
        cls = self._class_of(u)
        slot = (u * self._inv[cls] + self._offset[cls]).astype(np.int64)
        # The fused multiply-add can land one ulp outside the class's slot
        # range at the boundaries; clamp both ends (a one-ulp class bleed is
        # harmless, an out-of-range index is not).
        np.minimum(slot, self._top[cls], out=slot)
        np.maximum(slot, 0, out=slot)
        if self._members is None:
            return slot
        return self._members[slot]

    def _draw(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        agents = self._sample_agents(2 * count)
        initiators = agents[:count]
        responders = agents[count:]
        colliding = np.nonzero(initiators == responders)[0]
        while len(colliding):
            responders[colliding] = self._sample_agents(len(colliding))
            colliding = colliding[initiators[colliding] == responders[colliding]]
        return initiators, responders

    def pair_batch(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        if count >= self._chunk:
            return self._draw(count)
        if self._buffer_pos + count > len(self._buffer_i):
            self._buffer_i, self._buffer_j = self._draw(self._chunk)
            self._buffer_pos = 0
        window = slice(self._buffer_pos, self._buffer_pos + count)
        self._buffer_pos += count
        return self._buffer_i[window], self._buffer_j[window]


class EpochPartitionScheduler(PairScheduler):
    """Temporarily partitioned scheduling: within-block pairs, then merge.

    Until ``split_interactions`` interactions, each drawn pair is uniform
    over the within-block ordered pairs (block ``b`` is selected with
    probability proportional to ``s_b * (s_b - 1)``, so every within-block
    ordered pair is equally likely overall); afterwards pairs are uniform
    over the whole population.  Blocks are the ``blocks`` near-equal
    contiguous id ranges; every block needs at least two agents.
    """

    def __init__(
        self,
        n: int,
        blocks: int,
        split_interactions: int,
        rng: RngLike = None,
        batch_size: int = 4096,
    ):
        super().__init__(n, rng=rng, batch_size=batch_size)
        if blocks < 2:
            raise ValueError(f"blocks must be at least 2, got {blocks}")
        if n < 2 * blocks:
            raise ValueError(
                f"every block needs at least 2 agents: n={n} cannot hold {blocks} blocks"
            )
        if split_interactions < 0:
            raise ValueError(
                f"split_interactions must be non-negative, got {split_interactions}"
            )
        self.blocks = int(blocks)
        self.split_interactions = int(split_interactions)
        bounds = np.array([b * n // blocks for b in range(blocks + 1)], dtype=np.int64)
        self._starts = bounds[:-1]
        self._sizes = (bounds[1:] - bounds[:-1]).astype(np.float64)
        pair_weight = self._sizes * (self._sizes - 1.0)
        self._cum = np.cumsum(pair_weight / pair_weight.sum())
        self._cum[-1] = 1.0
        self._position = 0

    def sync(self, interactions: int) -> None:
        """Align the phase clock with the number of applied interactions."""
        self._position = int(interactions)

    def _draw_partitioned(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = self._rng
        block = np.searchsorted(self._cum, rng.random(count), side="right")
        np.minimum(block, len(self._cum) - 1, out=block)
        sizes = self._sizes[block]
        local_i = (rng.random(count) * sizes).astype(np.int64)
        np.minimum(local_i, sizes.astype(np.int64) - 1, out=local_i)
        local_j = (rng.random(count) * (sizes - 1.0)).astype(np.int64)
        np.minimum(local_j, sizes.astype(np.int64) - 2, out=local_j)
        local_j += local_j >= local_i
        start = self._starts[block]
        return start + local_i, start + local_j

    def pair_batch(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        head = min(count, max(0, self.split_interactions - self._position))
        self._position += count
        if head == count:
            return self._draw_partitioned(count)
        if head == 0:
            return draw_uniform_pairs(self._rng, self._n, count)
        head_i, head_j = self._draw_partitioned(head)
        tail_i, tail_j = draw_uniform_pairs(self._rng, self._n, count - head)
        return (
            np.concatenate((head_i, tail_i)),
            np.concatenate((head_j, tail_j)),
        )


@dataclass(frozen=True)
class SchedulerSpec:
    """Declarative, serializable description of a pair scheduler.

    Carried on :class:`~repro.engine.run_config.RunConfig` (field
    ``scheduler``) so the scheduling adversary flows from the CLI through
    the harness into both engines and into artifact provenance.

    Kinds
    -----
    ``uniform``
        The paper's scheduler; no parameters.
    ``biased``
        Either explicit per-agent ``weights`` (small populations, tests) or
        the declarative hot set: the first ``round(hot_fraction * n)``
        agents get weight ``hot_weight``, the rest weight 1 -- the form that
        scales to any ``n`` and serializes compactly.
    ``epoch``
        ``blocks`` near-equal contiguous blocks, merged after
        ``split_time * n`` interactions (``split_time`` is in parallel-time
        units so the spec is population-size independent).
    """

    kind: str = "uniform"
    weights: Optional[Tuple[float, ...]] = None
    hot_fraction: Optional[float] = None
    hot_weight: Optional[float] = None
    blocks: Optional[int] = None
    split_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler kind {self.kind!r}, expected one of {SCHEDULER_KINDS}"
            )
        if self.weights is not None:
            object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        forbidden = {
            "uniform": ("weights", "hot_fraction", "hot_weight", "blocks", "split_time"),
            "biased": ("blocks", "split_time"),
            "epoch": ("weights", "hot_fraction", "hot_weight"),
        }[self.kind]
        for name in forbidden:
            if getattr(self, name) is not None:
                raise ValueError(f"{self.kind} scheduler does not take {name}")
        if self.kind == "biased":
            explicit = self.weights is not None
            hot = self.hot_fraction is not None or self.hot_weight is not None
            if explicit == hot:
                raise ValueError(
                    "biased scheduler needs either weights or hot_fraction+hot_weight"
                )
            if hot:
                if self.hot_fraction is None or self.hot_weight is None:
                    raise ValueError("hot_fraction and hot_weight must be given together")
                if not 0.0 < self.hot_fraction < 1.0:
                    raise ValueError(
                        f"hot_fraction must be in (0, 1), got {self.hot_fraction}"
                    )
                if self.hot_weight <= 0.0:
                    raise ValueError(f"hot_weight must be positive, got {self.hot_weight}")
        if self.kind == "epoch":
            if self.blocks is None or self.split_time is None:
                raise ValueError("epoch scheduler needs blocks and split_time")
            if self.blocks < 2:
                raise ValueError(f"blocks must be at least 2, got {self.blocks}")
            if self.split_time <= 0.0:
                raise ValueError(f"split_time must be positive, got {self.split_time}")

    def build(self, n: int, rng: RngLike = None) -> PairScheduler:
        """Instantiate the scheduler for a population of size ``n``.

        ``rng`` is normally the engine's generator, so scheduler and
        transition randomness share one stream exactly like the default
        uniform scheduler does.
        """
        if self.kind == "uniform":
            return UniformPairScheduler(n, rng=rng)
        if self.kind == "biased":
            if self.weights is not None:
                return BiasedPairScheduler(n, self.weights, rng=rng)
            hot = max(1, min(n - 1, int(round(self.hot_fraction * n))))
            weights = np.ones(n)
            weights[:hot] = self.hot_weight
            return BiasedPairScheduler(n, weights, rng=rng)
        return EpochPartitionScheduler(
            n,
            blocks=self.blocks,
            split_interactions=int(round(self.split_time * n)),
            rng=rng,
        )

    def to_dict(self) -> Dict:
        """JSON-able form (``None`` fields included for a stable schema)."""
        return {
            "kind": self.kind,
            "weights": list(self.weights) if self.weights is not None else None,
            "hot_fraction": self.hot_fraction,
            "hot_weight": self.hot_weight,
            "blocks": self.blocks,
            "split_time": self.split_time,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SchedulerSpec":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        known = {"kind", "weights", "hot_fraction", "hot_weight", "blocks", "split_time"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SchedulerSpec fields: {sorted(unknown)}")
        weights = payload.get("weights")
        return cls(
            kind=payload.get("kind", "uniform"),
            weights=tuple(weights) if weights is not None else None,
            hot_fraction=payload.get("hot_fraction"),
            hot_weight=payload.get("hot_weight"),
            blocks=payload.get("blocks"),
            split_time=payload.get("split_time"),
        )

    def describe(self) -> str:
        """Short human-readable summary (used by the CLI and reports)."""
        if self.kind == "uniform":
            return "uniform"
        if self.kind == "biased":
            if self.weights is not None:
                return f"biased (explicit weights, {len(self.weights)} agents)"
            return f"biased (hot {self.hot_fraction:.0%} x{self.hot_weight:g})"
        return f"epoch ({self.blocks} blocks until t={self.split_time:g})"


__all__ = [
    "BiasedPairScheduler",
    "EpochPartitionScheduler",
    "SCHEDULER_KINDS",
    "SchedulerSpec",
]
