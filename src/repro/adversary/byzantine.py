"""Persistent Byzantine adversaries as a compiled-table overlay.

The fault campaigns of :mod:`repro.adversary.campaign` are *transient*: they
corrupt states at pinned interaction counts and then watch the protocol
recover.  The paper's self-stabilization guarantees are only interesting
against adversaries that *stay* hostile, so this module adds a persistent
mode: a :class:`ByzantineSpec` on :class:`~repro.engine.run_config.RunConfig`
marks a fraction ``f`` of agents as permanently adversarial, each running a
hostile transition table for the rest of the run.

Implementation: an extra state *tag* in the compiled encoding.  With ``S``
base states and ``T`` tags, the overlay is a fresh
:class:`~repro.engine.compiled.CompiledProtocol` over ``T * S`` states where
index ``tag * S + s`` means "an agent whose underlying base state is ``s``,
behaving per ``tag``".  Tag 0 is honest (so honest agents keep their base
indices unchanged), and the tag-0/tag-0 block of the extended table *is* the
base table.  Because the overlay is just another compiled table, all three
engines honour it with the same machinery they already have: the compiled
engine swaps its table and re-tags its index array, the counts engine widens
its count vector to ``T * S`` columns, and the loop engine routes
interactions involving tagged agents through the table (honest pairs still
call the protocol's own ``transition``).

Strategies
----------
``worst_case``
    The worst-case responder of the tolerance literature: in every
    interaction the Byzantine agent *presents* the claimed state that
    maximizes the probability of changing its honest partner's state (ties
    broken toward the smallest state index), while its own recorded state
    stays frozen.  Byzantine/Byzantine interactions are null.
``random_reply``
    The Byzantine agent presents a uniformly random claimed state each
    interaction (its own state again frozen).  The overlay stores the exact
    outcome *mixture* per honest partner -- duplicate outcomes across claims
    are merged into one branch -- so the table stays small for protocols
    whose transitions collapse many claims to few results.
``cheat_then_punish``
    The abort-flow shape from game-theoretic protocol analyses: the agent
    *cooperates* (runs the honest table, tag 1) until it participates in a
    null interaction -- evidence the population is quiescing -- then flips
    permanently to a *punish* tag (tag 2) and plays ``worst_case`` forever.
    The flip itself is a table transition, so silence detection remains
    exact: a configuration with a cooperating cheater is never silent.

Stop semantics
--------------
Stop conditions are evaluated on the *honest* sub-population: the extended
histogram is sliced to its tag-0 block before the base protocol's predicates
see it (agreement/validity among honest agents, the standard Byzantine
fault-tolerance convention).  ``silent`` is the exception -- it uses the
extended table's ``changes`` mask directly, which is exact.

Selection determinism
---------------------
The adversarial agent set must be *bit-identical* across engines and
``--jobs`` layouts.  Selection therefore consumes a dedicated side stream
derived from the trial generator's ``SeedSequence`` with an explicit spawn
key (:func:`~repro.engine.rng.batch_seed_sequence`), never the trial stream
itself: one ``multivariate_hypergeometric`` draw over the initial state
histogram fixes *how many* agents of each base state turn Byzantine (all the
counts engine needs), and the identity engines then mark the lowest agent
ids within each state -- a pure function of the start configuration and the
draw, independent of engine and process layout.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.engine.compiled import CompiledProtocol, _as_raw_tables
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import batch_seed_sequence
from repro.engine.state import AgentState
from repro.telemetry import metrics as _metrics

#: Hostile-table strategies understood by :class:`ByzantineSpec`.
BYZANTINE_STRATEGIES = ("worst_case", "random_reply", "cheat_then_punish")

#: The honest tag; honest agents keep their base state indices.
HONEST_TAG = 0

#: ``SimulationResult.extra`` keys written by :meth:`ByzantineOverlay.annotate`.
BYZANTINE_STRATEGY_KEY = "byzantine_strategy"
BYZANTINE_COUNT_KEY = "byzantine_count"
BYZANTINE_STATE_COUNTS_KEY = "byzantine_state_counts"
BYZANTINE_AGENTS_KEY = "byzantine_agents"
BYZANTINE_DIGEST_KEY = "byzantine_selection_digest"

#: Agent-id lists above this size are dropped from ``extra`` (the digest and
#: per-state counts still identify the selection).
_ANNOTATE_AGENT_LIMIT = 4096

#: Branch cap for the overlay table (``random_reply`` mixtures can in the
#: worst case need one branch per distinct outcome).
_MAX_OVERLAY_BRANCHES = 64

#: Side-stream id for selection randomness (the trial-batch machinery uses
#: stream 0 of the same namespace; byzantine runs are never trial-batched,
#: but a distinct id keeps the streams disjoint by construction).
_SELECTION_STREAM = 1


class ByzantineOverlayError(RuntimeError):
    """Raised when a protocol cannot support the requested overlay."""


@dataclass(frozen=True)
class ByzantineSpec:
    """Declarative, serializable description of a persistent Byzantine mode.

    Carried on :class:`~repro.engine.run_config.RunConfig` (field
    ``byzantine``) so the adversary flows from the CLI through the harness
    into all three engines and into artifact provenance, exactly like
    :class:`~repro.adversary.schedulers.SchedulerSpec`.

    Attributes
    ----------
    fraction:
        Fraction ``f`` of the population turned adversarial, in ``(0, 1)``.
        The realized count is ``max(1, min(n - 1, round(f * n)))`` -- at
        least one adversary, and at least one honest agent to measure.
    strategy:
        One of :data:`BYZANTINE_STRATEGIES` (see the module docstring).
    """

    fraction: float
    strategy: str = "worst_case"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"byzantine fraction must be in (0, 1), got {self.fraction}"
            )
        if self.strategy not in BYZANTINE_STRATEGIES:
            raise ValueError(
                f"unknown byzantine strategy {self.strategy!r}, "
                f"expected one of {BYZANTINE_STRATEGIES}"
            )

    def count(self, n: int) -> int:
        """Number of adversarial agents in a population of size ``n``."""
        return max(1, min(n - 1, int(round(self.fraction * n))))

    def to_dict(self) -> Dict:
        """JSON-able form (stable schema)."""
        return {"fraction": self.fraction, "strategy": self.strategy}

    @classmethod
    def from_dict(cls, payload: Dict) -> "ByzantineSpec":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        unknown = set(payload) - {"fraction", "strategy"}
        if unknown:
            raise ValueError(f"unknown ByzantineSpec fields: {sorted(unknown)}")
        return cls(
            fraction=payload["fraction"],
            strategy=payload.get("strategy", "worst_case"),
        )

    def describe(self) -> str:
        """Short human-readable summary (used by the CLI and reports)."""
        return f"byzantine ({self.fraction:.0%} {self.strategy})"


class TaggedState(AgentState):
    """A base protocol state wrapped with a behaviour tag.

    Exemplar state of the overlay's extended encoding.  Attribute reads fall
    through to the wrapped base state so field-inspecting code (predicates,
    ``state_mask`` lambdas, the CLI's summaries) keeps working on tagged
    states.
    """

    def __init__(self, tag: int, base: AgentState):
        self.tag = int(tag)
        self.base = base

    def signature(self):
        return ("byzantine", self.tag, self.base.signature())

    def assign(self, exemplar: "TaggedState") -> None:
        """In-place update from an exemplar (the loop engine's mutation path)."""
        self.tag = exemplar.tag
        self.base = exemplar.base.clone()

    def __getattr__(self, name: str):
        if name.startswith("_") or name in ("tag", "base"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "base"), name)


class ByzantineProtocolView(PopulationProtocol):
    """The overlay's protocol facade over :class:`TaggedState` populations.

    Serves two roles: it is the ``protocol`` of the extended
    :class:`CompiledProtocol` (supplying ``state_signature`` for tagged
    states), and it is what the loop engine runs after installation --
    honest/honest interactions delegate to the base protocol's own
    ``transition``, anything involving a tagged agent goes through the
    extended table, and the stop predicates implement the honest-scope
    semantics described in the module docstring.
    """

    def __init__(self, base_protocol: PopulationProtocol, spec: ByzantineSpec):
        super().__init__(base_protocol.n)
        self.base_protocol = base_protocol
        self.spec = spec
        self.name = f"{base_protocol.name}+{spec.strategy}"
        self._overlay: Optional["ByzantineOverlay"] = None

    # -- configuration construction -------------------------------------------

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> AgentState:
        return TaggedState(HONEST_TAG, self.base_protocol.initial_state(agent_id, rng))

    # -- dynamics ---------------------------------------------------------------

    def transition(self, initiator, responder, rng: np.random.Generator) -> None:
        if initiator.tag == HONEST_TAG and responder.tag == HONEST_TAG:
            self.base_protocol.transition(initiator.base, responder.base, rng)
            return
        compiled = self._overlay.compiled
        row = compiled.encode_state(initiator) * compiled.num_states + compiled.encode_state(
            responder
        )
        if not compiled.changes[row]:
            return
        if compiled.branch_cumprob is None:
            out_i = int(compiled.result_initiator[row])
            out_j = int(compiled.result_responder[row])
        else:
            branch = int(
                np.searchsorted(compiled.branch_cumprob[row], rng.random(), side="right")
            )
            branch = min(branch, compiled.branch_cumprob.shape[1] - 1)
            out_i = int(compiled.result_initiator[row, branch])
            out_j = int(compiled.result_responder[row, branch])
        initiator.assign(compiled.states[out_i])
        responder.assign(compiled.states[out_j])

    # -- predicates (honest scope) ----------------------------------------------

    def _extended_counts(self, configuration: Configuration) -> np.ndarray:
        compiled = self._overlay.compiled
        indices = np.fromiter(
            (compiled.encode_state(state) for state in configuration),
            dtype=np.int64,
            count=len(configuration),
        )
        return np.bincount(indices, minlength=compiled.num_states)

    def _counts_stop(self, kind: str, configuration: Configuration) -> bool:
        # Route through the overlay's counts-predicate so the loop engine
        # evaluates the *same* honest-scope function as the compiled and
        # counts engines.  (The base protocol's configuration predicates may
        # reference the full population size -- e.g. "all n ranks distinct" --
        # which an honest sub-population can never satisfy; the counts form
        # is the scale-free convention all engines share.)
        return bool(self._overlay.resolve_stop(kind)(self._extended_counts(configuration)))

    def is_correct(self, configuration: Configuration) -> bool:
        return self._counts_stop("correct", configuration)

    def has_stabilized(self, configuration: Configuration) -> bool:
        return self._counts_stop("stabilized", configuration)

    def is_silent(self, configuration: Configuration) -> bool:
        compiled = self._overlay.compiled
        return compiled.counts_silent(self._extended_counts(configuration))

    # -- compiled-engine hooks ---------------------------------------------------

    def state_signature(self, state: AgentState):
        if isinstance(state, TaggedState):
            return ("byzantine", state.tag, self.base_protocol.state_signature(state.base))
        return self.base_protocol.state_signature(state)

    def enumerate_states(self):
        return None if self._overlay is None else self._overlay.compiled.states


class ByzantineOverlay:
    """The installed form of a :class:`ByzantineSpec` for one run.

    Holds the extended :class:`CompiledProtocol`, the honest-scope stop
    resolution, and the deterministic agent-selection helpers shared by the
    three engines.
    """

    def __init__(
        self,
        spec: ByzantineSpec,
        base: CompiledProtocol,
        compiled: CompiledProtocol,
        view: ByzantineProtocolView,
        tags: int,
        initial_tag: int,
    ):
        self.spec = spec
        self.base = base
        self.compiled = compiled
        self.view = view
        self.tags = tags
        self.initial_tag = initial_tag
        self.num_base_states = base.num_states
        #: Per-base-state adversary histogram fixed by :meth:`draw_marking`.
        self.marked_counts: Optional[np.ndarray] = None
        #: Sorted adversarial agent ids (identity engines only).
        self.marked_ids: Optional[np.ndarray] = None

    # -- deterministic selection -------------------------------------------------

    def draw_marking(
        self, selection_rng: np.random.Generator, base_counts: np.ndarray
    ) -> np.ndarray:
        """Fix how many agents of each base state turn Byzantine.

        One ``multivariate_hypergeometric`` draw over the initial histogram;
        every engine makes exactly this call with the same side-stream
        generator, so the per-state marking is bit-identical everywhere.
        """
        base_counts = np.asarray(base_counts, dtype=np.int64)
        total = int(base_counts.sum())
        marked = selection_rng.multivariate_hypergeometric(
            base_counts, self.spec.count(total)
        ).astype(np.int64)
        self.marked_counts = marked
        _metrics.record_byzantine_install(int(marked.sum()))
        return marked

    def mark_indices(self, indices: np.ndarray, marked_counts: np.ndarray) -> np.ndarray:
        """Re-tag an encoded configuration, marking lowest ids per state.

        Within each base state the ``marked_counts[s]`` agents with the
        smallest ids become adversarial -- a pure function of the start
        configuration and the draw, identical for the loop and compiled
        engines at matched seeds.
        """
        stride = self.num_base_states
        counts = np.bincount(indices, minlength=stride)
        order = np.argsort(indices, kind="stable")
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        position = np.arange(len(indices)) - np.repeat(starts, counts)
        quota = np.repeat(marked_counts, counts)
        marked = np.sort(order[position < quota])
        extended = indices.astype(np.int32, copy=True)
        extended[marked] += np.int32(self.initial_tag * stride)
        self.marked_ids = marked
        return extended

    # -- honest-scope stop resolution ---------------------------------------------

    def honest_counts(self, counts: np.ndarray) -> np.ndarray:
        """Slice an extended histogram down to its honest (tag-0) block."""
        return counts[: self.num_base_states]

    def resolve_stop(self, kind: str):
        """Counts-predicate on the extended histogram for one stop kind.

        Preference order mirrors the engines' own ``_resolve_stop``: the base
        protocol's ``compiled_predicates`` fast path over the honest slice;
        exact extended-table silence; otherwise the decoded honest
        configuration through the slow predicate.
        """
        base_protocol = self.view.base_protocol
        fast = base_protocol.compiled_predicates().get(kind)
        if fast is not None:
            base = self.base
            return lambda counts: fast(self.honest_counts(counts), base)
        if kind == "silent":
            return self.compiled.counts_silent
        slow = {
            "correct": base_protocol.is_correct,
            "stabilized": base_protocol.has_stabilized,
        }[kind]

        def decoded(counts: np.ndarray) -> bool:
            honest = self.honest_counts(counts)
            configuration = Configuration.from_state_indices(
                self.base.states, np.repeat(np.arange(len(honest)), honest)
            )
            return slow(configuration)

        return decoded

    # -- provenance ---------------------------------------------------------------

    def annotate(self, result) -> None:
        """Record the selection in ``result.extra`` (cross-engine comparable)."""
        marked = self.marked_counts
        result.extra[BYZANTINE_STRATEGY_KEY] = self.spec.strategy
        result.extra[BYZANTINE_COUNT_KEY] = int(marked.sum())
        result.extra[BYZANTINE_STATE_COUNTS_KEY] = [int(c) for c in marked]
        digest_source = marked.astype(np.int64).tobytes()
        if self.marked_ids is not None:
            digest_source += self.marked_ids.astype(np.int64).tobytes()
            if len(self.marked_ids) <= _ANNOTATE_AGENT_LIMIT:
                result.extra[BYZANTINE_AGENTS_KEY] = [int(i) for i in self.marked_ids]
        result.extra[BYZANTINE_DIGEST_KEY] = int(zlib.crc32(digest_source))


def byzantine_selection_rng(rng: np.random.Generator) -> np.random.Generator:
    """The dedicated selection generator derived from a trial generator.

    An explicit-spawn-key sibling of the trial's ``SeedSequence`` (see
    :func:`~repro.engine.rng.batch_seed_sequence`): a pure function of the
    trial seed, so every engine derives the same stream, and disjoint from
    the trial stream itself, so installing the overlay never perturbs the
    run's transition randomness.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:
        raise ByzantineOverlayError(
            "byzantine selection needs a SeedSequence-backed generator; "
            "seed the run with an int or a default_rng generator"
        )
    return np.random.default_rng(batch_seed_sequence(seed_seq, stream=_SELECTION_STREAM))


# -- overlay table construction -----------------------------------------------------


def _block_rows(num_base: int, num_ext: int, tag_i: int, tag_j: int) -> np.ndarray:
    """Extended-table row indices of one ``(tag_i, tag_j)`` block, base order."""
    a = np.repeat(np.arange(num_base, dtype=np.int64), num_base)
    b = np.tile(np.arange(num_base, dtype=np.int64), num_base)
    return (tag_i * num_base + a) * num_ext + (tag_j * num_base + b)


def _null_tables(num_ext: int, branches: int) -> Dict[str, np.ndarray]:
    """All-null extended raw tables (every entry maps to itself)."""
    idx = np.arange(num_ext, dtype=np.int64)
    initiator = np.repeat(
        np.repeat(idx, num_ext)[:, None], branches, axis=1
    )
    responder = np.repeat(np.tile(idx, num_ext)[:, None], branches, axis=1)
    probability = np.zeros((num_ext * num_ext, branches), dtype=np.float64)
    probability[:, 0] = 1.0
    changes = np.zeros(num_ext * num_ext, dtype=bool)
    return {
        "initiator": initiator,
        "responder": responder,
        "probability": probability,
        "changes": changes,
    }


def _damage_tables(raw: Dict[str, np.ndarray]):
    """Per-claim change probabilities and the worst-case claim per partner.

    ``resp_damage[c, b]`` is the probability that an honest responder in
    state ``b`` changes when the initiator presents ``c``;
    ``best_claim_responder[b]`` the damage-maximizing claim (argmax ties
    break toward the smallest claim).  Symmetrically for the initiator side.
    """
    num_base = raw["num_states"]
    a_grid = np.repeat(np.arange(num_base), num_base)
    b_grid = np.tile(np.arange(num_base), num_base)
    resp_damage = (
        (raw["probability"] * (raw["responder"] != b_grid[:, None]))
        .sum(axis=1)
        .reshape(num_base, num_base)
    )
    init_damage = (
        (raw["probability"] * (raw["initiator"] != a_grid[:, None]))
        .sum(axis=1)
        .reshape(num_base, num_base)
    )
    return (
        resp_damage,
        np.argmax(resp_damage, axis=0),
        init_damage,
        np.argmax(init_damage, axis=1),
    )


def _fill_base_block(ext: Dict[str, np.ndarray], raw: Dict[str, np.ndarray], num_ext: int):
    """Copy the base table into the honest/honest block (indices unchanged)."""
    num_base = raw["num_states"]
    branches = raw["initiator"].shape[1]
    rows = _block_rows(num_base, num_ext, HONEST_TAG, HONEST_TAG)
    ext["initiator"][rows, :branches] = raw["initiator"]
    ext["initiator"][rows, branches:] = raw["initiator"][:, -1:]
    ext["responder"][rows, :branches] = raw["responder"]
    ext["responder"][rows, branches:] = raw["responder"][:, -1:]
    ext["probability"][rows] = 0.0
    ext["probability"][rows, :branches] = raw["probability"]
    ext["changes"][rows] = raw["changes"]


def _fill_worst_case_blocks(
    ext: Dict[str, np.ndarray],
    raw: Dict[str, np.ndarray],
    num_ext: int,
    byz_tag: int,
) -> None:
    """Fill the ``(byz_tag, honest)`` and ``(honest, byz_tag)`` blocks.

    The adversary presents the damage-maximizing claim, so the honest side's
    outcome branches come from the base row of ``(claim, partner)``; the
    adversary's own index never changes.
    """
    num_base = raw["num_states"]
    branches = raw["initiator"].shape[1]
    a_grid = np.repeat(np.arange(num_base), num_base)
    b_grid = np.tile(np.arange(num_base), num_base)
    resp_damage, best_resp_claim, init_damage, best_init_claim = _damage_tables(raw)

    rows = _block_rows(num_base, num_ext, byz_tag, HONEST_TAG)
    source = best_resp_claim[b_grid] * num_base + b_grid
    ext["initiator"][rows] = (byz_tag * num_base + a_grid)[:, None]
    ext["responder"][rows, :branches] = raw["responder"][source]
    ext["responder"][rows, branches:] = raw["responder"][source][:, -1:]
    ext["probability"][rows] = 0.0
    ext["probability"][rows, :branches] = raw["probability"][source]
    ext["changes"][rows] = resp_damage[best_resp_claim[b_grid], b_grid] > 0.0

    rows = _block_rows(num_base, num_ext, HONEST_TAG, byz_tag)
    source = a_grid * num_base + best_init_claim[a_grid]
    ext["initiator"][rows, :branches] = raw["initiator"][source]
    ext["initiator"][rows, branches:] = raw["initiator"][source][:, -1:]
    ext["responder"][rows] = (byz_tag * num_base + b_grid)[:, None]
    ext["probability"][rows] = 0.0
    ext["probability"][rows, :branches] = raw["probability"][source]
    ext["changes"][rows] = init_damage[a_grid, best_init_claim[a_grid]] > 0.0


def _worst_case_tables(raw: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    num_base = raw["num_states"]
    num_ext = 2 * num_base
    ext = _null_tables(num_ext, raw["initiator"].shape[1])
    _fill_base_block(ext, raw, num_ext)
    _fill_worst_case_blocks(ext, raw, num_ext, byz_tag=1)
    return ext


def _mixture_distributions(raw: Dict[str, np.ndarray]):
    """Honest-side outcome mixtures under a uniformly random claim.

    ``resp_dist[b, r]`` is the probability an honest responder in state ``b``
    ends in ``r`` when the claimed initiator state is uniform over the base
    space; ``init_dist[a, r]`` symmetrically for an honest initiator.
    """
    num_base = raw["num_states"]
    branches = raw["initiator"].shape[1]
    a_grid = np.repeat(np.arange(num_base), num_base)
    b_grid = np.tile(np.arange(num_base), num_base)
    weight = raw["probability"] / num_base
    resp_dist = np.zeros((num_base, num_base), dtype=np.float64)
    init_dist = np.zeros((num_base, num_base), dtype=np.float64)
    np.add.at(
        resp_dist,
        (np.repeat(b_grid[:, None], branches, axis=1), raw["responder"]),
        weight,
    )
    np.add.at(
        init_dist,
        (np.repeat(a_grid[:, None], branches, axis=1), raw["initiator"]),
        weight,
    )
    return resp_dist, init_dist


def _random_reply_tables(raw: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    num_base = raw["num_states"]
    num_ext = 2 * num_base
    resp_dist, init_dist = _mixture_distributions(raw)
    needed = max(
        raw["initiator"].shape[1],
        int((resp_dist > 0).sum(axis=1).max()),
        int((init_dist > 0).sum(axis=1).max()),
    )
    if needed > _MAX_OVERLAY_BRANCHES:
        raise ByzantineOverlayError(
            f"random_reply needs {needed} outcome branches per table entry "
            f"(cap {_MAX_OVERLAY_BRANCHES}); this protocol's transitions keep "
            "too many claims distinguishable -- use strategy='worst_case' or "
            "a smaller state space"
        )
    ext = _null_tables(num_ext, needed)
    _fill_base_block(ext, raw, num_ext)

    agents = np.arange(num_base, dtype=np.int64)
    for partner in range(num_base):
        outcomes = np.nonzero(resp_dist[partner] > 0)[0]
        probabilities = resp_dist[partner][outcomes]
        probabilities = probabilities / probabilities.sum()
        rows = (num_base + agents) * num_ext + partner
        ext["responder"][rows, : len(outcomes)] = outcomes
        ext["responder"][rows, len(outcomes):] = outcomes[-1]
        ext["probability"][rows] = 0.0
        ext["probability"][rows, : len(outcomes)] = probabilities
        ext["changes"][rows] = bool(np.any(outcomes != partner))

        outcomes = np.nonzero(init_dist[partner] > 0)[0]
        probabilities = init_dist[partner][outcomes]
        probabilities = probabilities / probabilities.sum()
        rows = partner * num_ext + (num_base + agents)
        ext["initiator"][rows, : len(outcomes)] = outcomes
        ext["initiator"][rows, len(outcomes):] = outcomes[-1]
        ext["probability"][rows] = 0.0
        ext["probability"][rows, : len(outcomes)] = probabilities
        ext["changes"][rows] = bool(np.any(outcomes != partner))
    return ext


def _cheat_then_punish_tables(raw: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    num_base = raw["num_states"]
    num_ext = 3 * num_base
    branches = raw["initiator"].shape[1]
    ext = _null_tables(num_ext, branches)
    _fill_base_block(ext, raw, num_ext)
    _fill_worst_case_blocks(ext, raw, num_ext, byz_tag=2)

    a_grid = np.repeat(np.arange(num_base), num_base)
    b_grid = np.tile(np.arange(num_base), num_base)
    null_entry = ~raw["changes"]
    flip_prob = np.zeros(branches, dtype=np.float64)
    flip_prob[0] = 1.0

    def fill_cooperate(tag_i: int, tag_j: int) -> None:
        """Cooperating cheaters run the base table under tag 1; on a null
        base interaction every cheating participant flips to the punish tag."""
        rows = _block_rows(num_base, num_ext, tag_i, tag_j)
        offset_i = num_base if tag_i == 1 else 0
        offset_j = num_base if tag_j == 1 else 0
        ext["initiator"][rows, :branches] = raw["initiator"] + offset_i
        ext["initiator"][rows, branches:] = (raw["initiator"] + offset_i)[:, -1:]
        ext["responder"][rows, :branches] = raw["responder"] + offset_j
        ext["responder"][rows, branches:] = (raw["responder"] + offset_j)[:, -1:]
        ext["probability"][rows] = 0.0
        ext["probability"][rows, :branches] = raw["probability"]
        flip_i = (2 * num_base + a_grid if tag_i == 1 else a_grid)[null_entry]
        flip_j = (2 * num_base + b_grid if tag_j == 1 else b_grid)[null_entry]
        ext["initiator"][rows[null_entry]] = flip_i[:, None]
        ext["responder"][rows[null_entry]] = flip_j[:, None]
        ext["probability"][rows[null_entry]] = flip_prob
        # Active pairs change by definition; null pairs change by flipping.
        ext["changes"][rows] = True

    fill_cooperate(1, HONEST_TAG)
    fill_cooperate(HONEST_TAG, 1)
    fill_cooperate(1, 1)
    return ext


_TABLE_BUILDERS = {
    "worst_case": (_worst_case_tables, 2),
    "random_reply": (_random_reply_tables, 2),
    "cheat_then_punish": (_cheat_then_punish_tables, 3),
}


def build_byzantine_overlay(
    protocol: PopulationProtocol,
    compiled: CompiledProtocol,
    spec: ByzantineSpec,
) -> ByzantineOverlay:
    """Build the extended table and its :class:`ByzantineOverlay` wrapper.

    Pure NumPy index arithmetic over the base table's raw form -- no
    transition is ever probed, so construction is ``O(T^2 S^2 B)`` array
    work regardless of how expensive the protocol's Python transition is.
    """
    raw = _as_raw_tables(compiled)
    builder, tags = _TABLE_BUILDERS[spec.strategy]
    ext = builder(raw)
    view = ByzantineProtocolView(protocol, spec)
    states: List[AgentState] = [
        TaggedState(tag, state.clone())
        for tag in range(tags)
        for state in compiled.states
    ]
    if ext["initiator"].shape[1] == 1:
        result_initiator = ext["initiator"][:, 0].astype(np.int32)
        result_responder = ext["responder"][:, 0].astype(np.int32)
        branch_cumprob = None
    else:
        result_initiator = ext["initiator"].astype(np.int32)
        result_responder = ext["responder"].astype(np.int32)
        branch_cumprob = np.minimum(np.cumsum(ext["probability"], axis=1), 1.0)
        branch_cumprob[:, -1] = 1.0
    extended = CompiledProtocol(
        protocol=view,
        states=states,
        result_initiator=result_initiator,
        result_responder=result_responder,
        branch_cumprob=branch_cumprob,
        changes=ext["changes"],
    )
    overlay = ByzantineOverlay(
        spec=spec,
        base=compiled,
        compiled=extended,
        view=view,
        tags=tags,
        initial_tag=1,
    )
    view._overlay = overlay
    return overlay


__all__ = [
    "BYZANTINE_AGENTS_KEY",
    "BYZANTINE_COUNT_KEY",
    "BYZANTINE_DIGEST_KEY",
    "BYZANTINE_STATE_COUNTS_KEY",
    "BYZANTINE_STRATEGIES",
    "BYZANTINE_STRATEGY_KEY",
    "ByzantineOverlay",
    "ByzantineOverlayError",
    "ByzantineProtocolView",
    "ByzantineSpec",
    "HONEST_TAG",
    "TaggedState",
    "build_byzantine_overlay",
    "byzantine_selection_rng",
]
