"""Declarative fault campaigns: what the adversary does, and when.

A :class:`FaultPlan` is a timeline of :class:`FaultEvent` records, each
pinned to an absolute interaction count.  Plans are plain frozen data -- they
carry no population size, no randomness, and no engine state -- so one plan
can ride on a :class:`~repro.engine.run_config.RunConfig` from the CLI
through the experiment harness into either engine, and be persisted verbatim
in artifact provenance.

Event kinds
-----------
``corrupt``
    Replace the states of ``count`` victims (chosen uniformly without
    replacement, or the explicit ``agent_ids``) with draws from the
    protocol's adversarial sampler (``random_state``) -- the paper's
    transient-memory-fault model.
``reset``
    Put the victims back into their *clean* initial states
    (``initial_state``) -- a partial re-initialization, e.g. modelling
    replaced devices joining a running population.
``reseed``
    Redraw the *entire* configuration from the adversarial sampler -- the
    strongest burst, equivalent to restarting the run from a fresh
    adversarial configuration at interaction ``at``.  Immediately after a
    ``reseed`` the configuration is fully adversary-determined, which is what
    makes exact cross-engine checkpoint comparisons possible (see
    :mod:`repro.adversary.campaign`).

Execution semantics (both engines): events fire in timeline order when the
run's interaction count reaches ``at``; the run's stop condition is then
evaluated only after the *last* event, so the resulting
:class:`~repro.engine.results.SimulationResult` measures recovery from the
final burst (see :mod:`repro.analysis.stabilization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Event kinds understood by the campaign executor.
FAULT_KINDS = ("corrupt", "reset", "reseed")


@dataclass(frozen=True)
class FaultEvent:
    """One adversarial intervention pinned to an interaction count.

    Attributes
    ----------
    at:
        Absolute interaction count at which the event fires.  Events whose
        ``at`` lies in the past when the plan starts executing (the engine
        already ran beyond it) fire immediately, in timeline order.
    kind:
        One of :data:`FAULT_KINDS`.
    count:
        Number of victims for ``corrupt``/``reset`` (chosen uniformly
        without replacement from the population).  Mutually exclusive with
        ``agent_ids``; forbidden for ``reseed`` (always the whole
        population).
    agent_ids:
        Explicit, duplicate-free victim indices for ``corrupt``/``reset``.
        Bounds against the population size are checked at application time
        (the plan does not know ``n``).
    """

    at: int
    kind: str = "corrupt"
    count: Optional[int] = None
    agent_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be non-negative, got {self.at}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}, expected one of {FAULT_KINDS}"
            )
        if self.kind == "reseed":
            if self.count is not None or self.agent_ids is not None:
                raise ValueError(
                    "reseed redraws the whole population; count/agent_ids "
                    "must not be given"
                )
            return
        if (self.count is None) == (self.agent_ids is None):
            raise ValueError(
                f"{self.kind} events need exactly one of count or agent_ids"
            )
        if self.agent_ids is not None:
            ids = tuple(int(agent) for agent in self.agent_ids)
            object.__setattr__(self, "agent_ids", ids)
            if len(set(ids)) != len(ids):
                raise ValueError(f"agent_ids contains duplicates: {list(ids)}")
            if any(agent < 0 for agent in ids):
                raise ValueError(f"agent_ids must be non-negative, got {list(ids)}")
        if self.count is not None and self.count < 0:
            raise ValueError(f"fault count must be non-negative, got {self.count}")

    def victim_count(self, n: int) -> int:
        """Number of victims when applied to a population of size ``n``."""
        if self.kind == "reseed":
            return n
        if self.agent_ids is not None:
            return len(self.agent_ids)
        return int(self.count)  # type: ignore[arg-type]

    def to_dict(self) -> Dict:
        """JSON-able form."""
        return {
            "at": self.at,
            "kind": self.kind,
            "count": self.count,
            "agent_ids": list(self.agent_ids) if self.agent_ids is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        unknown = set(payload) - {"at", "kind", "count", "agent_ids"}
        if unknown:
            raise ValueError(f"unknown FaultEvent fields: {sorted(unknown)}")
        agent_ids = payload.get("agent_ids")
        return cls(
            at=payload["at"],
            kind=payload.get("kind", "corrupt"),
            count=payload.get("count"),
            agent_ids=tuple(agent_ids) if agent_ids is not None else None,
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered timeline of fault events.

    Events must be sorted by non-decreasing ``at``; events sharing an ``at``
    fire in listing order.  The empty plan is valid and means "no faults".
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        for event in events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"plan events must be FaultEvent, got {event!r}")
        times = [event.at for event in events]
        if times != sorted(times):
            raise ValueError(f"events must be sorted by interaction count, got {times}")

    def __len__(self) -> int:
        return len(self.events)

    @property
    def last_fault_at(self) -> int:
        """Interaction count of the final event (0 for the empty plan)."""
        return self.events[-1].at if self.events else 0

    @classmethod
    def bursts(
        cls, bursts: Iterable[Tuple[int, int]], kind: str = "corrupt"
    ) -> "FaultPlan":
        """Plan of ``(at, count)`` bursts -- the common campaign shape."""
        return cls(tuple(FaultEvent(at=at, kind=kind, count=count) for at, count in bursts))

    @classmethod
    def reseeds(cls, times: Iterable[int]) -> "FaultPlan":
        """Plan of full adversarial redraws at the given interaction counts."""
        return cls(tuple(FaultEvent(at=at, kind="reseed") for at in times))

    def to_dict(self) -> Dict:
        """JSON-able form."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        unknown = set(payload) - {"events"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(
            tuple(FaultEvent.from_dict(event) for event in payload.get("events", ()))
        )

    def describe(self) -> str:
        """Short human-readable summary (used by the CLI)."""
        if not self.events:
            return "no faults"
        parts: List[str] = []
        for event in self.events:
            if event.kind == "reseed":
                parts.append(f"reseed@{event.at}")
            elif event.agent_ids is not None:
                parts.append(f"{event.kind} {len(event.agent_ids)} ids@{event.at}")
            else:
                parts.append(f"{event.kind} {event.count}@{event.at}")
        return ", ".join(parts)


__all__ = ["FAULT_KINDS", "FaultEvent", "FaultPlan"]
