"""The time-multiplexed synthetic coin (Section 6).

Each agent toggles between the roles ``Alg`` and ``Flip`` on every interaction.
An agent that needs a random bit waits until it is in role ``Alg`` while its
partner is in role ``Flip``; the bit is 1 if the agent was the interaction's
initiator and 0 if it was the responder.  Because the scheduler picks the
ordered pair uniformly at random and the roles are determined by interaction
parity (independent of the partner's identity and of previous harvested bits),
the harvested bits are independent and unbiased.  Each agent harvests a bit
once every 4 interactions in expectation, so collecting ``k`` bits costs
``O(k)`` interactions per agent -- the constant-factor slowdown quoted in
Section 6.

The demonstration protocol below has every agent collect ``bits_needed`` bits;
tests verify unbiasedness and the expected harvesting rate, which is what the
paper's protocols rely on when dormant agents regenerate their random names.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import AgentState

#: Role in which an agent may harvest a random bit.
ALG = "Alg"
#: Role in which an agent serves as the coin for its partner.
FLIP = "Flip"


def expected_interactions_per_bit() -> float:
    """Expected number of an agent's interactions per harvested bit (= 4).

    The agent must be in role ``Alg`` (probability 1/2 by parity) and its
    partner in role ``Flip`` (probability ~1/2, independent), so a bit is
    harvested in roughly one out of four of its interactions.
    """
    return 4.0


class SyntheticCoinState(AgentState):
    """State of an agent collecting synthetic-coin bits."""

    def __init__(self, coin_role: str = ALG, bits: str = "", bits_needed: int = 0):
        self.coin_role = coin_role
        self.bits = bits
        self.bits_needed = bits_needed
        # Bookkeeping (excluded from the signature): interactions participated in.
        self._interactions = 0

    @property
    def done(self) -> bool:
        """``True`` once the agent has harvested all the bits it needs."""
        return len(self.bits) >= self.bits_needed

    @property
    def interactions(self) -> int:
        """Number of interactions this agent has participated in."""
        return self._interactions


class SyntheticCoinProtocol(PopulationProtocol):
    """Every agent harvests ``bits_needed`` unbiased bits from the scheduler."""

    name = "synthetic-coin"

    def __init__(self, n: int, bits_needed: int = 8):
        super().__init__(n)
        if bits_needed < 0:
            raise ValueError(f"bits_needed must be non-negative, got {bits_needed}")
        self.bits_needed = bits_needed

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> SyntheticCoinState:
        # Half the population starts in each role so the very first interactions
        # already mix roles; the exact split does not affect unbiasedness.
        role = ALG if agent_id % 2 == 0 else FLIP
        return SyntheticCoinState(coin_role=role, bits_needed=self.bits_needed)

    def random_state(self, rng: np.random.Generator) -> SyntheticCoinState:
        state = SyntheticCoinState(
            coin_role=ALG if rng.integers(0, 2) else FLIP, bits_needed=self.bits_needed
        )
        harvested = int(rng.integers(0, self.bits_needed + 1))
        state.bits = "".join("1" if rng.integers(0, 2) else "0" for _ in range(harvested))
        return state

    def transition(
        self,
        initiator: SyntheticCoinState,
        responder: SyntheticCoinState,
        rng: np.random.Generator,
    ) -> None:
        # Harvest bits based on the roles *before* this interaction's toggle.
        if initiator.coin_role == ALG and responder.coin_role == FLIP and not initiator.done:
            initiator.bits += "1"  # the harvesting agent was the initiator: heads
        if responder.coin_role == ALG and initiator.coin_role == FLIP and not responder.done:
            responder.bits += "0"  # the harvesting agent was the responder: tails
        for agent in (initiator, responder):
            agent.coin_role = FLIP if agent.coin_role == ALG else ALG
            agent._interactions += 1

    def is_correct(self, configuration: Configuration) -> bool:
        return all(state.done for state in configuration)

    def harvested_bits(self, configuration: Configuration) -> List[str]:
        """All bits harvested so far, one string per agent."""
        return [state.bits for state in configuration]

    def theoretical_state_count(self) -> int:
        return 2 * sum(2**k for k in range(self.bits_needed + 1))

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """Every (role, harvested-bit-string) combination.

        The space has ``2 * (2^(bits_needed+1) - 1)`` states, so only small
        ``bits_needed`` values compile within the default ``max_states`` cap
        (the tables are quadratic in the state count).  The per-agent
        ``interactions`` bookkeeping counter is excluded from signatures and
        is not tracked by the compiled engine.
        """
        states = []
        for role in (ALG, FLIP):
            for harvested in range(self.bits_needed + 1):
                for pattern in range(2**harvested):
                    bits = format(pattern, f"0{harvested}b") if harvested else ""
                    state = SyntheticCoinState(
                        coin_role=role, bits=bits, bits_needed=self.bits_needed
                    )
                    states.append(state)
        return states

    def compiled_predicates(self):
        def all_done(counts, compiled):
            undone = compiled.state_mask(lambda state: not state.done)
            return int(counts[undone].sum()) == 0

        return {"correct": all_done, "stabilized": all_done}


__all__ = [
    "ALG",
    "FLIP",
    "SyntheticCoinProtocol",
    "SyntheticCoinState",
    "expected_interactions_per_bit",
]
