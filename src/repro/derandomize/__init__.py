"""Section 6: derandomization via synthetic coins.

The model allows probabilistic transitions for convenience, but all of the
paper's protocols can be made deterministic by extracting randomness from the
scheduler itself.  This subpackage implements the "time-multiplexed" synthetic
coin: each agent alternates between an ``Alg`` role and a ``Flip`` role on
every interaction, and harvests one unbiased bit whenever it is in ``Alg`` and
its partner is in ``Flip`` (heads iff it was the initiator), at an expected
cost of four interactions per bit.
"""

from repro.derandomize.synthetic_coin import (
    ALG,
    FLIP,
    SyntheticCoinProtocol,
    SyntheticCoinState,
    expected_interactions_per_bit,
)

__all__ = [
    "ALG",
    "FLIP",
    "SyntheticCoinProtocol",
    "SyntheticCoinState",
    "expected_interactions_per_bit",
]
