"""The roll-call process (Lemma 2.9).

Every agent starts with a roster containing only its own unique ID and rosters
merge by union whenever two agents interact.  ``R_n``, the number of
interactions until every roster contains all ``n`` IDs, satisfies
``E[R_n] ~ 1.5 n ln n`` and ``P[R_n > 3 n ln n] < 1/n``.

This process is exactly how ``Sublinear-Time-SSR`` propagates the set of
names, so its constants show up directly in that protocol's running time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import RngLike, make_rng
from repro.engine.state import AgentState


class RollCallState(AgentState):
    """State of an agent in the roll-call process: its ID and known roster."""

    def __init__(self, agent_id: int, roster: Optional[frozenset] = None):
        self.agent_id = agent_id
        self.roster = roster if roster is not None else frozenset({agent_id})

    def signature(self):
        return (self.agent_id, self.roster)

    def clone(self) -> "RollCallState":
        # The roster is an immutable frozenset, so a shallow copy is exact.
        return RollCallState(self.agent_id, self.roster)


class RollCallProtocol(PopulationProtocol):
    """Agent-level roll call: ``a.roster, b.roster <- a.roster | b.roster``."""

    name = "roll-call"

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> RollCallState:
        return RollCallState(agent_id)

    def transition(
        self, initiator: RollCallState, responder: RollCallState, rng: np.random.Generator
    ) -> None:
        merged = initiator.roster | responder.roster
        initiator.roster = merged
        responder.roster = merged

    def is_correct(self, configuration: Configuration) -> bool:
        return all(len(state.roster) == self.n for state in configuration)

    def minimum_roster_size(self, configuration: Configuration) -> int:
        """Smallest roster size in ``configuration`` (n means complete)."""
        return min(len(state.roster) for state in configuration)

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """Seed states: each agent knowing only itself.

        The compiler closes the set under roster union, reaching all
        ``n * 2^(n-1)`` states ``(id, roster containing id)``, so compiling
        roll call is only feasible for small ``n`` (the compiler's
        ``max_states`` cap guards larger populations).
        """
        return [RollCallState(agent_id) for agent_id in range(self.n)]

    def compiled_predicates(self):
        def all_rosters_full(counts, compiled):
            incomplete = compiled.state_mask(lambda state: len(state.roster) < self.n)
            return int(counts[incomplete].sum()) == 0

        return {"correct": all_rosters_full}


def simulate_roll_call_interactions(n: int, rng: RngLike = None) -> int:
    """Sample ``R_n``: interactions until every roster contains all ``n`` IDs.

    The rosters are represented as bitmask integers so each interaction is a
    couple of integer ORs; unlike the plain epidemic there is no useful
    jump-chain shortcut because the ``n`` parallel epidemics are correlated.
    """
    if n < 1:
        raise ValueError(f"population size must be positive, got {n}")
    if n == 1:
        return 0
    rng = make_rng(rng)
    full = (1 << n) - 1
    rosters = [1 << i for i in range(n)]
    incomplete = n
    interactions = 0
    batch = max(256, 4 * n)
    while incomplete:
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for i, j in zip(initiators.tolist(), responders.tolist()):
            interactions += 1
            merged = rosters[i] | rosters[j]
            if merged == full:
                if rosters[i] != full:
                    incomplete -= 1
                if rosters[j] != full:
                    incomplete -= 1
                rosters[i] = full
                rosters[j] = full
                if incomplete == 0:
                    return interactions
            else:
                rosters[i] = merged
                rosters[j] = merged
    return interactions


__all__ = ["RollCallProtocol", "RollCallState", "simulate_roll_call_interactions"]
