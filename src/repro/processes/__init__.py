"""Probabilistic processes from Section 2.1 of the paper.

These are the building blocks the protocols' analyses rest on:

* the **two-way epidemic** (Lemma 2.7 / Corollary 2.8),
* the **roll-call process** (Lemma 2.9),
* the **bounded epidemic** / level-propagation process (Lemmas 2.10 and 2.11),
* the **coupon-collector** step used inside the roll-call lower bound,
* the **fratricide** leader-election process ``L, L -> L, F``.

Each process is available in two forms: a full agent-level
:class:`~repro.engine.protocol.PopulationProtocol` (exercising the same
engine code path as the ranking protocols) and a fast direct sampler that
skips over uneventful interactions using geometric random variables, enabling
much larger population sizes in the benchmarks.
"""

from repro.processes.bounded_epidemic import (
    BoundedEpidemicProtocol,
    simulate_bounded_epidemic_levels,
    simulate_level_hitting_times,
)
from repro.processes.coupon_collector import (
    expected_all_agents_interact_time,
    simulate_all_agents_interact,
    simulate_coupon_collector,
)
from repro.processes.epidemic import (
    TwoWayEpidemicProtocol,
    simulate_epidemic_interactions,
)
from repro.processes.fratricide_process import simulate_fratricide_interactions
from repro.processes.roll_call import RollCallProtocol, simulate_roll_call_interactions

__all__ = [
    "BoundedEpidemicProtocol",
    "RollCallProtocol",
    "TwoWayEpidemicProtocol",
    "expected_all_agents_interact_time",
    "simulate_all_agents_interact",
    "simulate_bounded_epidemic_levels",
    "simulate_coupon_collector",
    "simulate_epidemic_interactions",
    "simulate_fratricide_interactions",
    "simulate_level_hitting_times",
    "simulate_roll_call_interactions",
]
