"""The bounded epidemic / level propagation process (Lemmas 2.10 and 2.11).

A source agent has ``level = 0`` and everyone else ``level = infinity``;
on an interaction both agents update ``level <- min(own, other + 1)``.
``tau_k`` is the first (parallel) time at which a fixed target agent has
``level <= k``, i.e. the target has heard from the source through a chain of
at most ``k`` interactions.  The paper shows ``E[tau_k] <= k n^{1/k}`` for
constant ``k`` (Lemma 2.10) and ``tau_{3 log2 n} <= 3 ln n`` with high
probability (Lemma 2.11).  This is the mechanism behind the running time of
``Detect-Name-Collision`` for each choice of the depth parameter ``H``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import RngLike, make_rng
from repro.engine.state import AgentState

#: Sentinel "infinite" level; any value larger than any path length works.
UNREACHED = 1 << 30


class LevelState(AgentState):
    """State of an agent in the bounded epidemic: its current ``level``."""

    def __init__(self, level: int = UNREACHED):
        self.level = level


class BoundedEpidemicProtocol(PopulationProtocol):
    """Agent-level bounded epidemic: ``level <- min(own, other + 1)`` both ways."""

    name = "bounded-epidemic"

    def __init__(self, n: int, source: int = 0, target: int = 1, k: int = 1):
        super().__init__(n)
        if source == target:
            raise ValueError("source and target must be distinct agents")
        if not (0 <= source < n and 0 <= target < n):
            raise ValueError("source and target must be valid agent ids")
        if k < 1:
            raise ValueError(f"level bound k must be positive, got {k}")
        self.source = source
        self.target = target
        self.k = k

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> LevelState:
        return LevelState(level=0 if agent_id == self.source else UNREACHED)

    def transition(
        self, initiator: LevelState, responder: LevelState, rng: np.random.Generator
    ) -> None:
        initiator.level = self._clamp(min(initiator.level, responder.level + 1))
        responder.level = self._clamp(min(responder.level, initiator.level + 1))

    def _clamp(self, level: int) -> int:
        """Normalize any level ``>= n`` to the :data:`UNREACHED` sentinel.

        Finite levels never exceed ``n - 1`` in a real execution (a finite
        level ``m`` requires at least ``m + 1`` agents already carrying finite
        levels, and levels only decrease per agent), so the clamp never alters
        a run; it only closes the *pairwise* state space -- without it the
        compiler's closure would chase the unreachable ladder ``n, n+1, ...``
        produced by pairing level ``n - 1`` with an unreached agent.
        """
        return UNREACHED if level >= self.n else level

    def is_correct(self, configuration: Configuration) -> bool:
        """Correct once the target has heard from the source via <= k hops."""
        return configuration[self.target].level <= self.k

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """Levels ``0 .. n-1`` plus the unreached sentinel (``n + 1`` states).

        The correctness predicate names a specific *agent* (the target), which
        a state-count vector cannot express, so the protocol declares no
        ``compiled_predicates``; the batch engine decodes the configuration
        for its stop checks (exact, ``O(n)`` per check).
        """
        return [LevelState(level) for level in range(self.n)] + [LevelState(UNREACHED)]


def simulate_level_hitting_times(
    n: int,
    max_level: int,
    rng: RngLike = None,
    source: int = 0,
    target: Optional[int] = None,
) -> Dict[int, int]:
    """Simulate one run and return ``{k: interactions until target.level <= k}``.

    Records, for every ``k`` in ``1 .. max_level``, the first interaction after
    which the target's level is at most ``k``.  A single run therefore yields
    the full hitting-time curve ``tau_1, ..., tau_max_level``.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    if max_level < 1:
        raise ValueError(f"max_level must be positive, got {max_level}")
    rng = make_rng(rng)
    if target is None:
        target = (source + 1) % n
    if target == source:
        raise ValueError("source and target must be distinct agents")

    levels = np.full(n, UNREACHED, dtype=np.int64)
    levels[source] = 0
    hitting: Dict[int, int] = {}
    interactions = 0
    batch = max(1024, 4 * n)
    while len(hitting) < max_level:
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for i, j in zip(initiators.tolist(), responders.tolist()):
            interactions += 1
            li, lj = levels[i], levels[j]
            if lj + 1 < li:
                levels[i] = lj + 1
            if levels[i] + 1 < lj:
                levels[j] = levels[i] + 1
            if i == target or j == target:
                target_level = int(levels[target])
                for k in range(max(1, target_level), max_level + 1):
                    if k >= target_level and k not in hitting:
                        hitting[k] = interactions
                if len(hitting) >= max_level:
                    break
    return hitting


def simulate_bounded_epidemic_levels(
    n: int,
    k: int,
    rng: RngLike = None,
) -> int:
    """Sample ``tau_k`` (in interactions) for a single pair (source, target)."""
    hitting = simulate_level_hitting_times(n, max_level=k, rng=rng)
    return hitting[k]


__all__ = [
    "BoundedEpidemicProtocol",
    "LevelState",
    "UNREACHED",
    "simulate_bounded_epidemic_levels",
    "simulate_level_hitting_times",
]
