"""The two-way epidemic process (Lemma 2.7, Corollary 2.8).

Agents carry a boolean ``infected`` flag; when any two agents interact both
end up infected if either was.  Starting from a single infected agent, the
number of interactions ``T_n`` until everyone is infected satisfies
``E[T_n] = (n - 1) * H_{n-1} ~ n ln n`` and
``P[T_n > 3 n ln n] < 1 / n^2`` (Corollary 2.8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import RngLike, make_rng
from repro.engine.state import AgentState


class EpidemicState(AgentState):
    """State of an agent in the two-way epidemic: a single ``infected`` flag."""

    def __init__(self, infected: bool = False):
        self.infected = bool(infected)

    def clone(self) -> "EpidemicState":
        return EpidemicState(self.infected)


class TwoWayEpidemicProtocol(PopulationProtocol):
    """Agent-level two-way epidemic: ``a.infected, b.infected <- a or b``."""

    name = "two-way-epidemic"

    def __init__(self, n: int, initially_infected: int = 1):
        super().__init__(n)
        if not 1 <= initially_infected <= n:
            raise ValueError(
                f"initially_infected must be in [1, {n}], got {initially_infected}"
            )
        self.initially_infected = initially_infected

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> EpidemicState:
        return EpidemicState(infected=agent_id < self.initially_infected)

    def transition(
        self, initiator: EpidemicState, responder: EpidemicState, rng: np.random.Generator
    ) -> None:
        if initiator.infected or responder.infected:
            initiator.infected = True
            responder.infected = True

    def is_correct(self, configuration: Configuration) -> bool:
        return all(state.infected for state in configuration)

    def infected_count(self, configuration: Configuration) -> int:
        """Number of infected agents in ``configuration``."""
        return configuration.count_where(lambda state: state.infected)

    def theoretical_state_count(self) -> int:
        return 2

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """The full two-state space: susceptible and infected."""
        return [EpidemicState(False), EpidemicState(True)]

    def compiled_predicates(self):
        def all_infected(counts, compiled):
            susceptible = compiled.encode_state(EpidemicState(False))
            return int(counts[susceptible]) == 0

        return {"correct": all_infected}


def simulate_epidemic_interactions(
    n: int,
    rng: RngLike = None,
    initially_infected: int = 1,
) -> int:
    """Sample ``T_n``: interactions until the epidemic covers the population.

    Uses the exact jump-chain decomposition: while ``k`` agents are infected,
    the next infection happens after a Geometric number of interactions with
    success probability ``2 k (n - k) / (n (n - 1))`` (either ordering of an
    infected/uninfected pair spreads the infection).
    """
    if n < 1:
        raise ValueError(f"population size must be positive, got {n}")
    if not 1 <= initially_infected <= n:
        raise ValueError(f"initially_infected must be in [1, {n}], got {initially_infected}")
    rng = make_rng(rng)
    total_pairs = n * (n - 1)
    interactions = 0
    for k in range(initially_infected, n):
        success_probability = 2.0 * k * (n - k) / total_pairs
        interactions += int(rng.geometric(success_probability))
    return interactions


__all__ = ["EpidemicState", "TwoWayEpidemicProtocol", "simulate_epidemic_interactions"]
