"""The fratricide leader-election process ``L, L -> L, F``.

Starting from ``k`` leaders, every meeting of two leaders demotes one of them.
From the all-leaders configuration the process takes
``sum_{i=2}^{n} Geometric(i (i - 1) / (n (n - 1)))`` interactions, with
expectation ``~ n^2`` interactions, i.e. ``~ n`` parallel time (Lemma 4.2).
It is the slow leader election run during the dormant phase of
``Optimal-Silent-SSR``, and also the stochastic upper bound used in the
analysis of ``Silent-n-state-SSR`` (Theorem 2.4).
"""

from __future__ import annotations

from repro.engine.rng import RngLike, make_rng


def simulate_fratricide_interactions(
    n: int,
    initial_leaders: int = -1,
    rng: RngLike = None,
) -> int:
    """Sample the number of interactions to reduce the leaders to one.

    Parameters
    ----------
    initial_leaders:
        Starting number of leaders; ``-1`` (default) means all ``n`` agents.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    if initial_leaders == -1:
        initial_leaders = n
    if not 1 <= initial_leaders <= n:
        raise ValueError(f"initial_leaders must be in [1, {n}], got {initial_leaders}")
    rng = make_rng(rng)
    total_ordered_pairs = n * (n - 1)
    interactions = 0
    for leaders in range(initial_leaders, 1, -1):
        success_probability = leaders * (leaders - 1) / total_ordered_pairs
        interactions += int(rng.geometric(success_probability))
    return interactions


__all__ = ["simulate_fratricide_interactions"]
