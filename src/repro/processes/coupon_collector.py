"""Coupon-collector style processes.

Two variants are used in the paper:

* the classic coupon collector (used in the Omega(log n) lower bound for any
  SSLE protocol starting from the all-leaders configuration), and
* the "every agent interacts at least once" process used inside the roll-call
  lower bound (Lemma 2.9), which collects two coupons per interaction and so
  completes in ``~ (1/2) n ln n`` interactions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.rng import RngLike, make_rng


def simulate_coupon_collector(n: int, rng: RngLike = None) -> int:
    """Sample the number of uniform draws needed to see all ``n`` coupons."""
    if n < 1:
        raise ValueError(f"number of coupons must be positive, got {n}")
    rng = make_rng(rng)
    draws = 0
    for seen in range(n):
        probability = (n - seen) / n
        draws += int(rng.geometric(probability))
    return draws


def simulate_all_agents_interact(n: int, rng: RngLike = None) -> int:
    """Sample the number of interactions until every agent has interacted.

    Each interaction involves two distinct agents, so this is a coupon
    collector drawing an unordered pair per step.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    rng = make_rng(rng)
    interactions = 0
    remaining = n
    while remaining > 0:
        # Probability the next interaction touches at least one "new" agent.
        total_pairs = n * (n - 1) / 2
        stale_pairs = (n - remaining) * (n - remaining - 1) / 2
        probability = 1.0 - stale_pairs / total_pairs
        interactions += int(rng.geometric(probability))
        # The interaction touches one or two new agents; the second is new with
        # probability proportional to the remaining count.
        if remaining >= 2:
            new_pairs = remaining * (remaining - 1) / 2
            touched_pairs = total_pairs - stale_pairs
            both_new_probability = new_pairs / touched_pairs
            remaining -= 2 if rng.random() < both_new_probability else 1
        else:
            remaining -= 1
    return interactions


def expected_coupon_collector_draws(n: int) -> float:
    """Expected draws for the classic coupon collector: ``n * H_n``."""
    if n < 1:
        raise ValueError(f"number of coupons must be positive, got {n}")
    return n * sum(1.0 / i for i in range(1, n + 1))


def expected_all_agents_interact_time(n: int) -> float:
    """Asymptotic expectation ``(1/2) n ln n`` of the all-agents-interact process."""
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    return 0.5 * n * math.log(n)


__all__ = [
    "expected_all_agents_interact_time",
    "expected_coupon_collector_draws",
    "simulate_all_agents_interact",
    "simulate_coupon_collector",
]
