"""Content-addressed artifact cache for the serve subsystem.

Cache-key derivation
--------------------
A job is named by *what it computes*, never by when or where: the sha256
digest of the canonical (key-sorted, whitespace-free) JSON of ::

    {"experiment": ..., "scale": ..., "params": {...}, "run_config": {...}}

where ``run_config`` is the :meth:`RunConfig.to_dict` provenance form and
``params`` are the experiment overrides coerced through the same
``_jsonable`` rules the artifact rows use.  Submitting the same experiment
with the same parameters and the same (integer) seed therefore always maps
to the same digest -- and since ``repro`` artifacts are byte-stable modulo
``wall_time``, the cache stores the **canonicalized** artifact
(``wall_time`` zeroed) so a cache hit returns byte-identical content to a
fresh run of the same job.  The job id shown to users is the digest's
first 16 hex chars.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.engine.run_config import RunConfig
from repro.experiments.result import ExperimentResult, _jsonable
from repro.serve.checkpoint import atomic_write_text, canonical_json

#: Hex length of the short job id (prefix of the full sha256 digest).
JOB_ID_LENGTH = 16


def job_payload(
    experiment: str,
    scale: str,
    params: Optional[Mapping],
    config: RunConfig,
) -> Dict:
    """The canonical description of one job (the digest input)."""
    return {
        "experiment": experiment,
        "scale": scale,
        "params": {str(key): _jsonable(value) for key, value in dict(params or {}).items()},
        "run_config": config.to_dict(),
    }


def job_digest(payload: Dict) -> str:
    """Full sha256 digest of a canonical job payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def job_id_for(payload: Dict) -> str:
    """Short content-derived job id (digest prefix)."""
    return job_digest(payload)[:JOB_ID_LENGTH]


def canonicalize_artifact(result: ExperimentResult) -> ExperimentResult:
    """The cacheable form of an artifact: ``wall_time`` zeroed.

    Wall time is the single nondeterministic provenance field; everything
    else in an artifact is a pure function of the job payload.  Zeroing it
    (rather than storing whatever one run measured) makes cached bytes a
    stable function of the digest, so direct runs, worker runs, and resumed
    runs of the same job all compare byte-identically.
    """
    payload = result.to_dict()
    payload["provenance"]["wall_time"] = 0.0
    return ExperimentResult.from_dict(payload)


class ArtifactCache:
    """Digest-addressed store of canonicalized experiment artifacts."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def has(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def get_bytes(self, digest: str) -> bytes:
        """Raw artifact bytes (what the HTTP artifact endpoint serves)."""
        path = self.path_for(digest)
        if not path.exists():
            raise KeyError(f"no cached artifact for digest {digest}")
        return path.read_bytes()

    def get(self, digest: str) -> ExperimentResult:
        return ExperimentResult.from_json(self.get_bytes(digest).decode("utf-8"))

    def put(self, digest: str, result: ExperimentResult) -> Path:
        """Store the canonicalized artifact under its digest (atomic)."""
        return atomic_write_text(
            self.path_for(digest), canonicalize_artifact(result).to_json()
        )


__all__ = [
    "ArtifactCache",
    "JOB_ID_LENGTH",
    "canonicalize_artifact",
    "job_digest",
    "job_id_for",
    "job_payload",
]
