"""Persistent on-disk job queue.

Queue states and layout
-----------------------
A job moves ``pending -> running -> done`` (or back to ``pending`` on
failure until ``max_retries`` is exhausted, then ``failed``).  The queue is
a directory::

    <root>/jobs/<id>.json     one JSON record per job (payload + state)
    <root>/pending/<id>       empty marker files, one directory per state
    <root>/running/<id>
    <root>/done/<id>
    <root>/failed/<id>
    <root>/checkpoints/<id>/  per-job trial results + in-flight checkpoints

State transitions move the *marker* with ``os.replace`` -- atomic on POSIX
-- so two workers can never claim the same job, and a ``kill -9`` mid-run
leaves an honest trail: the marker stays in ``running/`` with the dead
worker's pid in the record, and :meth:`JobQueue.recover_stale` (run by
every worker before claiming) detects the dead pid and requeues the job.
The requeued run replays from the job's checkpoint directory, so the work
already done -- finished trials and the in-flight engine checkpoint --
survives the crash and the final artifact is byte-identical to an
uninterrupted run (see :mod:`repro.serve.worker`).
"""

from __future__ import annotations

import json
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.engine.run_config import RunConfig
from repro.serve.cache import job_digest, job_id_for, job_payload
from repro.serve.checkpoint import atomic_write_text

#: The lifecycle states a job record can be in.
JOB_STATES = ("pending", "running", "done", "failed")

#: Format tag on persisted job records.
JOB_RECORD_FORMAT = "repro.job-record/v1"


class UnknownJobError(ValueError):
    """Lookup of a job id the queue has never seen."""


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid running (signal-0 probe)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def validate_payload(payload: Dict) -> Dict:
    """Normalize a submitted job description, failing fast on bad input.

    Returns the canonical payload (the digest input).  Raises
    ``ValueError`` with a user-facing message for every rejection: unknown
    experiment, bad scale, malformed RunConfig, or a non-integer seed --
    content addressing requires the run to be a pure function of the
    payload, which a fresh-entropy seed is not.
    """
    from repro.experiments.registry import get_experiment

    if not isinstance(payload, dict):
        raise ValueError("job payload must be a JSON object")
    unknown = set(payload) - {"experiment", "scale", "params", "run_config"}
    if unknown:
        raise ValueError(f"unknown job payload keys: {sorted(unknown)}")
    experiment = payload.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise ValueError("job payload needs an 'experiment' identifier")
    try:
        get_experiment(experiment)
    except KeyError as error:
        raise ValueError(str(error).strip("'\"")) from None
    scale = payload.get("scale", "quick")
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    params = payload.get("params") or {}
    if not isinstance(params, dict):
        raise ValueError(f"params must be an object, got {type(params).__name__}")
    run_config = payload.get("run_config") or {}
    if not isinstance(run_config, dict):
        raise ValueError(f"run_config must be an object, got {type(run_config).__name__}")
    config = RunConfig.from_dict(run_config)
    if not isinstance(config.seed, int):
        raise ValueError(
            "jobs must carry an integer run_config.seed: the artifact cache "
            "is content-addressed, so the run must be a pure function of the "
            "submitted payload"
        )
    return job_payload(experiment, scale, params, config)


@dataclass
class JobRecord:
    """One job's durable state (persisted as ``jobs/<id>.json``)."""

    job_id: str
    digest: str
    payload: Dict
    state: str = "pending"
    retries: int = 0
    error: Optional[str] = None
    cached: bool = False
    worker_pid: Optional[int] = field(default=None)
    #: Unix time the current run started (set on claim, cleared on finish/fail).
    started_at: Optional[float] = field(default=None)

    def to_dict(self) -> Dict:
        return {
            "format": JOB_RECORD_FORMAT,
            "job_id": self.job_id,
            "digest": self.digest,
            "payload": self.payload,
            "state": self.state,
            "retries": self.retries,
            "error": self.error,
            "cached": self.cached,
            "worker_pid": self.worker_pid,
            "started_at": self.started_at,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobRecord":
        tag = payload.get("format")
        if tag != JOB_RECORD_FORMAT:
            raise ValueError(f"not a job record (format={tag!r})")
        return cls(
            job_id=payload["job_id"],
            digest=payload["digest"],
            payload=dict(payload["payload"]),
            state=payload.get("state", "pending"),
            retries=int(payload.get("retries", 0)),
            error=payload.get("error"),
            cached=bool(payload.get("cached", False)),
            worker_pid=payload.get("worker_pid"),
            started_at=payload.get("started_at"),
        )


class JobQueue:
    """Directory-backed queue with atomic claims and crash recovery."""

    def __init__(self, root: Union[str, Path], max_retries: int = 3):
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        self.root = Path(root)
        self.max_retries = max_retries
        for name in ("jobs", "checkpoints") + JOB_STATES:
            (self.root / name).mkdir(parents=True, exist_ok=True)

    # -- record storage --------------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.root / "jobs" / f"{job_id}.json"

    def _write(self, record: JobRecord) -> None:
        atomic_write_text(
            self._record_path(record.job_id),
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        )

    def get(self, job_id: str) -> JobRecord:
        path = self._record_path(job_id)
        if not path.exists():
            raise UnknownJobError(f"unknown job id {job_id!r}")
        return JobRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def list_jobs(self) -> List[JobRecord]:
        return [
            self.get(entry.stem)
            for entry in sorted((self.root / "jobs").glob("*.json"))
        ]

    def _move_marker(self, job_id: str, src: str, dst: str) -> bool:
        try:
            os.replace(self.root / src / job_id, self.root / dst / job_id)
        except FileNotFoundError:
            return False
        return True

    # -- lifecycle -------------------------------------------------------------------

    def submit(self, payload: Dict) -> JobRecord:
        """Validate and enqueue a job; identical resubmission dedups by id."""
        payload = validate_payload(payload)
        digest = job_digest(payload)
        job_id = job_id_for(payload)
        try:
            return self.get(job_id)
        except UnknownJobError:
            pass
        record = JobRecord(job_id=job_id, digest=digest, payload=payload)
        self._write(record)
        (self.root / "pending" / job_id).touch()
        return record

    def claim(self, worker_pid: int) -> Optional[JobRecord]:
        """Atomically move one pending job to running (``None`` if empty)."""
        for marker in sorted((self.root / "pending").iterdir()):
            if not self._move_marker(marker.name, "pending", "running"):
                continue  # another worker won the race
            record = self.get(marker.name)
            record.state = "running"
            record.worker_pid = worker_pid
            record.started_at = time.time()
            self._write(record)
            return record
        return None

    def finish(self, job_id: str, cached: bool = False) -> JobRecord:
        record = self.get(job_id)
        record.state = "done"
        record.cached = cached
        record.error = None
        record.worker_pid = None
        record.started_at = None
        self._write(record)
        self._move_marker(job_id, "running", "done")
        return record

    def fail(self, job_id: str, error: str) -> JobRecord:
        """Record a failure: requeue while retries remain, else fail for good."""
        record = self.get(job_id)
        record.retries += 1
        record.error = error
        record.worker_pid = None
        record.started_at = None
        record.state = "failed" if record.retries > self.max_retries else "pending"
        self._write(record)
        self._move_marker(job_id, "running", record.state)
        return record

    def depths(self) -> Dict[str, int]:
        """Marker-file count per state (the live queue-depth gauge)."""
        return {
            state: sum(1 for _ in (self.root / state).iterdir())
            for state in JOB_STATES
        }

    def stale_running(self) -> List[str]:
        """Running jobs whose worker process is gone -- probe only.

        The same dead-pid test :meth:`recover_stale` uses, but without the
        requeue side effect, so ``repro jobs`` and ``GET /jobs`` can flag
        orphaned work between worker claims.
        """
        stale = []
        for marker in sorted((self.root / "running").iterdir()):
            try:
                record = self.get(marker.name)
            except UnknownJobError:
                continue
            if record.state != "running":
                continue  # finished between listing and read
            if record.worker_pid is not None and _pid_alive(record.worker_pid):
                continue
            stale.append(record.job_id)
        return stale

    def recover_stale(self) -> List[str]:
        """Requeue running jobs whose worker process is gone (crash recovery).

        Returns the requeued job ids.  A recovered job costs one retry --
        repeated crashes on the same job eventually land it in ``failed``
        instead of looping forever.
        """
        recovered = []
        for marker in sorted((self.root / "running").iterdir()):
            try:
                record = self.get(marker.name)
            except UnknownJobError:
                continue
            if record.state != "running":
                continue  # finished between listing and read
            if record.worker_pid is not None and _pid_alive(record.worker_pid):
                continue
            self.fail(record.job_id, "worker died mid-run")
            recovered.append(record.job_id)
        return recovered

    # -- checkpoint storage ----------------------------------------------------------

    def checkpoint_dir(self, job_id: str) -> Path:
        """Per-job directory for trial results and in-flight checkpoints."""
        path = self.root / "checkpoints" / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def clear_checkpoints(self, job_id: str) -> None:
        """Drop a finished job's checkpoint directory (artifact is cached)."""
        shutil.rmtree(self.root / "checkpoints" / job_id, ignore_errors=True)


__all__ = [
    "JOB_RECORD_FORMAT",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "UnknownJobError",
    "validate_payload",
]
