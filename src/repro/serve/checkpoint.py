"""Deterministic engine checkpoints with a JSON round trip.

A checkpoint captures a table-engine run mid-flight -- the interaction
counter, the encoded state vector (compiled) or count vector (counts), the
window-sizing state, and the PCG64 bit-generator state -- wrapped with
enough provenance to refuse wrong resumes: the engine tag, the protocol
name and population size, and a sha256 digest of the run's canonical
:class:`~repro.engine.run_config.RunConfig`.

The hard guarantee (enforced by ``tests/serve/test_checkpoint.py`` and the
property suite) is **bit-identity**: a run checkpointed at any
``check_interval`` boundary and resumed in a fresh process produces the
same :class:`~repro.engine.results.SimulationResult`, the same final state
vector, and the same final generator state as the uninterrupted run.  The
engines make this possible by exposing ``checkpoint_state()`` /
``restore_checkpoint_state()`` (which consume no randomness) and an
``on_check`` hook that fires exactly at the boundaries where ``run_until``
is about to continue -- capturing anywhere else would desynchronize the
adaptive window sizing and with it the random stream.

Format: ``repro.engine-checkpoint/v1`` -- one indented, key-sorted JSON
document, written atomically (temp file + ``os.replace``).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.engine.run_config import RunConfig, make_simulation

#: Format tag embedded in checkpoint files so loaders reject foreign JSON.
CHECKPOINT_FORMAT = "repro.engine-checkpoint/v1"


class CheckpointError(ValueError):
    """A checkpoint cannot be captured, parsed, or applied."""


def canonical_json(payload) -> str:
    """Key-sorted, whitespace-free JSON -- the digest input form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def config_digest(config: RunConfig) -> str:
    """sha256 over the canonical provenance dict of a :class:`RunConfig`.

    Two configs share a digest exactly when their ``to_dict()`` provenance
    matches, so a checkpoint refuses to resume under a different engine,
    stop condition, seed, cap, or adversary spec.  (``jobs`` and
    ``trial_batch`` are part of the dict: they do not change results, but a
    digest that over-rejects is safe and keeps the rule simple.)
    """
    return hashlib.sha256(canonical_json(config.to_dict()).encode("utf-8")).hexdigest()


def checkpoint_unsupported_reason(config: RunConfig) -> Optional[str]:
    """Why runs under this config cannot checkpoint (``None`` when they can).

    Mirrors the engine-side guards: checkpointing covers exactly the state
    the table engines own.  Anything that keeps run state outside the
    engine -- per-trial fault campaigns, byzantine overlays, non-uniform
    schedulers, the loop engine's arbitrary protocol code -- is refused up
    front rather than resumed wrongly.
    """
    if config.engine not in ("compiled", "counts"):
        return (
            f"engine {config.engine!r} is not checkpointable: its random "
            "stream flows through arbitrary per-transition protocol code"
        )
    if config.faults is not None and getattr(config.faults, "events", ()):
        return "fault campaigns mutate configurations outside the engine checkpoint"
    if config.byzantine is not None:
        return "byzantine overlays re-tag agents outside the engine checkpoint"
    if config.scheduler is not None and getattr(config.scheduler, "kind", None) != "uniform":
        return "non-uniform schedulers carry position outside the generator state"
    if config.trial_batch > 1:
        return "trial-batched engines advance many trials per window"
    return None


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write-then-rename so readers never observe a torn file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
    return path


@dataclass(frozen=True)
class EngineCheckpoint:
    """One mid-run engine snapshot plus the provenance to validate a resume.

    ``state`` is the engine's own ``checkpoint_state()`` dict (already
    JSON-able, including the big-int PCG64 state); the wrapper adds the
    identity checks :func:`restore_simulation` enforces.
    """

    engine: str
    protocol: str
    n: int
    interactions: int
    config_digest: str
    state: Dict

    def to_dict(self) -> Dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "engine": self.engine,
            "protocol": self.protocol,
            "n": self.n,
            "interactions": self.interactions,
            "config_digest": self.config_digest,
            "state": self.state,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "EngineCheckpoint":
        tag = payload.get("format")
        if tag != CHECKPOINT_FORMAT:
            raise CheckpointError(f"not an engine checkpoint (format={tag!r})")
        try:
            return cls(
                engine=payload["engine"],
                protocol=payload["protocol"],
                n=int(payload["n"]),
                interactions=int(payload["interactions"]),
                config_digest=payload["config_digest"],
                state=dict(payload["state"]),
            )
        except (KeyError, TypeError) as error:
            raise CheckpointError(f"malformed engine checkpoint: {error}") from None

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True, allow_nan=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "EngineCheckpoint":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise CheckpointError(f"unreadable engine checkpoint: {error}") from None
        if not isinstance(payload, dict):
            raise CheckpointError("not an engine checkpoint (not a JSON object)")
        return cls.from_dict(payload)

    def save(self, path: Union[str, Path]) -> Path:
        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EngineCheckpoint":
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"no checkpoint at {path}")
        return cls.from_json(path.read_text(encoding="utf-8"))


def capture_checkpoint(simulation, config: RunConfig) -> EngineCheckpoint:
    """Snapshot a live table-engine simulation under its run config."""
    reason = checkpoint_unsupported_reason(config)
    if reason is not None:
        raise CheckpointError(f"run is not checkpointable: {reason}")
    try:
        state = simulation.checkpoint_state()
    except (AttributeError, RuntimeError) as error:
        raise CheckpointError(f"engine refused the checkpoint: {error}") from None
    return EngineCheckpoint(
        engine=state["engine"],
        protocol=simulation.protocol.name,
        n=simulation.protocol.n,
        interactions=int(state["interactions"]),
        config_digest=config_digest(config),
        state=state,
    )


def restore_simulation(protocol, checkpoint: EngineCheckpoint, config: RunConfig, compiled=None):
    """Rebuild the engine a checkpoint was captured from, mid-run.

    Refuses (``CheckpointError``) when the checkpoint's RunConfig digest,
    engine, protocol name, or population size disagrees with what the
    caller is about to resume -- resuming under a different plan would
    silently produce a *valid-looking but wrong* artifact, the one failure
    mode a resumable service must not have.
    """
    digest = config_digest(config)
    if checkpoint.config_digest != digest:
        raise CheckpointError(
            "checkpoint RunConfig digest mismatch: checkpoint was captured "
            f"under {checkpoint.config_digest[:16]}..., resume requested under "
            f"{digest[:16]}... (engine/stop/seed/caps must match exactly)"
        )
    if checkpoint.engine != config.engine:
        raise CheckpointError(
            f"checkpoint engine {checkpoint.engine!r} != config engine {config.engine!r}"
        )
    if checkpoint.protocol != protocol.name:
        raise CheckpointError(
            f"checkpoint is for protocol {checkpoint.protocol!r}, got {protocol.name!r}"
        )
    if checkpoint.n != protocol.n:
        raise CheckpointError(
            f"checkpoint population {checkpoint.n} != protocol population {protocol.n}"
        )
    try:
        if config.engine == "counts":
            from repro.engine.counts_simulation import CountsSimulation

            simulation = CountsSimulation(
                protocol,
                counts=np.asarray(checkpoint.state["counts"], dtype=np.int64),
                rng=0,
                compiled=compiled,
            )
        else:
            from repro.engine.batch_simulation import BatchSimulation

            simulation = BatchSimulation(
                protocol,
                indices=BatchSimulation.decode_state_vector(checkpoint.state["indices"]),
                rng=0,
                compiled=compiled,
            )
        simulation.restore_checkpoint_state(checkpoint.state)
    except (KeyError, ValueError, RuntimeError) as error:
        raise CheckpointError(f"cannot apply checkpoint: {error}") from None
    return simulation


def resume_run(protocol, checkpoint: EngineCheckpoint, config: RunConfig, compiled=None):
    """Restore from a checkpoint and run the plan to completion."""
    simulation = restore_simulation(protocol, checkpoint, config, compiled=compiled)
    return simulation.run(config)


__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "EngineCheckpoint",
    "atomic_write_text",
    "canonical_json",
    "capture_checkpoint",
    "checkpoint_unsupported_reason",
    "config_digest",
    "restore_simulation",
    "resume_run",
]
