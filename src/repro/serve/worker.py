"""Workers: execute queued jobs with resumable, memoized trials.

Durability model
----------------
An experiment run is a deterministic sequence of :func:`~repro.experiments.
harness.run_trials` calls, each a deterministic list of trials.  The
:class:`TrialMemo` persists that structure into the job's checkpoint
directory: every harness call gets a positional key (``call0001``, ...),
every finished trial its exact :class:`~repro.engine.results.
SimulationResult` dict, and the trial currently in flight an
:class:`~repro.serve.checkpoint.EngineCheckpoint` refreshed at every
``check_interval`` boundary.  Kill the worker at any point and the re-run
replays the same call/trial sequence: finished trials load from disk
(bit-exact), the interrupted trial resumes from its engine checkpoint, and
everything after runs fresh -- so the final artifact is byte-identical to
an uninterrupted run.

Positional call keys (not config-derived ones) matter because experiments
like ``optimal_silent`` hand the inner harness tuple seeds and Generator
objects, which serialize as ``None`` -- position in the replayed sequence
is the only stable identity.  The memo therefore must only ever be
replayed against the *same* job payload; :func:`write_job_meta` pins the
directory to the payload digest so a mismatched replay is refused.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.engine.results import SimulationResult
from repro.engine.run_config import RunConfig
from repro.experiments.result import ExperimentResult
from repro.serve.cache import ArtifactCache, canonicalize_artifact, job_digest
from repro.serve.checkpoint import (
    CheckpointError,
    EngineCheckpoint,
    atomic_write_text,
    capture_checkpoint,
    checkpoint_unsupported_reason,
    config_digest,
)
from repro.serve.queue import JobQueue
from repro.telemetry import metrics as _metrics
from repro.telemetry import tracing as _tracing

#: Format tag on the job-meta file pinning a checkpoint dir to its payload.
JOB_META_FORMAT = "repro.job-checkpoint/v1"


class TrialMemo:
    """Durable per-trial replay log for one job (see the module docstring).

    Implements the duck protocol :func:`repro.experiments.harness.run_trials`
    consumes under :func:`repro.experiments.harness.trial_memo`:
    ``begin_call`` names each harness call, ``lookup``/``record`` replay and
    persist finished trials, and ``inflight_checkpoint``/``checkpoint_hook``
    carry the interrupted trial's engine state across process deaths.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._calls = 0
        self._lock = threading.Lock()

    # -- call / trial addressing -----------------------------------------------------

    def begin_call(self, trials: int, config: RunConfig) -> str:
        """Name the next ``run_trials`` call in the deterministic sequence."""
        with self._lock:
            self._calls += 1
            return f"call{self._calls:04d}"

    def _trial_path(self, call_key: str, index: int) -> Path:
        return self.root / f"{call_key}-trial{index:05d}.json"

    def _inflight_path(self, call_key: str, index: int) -> Path:
        return self.root / f"{call_key}-trial{index:05d}.ckpt.json"

    # -- finished trials -------------------------------------------------------------

    def lookup(self, call_key: str, index: int) -> Optional[SimulationResult]:
        """A previously recorded trial result, or ``None`` (corrupt = miss)."""
        path = self._trial_path(call_key, index)
        if not path.exists():
            return None
        try:
            return SimulationResult.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (ValueError, KeyError, TypeError):
            return None

    def record(self, call_key: str, index: int, result: SimulationResult) -> None:
        atomic_write_text(
            self._trial_path(call_key, index),
            json.dumps(result.to_dict(), sort_keys=True) + "\n",
        )
        try:
            self._inflight_path(call_key, index).unlink()
        except FileNotFoundError:
            pass

    # -- in-flight checkpoints -------------------------------------------------------

    def inflight_checkpoint(
        self, call_key: str, index: int, config: RunConfig
    ) -> Optional[EngineCheckpoint]:
        """The interrupted trial's engine checkpoint, if one is valid here."""
        path = self._inflight_path(call_key, index)
        if not path.exists():
            return None
        try:
            checkpoint = EngineCheckpoint.load(path)
        except CheckpointError:
            return None
        if checkpoint.config_digest != config_digest(config):
            return None
        return checkpoint

    def checkpoint_hook(
        self, call_key: str, index: int, config: RunConfig
    ) -> Optional[Callable]:
        """An ``on_check`` hook persisting this trial's state, or ``None``."""
        if checkpoint_unsupported_reason(config) is not None:
            return None
        path = self._inflight_path(call_key, index)

        def hook(simulation) -> None:
            try:
                started = time.perf_counter()
                capture_checkpoint(simulation, config).save(path)
                _metrics.record_checkpoint_seconds(time.perf_counter() - started)
            except CheckpointError:
                # An engine-side guard tripped (e.g. a custom scheduler was
                # installed mid-plan): stop trying, the trial runs through.
                simulation.on_check = None

        return hook

    def progress(self) -> Dict[str, int]:
        """Counts of persisted trials and live in-flight checkpoints."""
        trials = sum(
            1
            for entry in self.root.glob("call*-trial*.json")
            if not entry.name.endswith(".ckpt.json")
        )
        inflight = sum(1 for _ in self.root.glob("call*-trial*.ckpt.json"))
        return {"trials_done": trials, "inflight": inflight}


# -- job meta ------------------------------------------------------------------------


def write_job_meta(directory: Union[str, Path], payload: Dict) -> Path:
    """Pin a checkpoint directory to the job payload it replays."""
    return atomic_write_text(
        Path(directory) / "job.json",
        json.dumps(
            {"format": JOB_META_FORMAT, "payload": payload, "digest": job_digest(payload)},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )


def load_job_meta(directory: Union[str, Path]) -> Dict:
    """Read and verify a checkpoint directory's job meta (the payload)."""
    path = Path(directory) / "job.json"
    if not path.exists():
        raise CheckpointError(f"no job meta at {path}; not a job checkpoint directory")
    try:
        meta = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise CheckpointError(f"unreadable job meta at {path}: {error}") from None
    if meta.get("format") != JOB_META_FORMAT:
        raise CheckpointError(f"not a job checkpoint (format={meta.get('format')!r})")
    payload = meta.get("payload")
    if not isinstance(payload, dict) or meta.get("digest") != job_digest(payload):
        raise CheckpointError(
            "job meta digest mismatch: the checkpoint directory does not "
            "match the payload it claims to replay"
        )
    return payload


# -- job execution -------------------------------------------------------------------


def execute_payload(payload: Dict, memo_root: Union[str, Path]) -> ExperimentResult:
    """Run one job payload with trial memoization rooted at ``memo_root``.

    Idempotent and resumable: re-running after a crash replays finished
    trials from the memo and resumes the interrupted one from its engine
    checkpoint.  Returns the canonicalized artifact (``wall_time`` zeroed).
    """
    from repro.experiments.harness import trial_memo
    from repro.experiments.registry import get_experiment

    memo_root = Path(memo_root)
    existing = memo_root / "job.json"
    if existing.exists():
        recorded = load_job_meta(memo_root)
        if job_digest(recorded) != job_digest(payload):
            raise CheckpointError(
                "checkpoint directory belongs to a different job "
                f"({job_digest(recorded)[:16]}... != {job_digest(payload)[:16]}...)"
            )
    else:
        write_job_meta(memo_root, payload)
    spec = get_experiment(payload["experiment"])
    config = RunConfig.from_dict(payload["run_config"])
    with trial_memo(TrialMemo(memo_root)):
        result = spec.run(scale=payload["scale"], run=config, **payload.get("params", {}))
    return canonicalize_artifact(result)


def estimate_total_trials(payload: Dict) -> Optional[int]:
    """Best-effort total trial count for a job payload (the ETA denominator).

    Merges the experiment's scale parameters with the payload overrides and
    multiplies ``trials`` by the length of every sequence-valued parameter
    (each entry of an ``ns``-style sweep runs its own trials).  ``None``
    when the parameters don't follow that convention -- the ETA is then
    simply omitted from ``GET /jobs/<id>``.
    """
    try:
        from repro.experiments.registry import get_experiment

        spec = get_experiment(payload["experiment"])
    except Exception:  # noqa: BLE001 -- estimation must never break status
        return None
    scale = payload.get("scale", "quick")
    params = dict(spec.quick_params if scale == "quick" else spec.full_params)
    params.update(payload.get("params") or {})
    trials = params.get("trials")
    if not isinstance(trials, int) or trials < 1:
        return None
    total = trials
    for key, value in params.items():
        if key != "trials" and isinstance(value, (list, tuple)):
            total *= max(len(value), 1)
    return total


class Worker:
    """Pulls jobs off a queue and executes them against the artifact cache."""

    def __init__(self, queue: JobQueue, cache: ArtifactCache, name: Optional[str] = None):
        self.queue = queue
        self.cache = cache
        self.name = name or f"worker-{os.getpid()}"
        #: Jobs this worker actually simulated (cache misses).
        self.simulations_run = 0
        #: Jobs satisfied from the content-addressed cache without simulating.
        self.cache_hits = 0

    def run_once(self) -> Optional[str]:
        """Recover stale jobs, then process at most one (its id, or ``None``)."""
        self.queue.recover_stale()
        record = self.queue.claim(os.getpid())
        if record is None:
            return None
        tracer = _tracing.current_tracer()
        if tracer is not None:
            tracer.emit("claim", job=record.job_id, worker=self.name)
        started = time.perf_counter()
        outcome, cached = "done", False
        try:
            # Clear the memo *before* flipping the record to done: the
            # artifact is already cached, so a crash in between merely
            # replays the (deterministic) job, while the reverse order lets
            # a status poll observe state=done with stale progress counts.
            if self.cache.has(record.digest):
                self.cache_hits += 1
                cached = True
                _metrics.record_cache_hit()
                self.queue.clear_checkpoints(record.job_id)
                self.queue.finish(record.job_id, cached=True)
                return record.job_id
            if tracer is not None:
                with tracer.context(job=record.job_id):
                    artifact = self.cache_artifact(record)
            else:
                artifact = self.cache_artifact(record)
            self.cache.put(record.digest, artifact)
            self.queue.clear_checkpoints(record.job_id)
            self.queue.finish(record.job_id, cached=False)
        except Exception as error:  # noqa: BLE001 -- failures become job state
            outcome = "failed"
            self.queue.fail(record.job_id, f"{type(error).__name__}: {error}")
        finally:
            _metrics.record_job_done(outcome)
            if tracer is not None:
                tracer.emit(
                    "job",
                    job=record.job_id,
                    worker=self.name,
                    outcome=outcome,
                    cached=cached,
                    dur=round(time.perf_counter() - started, 6),
                )
        return record.job_id

    def cache_artifact(self, record) -> ExperimentResult:
        """Simulate the job (resuming from its checkpoints if any exist)."""
        artifact = execute_payload(record.payload, self.queue.checkpoint_dir(record.job_id))
        self.simulations_run += 1
        return artifact

    def run_forever(self, stop: threading.Event, poll_interval: float = 0.05) -> None:
        """Drain the queue until ``stop`` is set, idling between polls."""
        while not stop.is_set():
            _metrics.heartbeat(self.name)
            if self.run_once() is None:
                stop.wait(poll_interval)


def drain(queue: JobQueue, cache: ArtifactCache, timeout: float = 60.0) -> Worker:
    """Run one worker until the queue has no pending/running jobs (tests/CLI)."""
    worker = Worker(queue, cache)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if worker.run_once() is None:
            states = {record.state for record in queue.list_jobs()}
            if not states & {"pending", "running"}:
                return worker
            time.sleep(0.01)
    raise TimeoutError(f"queue did not drain within {timeout}s")


__all__ = [
    "JOB_META_FORMAT",
    "TrialMemo",
    "Worker",
    "drain",
    "estimate_total_trials",
    "execute_payload",
    "load_job_meta",
    "write_job_meta",
]
