"""Stdlib-only threaded HTTP front end for the job queue.

API
---
* ``POST /jobs`` -- submit ``{"experiment", "scale", "params",
  "run_config"}``; returns the content-derived job id (identical
  submissions dedup to the same id).  400 with ``{"error": ...}`` on
  invalid payloads.
* ``GET /jobs`` -- all job records.
* ``GET /jobs/<id>`` -- one record plus live progress (finished trials and
  in-flight checkpoints from the job's checkpoint directory).  404 on
  unknown ids.
* ``GET /jobs/<id>/artifact`` -- the cached ``ExperimentResult`` JSON,
  byte-identical to a direct ``repro run`` of the same payload (modulo the
  zeroed ``wall_time``).  409 while the job is not done.
* ``GET /healthz`` -- liveness plus version, uptime, queue depths, and
  jobs-served counters.
* ``GET /metrics`` -- the telemetry registry in Prometheus text format
  (queue-depth and stale-running gauges refreshed at scrape time).

Telemetry is always on while the server runs: :meth:`ReproServer.start`
enables the metrics registry and installs an append-mode trace writer at
``<queue>/trace.jsonl`` (restored on :meth:`ReproServer.stop`), so worker
claims, jobs, and trials stream into one correlated JSONL log that
``repro trace`` can summarize.

The server owns a :class:`~repro.serve.queue.JobQueue`, an
:class:`~repro.serve.cache.ArtifactCache` under ``<queue>/artifacts``, and
an in-process pool of worker threads; the HTTP layer is a stock
``ThreadingHTTPServer`` so everything runs on the standard library.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib import request as urllib_request
from urllib.error import HTTPError

from repro.serve.cache import ArtifactCache
from repro.serve.queue import JobQueue, UnknownJobError
from repro.serve.worker import TrialMemo, Worker, estimate_total_trials
from repro.telemetry import metrics as _metrics
from repro.telemetry import tracing as _tracing


class ReproServer:
    """The queue + cache + worker pool behind one HTTP listener."""

    def __init__(
        self,
        queue_root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: int = 1,
        max_retries: int = 3,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.queue = JobQueue(queue_root, max_retries=max_retries)
        self.cache = ArtifactCache(Path(queue_root) / "artifacts")
        self._stop = threading.Event()
        self._threads = []
        self.workers = [
            Worker(self.queue, self.cache, name=f"worker-{index}")
            for index in range(workers)
        ]
        self.started_at = time.time()
        self.tracer: Optional[_tracing.TraceWriter] = None
        self._previous_tracer: Optional[_tracing.TraceWriter] = None
        self._metrics_were_enabled = False
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # no per-request stderr noise
                pass

            def _send_json(self, status: int, payload: Dict) -> None:
                body = json.dumps(payload, sort_keys=True).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_bytes(self, status: int, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self) -> None:
                _metrics.record_http_request("jobs")
                if self.path.rstrip("/") != "/jobs":
                    self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
                    return
                length = int(self.headers.get("Content-Length") or 0)
                try:
                    payload = json.loads(self.rfile.read(length) or b"{}")
                except json.JSONDecodeError as error:
                    self._send_json(400, {"error": f"request body is not JSON: {error}"})
                    return
                try:
                    record = server.queue.submit(payload)
                except ValueError as error:
                    self._send_json(400, {"error": str(error)})
                    return
                self._send_json(
                    200,
                    {
                        "job_id": record.job_id,
                        "digest": record.digest,
                        "state": record.state,
                        "cached": server.cache.has(record.digest),
                    },
                )

            def do_GET(self) -> None:
                parts = [part for part in self.path.split("/") if part]
                _metrics.record_http_request(parts[0] if parts else "/")
                if parts == ["healthz"]:
                    from repro import __version__

                    depths = server.queue.depths()
                    self._send_json(
                        200,
                        {
                            "ok": True,
                            "version": __version__,
                            "uptime_seconds": round(time.time() - server.started_at, 3),
                            "queue": depths,
                            "jobs_served": {
                                "simulated": sum(
                                    worker.simulations_run for worker in server.workers
                                ),
                                "cache_hits": sum(
                                    worker.cache_hits for worker in server.workers
                                ),
                                "done": depths.get("done", 0),
                                "failed": depths.get("failed", 0),
                            },
                        },
                    )
                    return
                if parts == ["metrics"]:
                    body = server.render_metrics().encode("utf-8")
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if parts == ["jobs"]:
                    self._send_json(
                        200,
                        {
                            "jobs": [record.to_dict() for record in server.queue.list_jobs()],
                            "depths": server.queue.depths(),
                            "stale": server.queue.stale_running(),
                        },
                    )
                    return
                if len(parts) >= 2 and parts[0] == "jobs":
                    try:
                        record = server.queue.get(parts[1])
                    except UnknownJobError as error:
                        self._send_json(404, {"error": str(error)})
                        return
                    if len(parts) == 2:
                        status = record.to_dict()
                        progress = TrialMemo(
                            server.queue.checkpoint_dir(record.job_id)
                        ).progress()
                        if record.state == "running" and record.started_at is not None:
                            progress.update(
                                _throughput_eta(
                                    record, progress["trials_done"], time.time()
                                )
                            )
                        status["progress"] = progress
                        self._send_json(200, status)
                        return
                    if parts[2] == "artifact" and len(parts) == 3:
                        if record.state != "done":
                            self._send_json(
                                409,
                                {
                                    "error": f"job {record.job_id} is "
                                    f"{record.state}, not done",
                                    "state": record.state,
                                },
                            )
                            return
                        try:
                            body = server.cache.get_bytes(record.digest)
                        except KeyError as error:
                            self._send_json(500, {"error": str(error)})
                            return
                        self._send_bytes(200, body)
                        return
                self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

        self.http = ThreadingHTTPServer((host, port), Handler)

    @property
    def host(self) -> str:
        return self.http.server_address[0]

    @property
    def port(self) -> int:
        return self.http.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def render_metrics(self) -> str:
        """The registry as Prometheus text, with live gauges refreshed."""
        registry = _metrics.registry()
        for state, depth in self.queue.depths().items():
            _metrics.set_queue_depth(state, depth)
        if _metrics.enabled():
            registry.gauge(
                "repro_queue_stale_running",
                "Running jobs whose worker pid is dead (probe, not requeue).",
            ).set(len(self.queue.stale_running()))
            registry.gauge(
                "repro_server_uptime_seconds", "Seconds since the server started."
            ).set(time.time() - self.started_at)
        return registry.render_prometheus()

    def start(self) -> None:
        """Start the worker pool and the HTTP listener (all daemon threads).

        Telemetry is always on for a serving process: the metrics registry
        is enabled and an append-mode tracer is installed at
        ``<queue>/trace.jsonl``; both are restored by :meth:`stop` so
        embedding callers (tests) never leak global state.
        """
        self._metrics_were_enabled = _metrics.enabled()
        # /metrics reports this server's lifetime: drop whatever a previous
        # in-process server (or an instrumented run) left in the global
        # registry, then enable collection.
        _metrics.reset_registry()
        _metrics.enable()
        self.tracer = _tracing.TraceWriter(self.queue.root / "trace.jsonl", append=True)
        self._previous_tracer = _tracing.set_tracer(self.tracer)
        self.started_at = time.time()
        for index, worker in enumerate(self.workers):
            thread = threading.Thread(
                target=worker.run_forever,
                args=(self._stop,),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        http_thread = threading.Thread(
            target=self.http.serve_forever, name="repro-http", daemon=True
        )
        http_thread.start()
        self._threads.append(http_thread)

    def stop(self) -> None:
        self._stop.set()
        self.http.shutdown()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []
        self.http.server_close()
        if self.tracer is not None:
            _tracing.set_tracer(self._previous_tracer)
            self.tracer.close()
            self.tracer = None
        if not self._metrics_were_enabled:
            _metrics.disable()

    def serve_forever(self, already_started: bool = False) -> None:
        """Foreground mode for ``repro serve`` (Ctrl-C stops cleanly)."""
        if not already_started:
            self.start()
        try:
            self._stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()


def _throughput_eta(record, trials_done: int, now: float) -> Dict:
    """ETA fields for a running job from its finished-trial throughput.

    ``estimated_total_trials`` and ``eta_seconds`` are best-effort (``None``
    when the payload's parameters don't expose a trial count or no trial
    has finished yet); ``elapsed_seconds`` and ``trials_per_second`` are
    always present so clients can do their own arithmetic.
    """
    elapsed = max(now - record.started_at, 1e-9)
    rate = trials_done / elapsed
    total = estimate_total_trials(record.payload)
    eta = None
    if total is not None and rate > 0.0:
        eta = round(max(total - trials_done, 0) / rate, 3)
    return {
        "elapsed_seconds": round(elapsed, 3),
        "trials_per_second": round(rate, 3),
        "estimated_total_trials": total,
        "eta_seconds": eta,
    }


def http_json(
    method: str, url: str, payload: Optional[Dict] = None, timeout: float = 30.0
) -> Tuple[int, object]:
    """Tiny JSON-over-HTTP client: ``(status, parsed body or raw text)``.

    HTTP error statuses are returned, not raised (their JSON bodies carry
    the server's ``error`` message); transport failures (connection
    refused, DNS) still raise ``urllib.error.URLError`` for the caller.
    """
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib_request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib_request.urlopen(request, timeout=timeout) as response:
            status, body = response.status, response.read()
    except HTTPError as error:
        status, body = error.code, error.read()
    try:
        return status, json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return status, body.decode("utf-8", errors="replace")


def http_get_bytes(url: str, timeout: float = 30.0) -> Tuple[int, bytes]:
    """GET ``url`` returning ``(status, raw bytes)`` -- for artifact fetches.

    Artifacts are compared and persisted byte-for-byte, so the client must
    not round-trip them through a JSON parse.  HTTP error statuses are
    returned with their body bytes; transport failures raise ``URLError``.
    """
    try:
        with urllib_request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except HTTPError as error:
        return error.code, error.read()


__all__ = ["ReproServer", "http_get_bytes", "http_json"]
