"""Simulation-as-a-service: checkpoints, job queue, workers, HTTP API.

The serve subsystem turns the ``RunConfig -> ExperimentResult`` contract
into a durable service (see ``docs/ARCHITECTURE.md``, "serve subsystem"):

* :mod:`repro.serve.checkpoint` -- deterministic, JSON-round-tripping
  mid-run snapshots of both table engines, with bit-identical resume.
* :mod:`repro.serve.queue` -- persistent on-disk job queue
  (pending/running/done/failed, atomic claims, crash recovery).
* :mod:`repro.serve.worker` -- workers that memoize finished trials,
  checkpoint the in-flight one, and survive ``kill -9``.
* :mod:`repro.serve.cache` -- content-addressed artifact cache keyed on
  the canonical job payload digest (identical submissions never re-run).
* :mod:`repro.serve.server` -- stdlib-only threaded HTTP API
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/artifact``).
"""

from repro.serve.cache import (
    ArtifactCache,
    canonicalize_artifact,
    job_digest,
    job_id_for,
    job_payload,
)
from repro.serve.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    EngineCheckpoint,
    capture_checkpoint,
    checkpoint_unsupported_reason,
    config_digest,
    restore_simulation,
    resume_run,
)
from repro.serve.queue import JOB_STATES, JobQueue, JobRecord, UnknownJobError
from repro.serve.server import ReproServer, http_get_bytes, http_json
from repro.serve.worker import TrialMemo, Worker, drain, execute_payload

__all__ = [
    "ArtifactCache",
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "EngineCheckpoint",
    "JOB_STATES",
    "JobQueue",
    "JobRecord",
    "ReproServer",
    "TrialMemo",
    "UnknownJobError",
    "Worker",
    "canonicalize_artifact",
    "capture_checkpoint",
    "checkpoint_unsupported_reason",
    "config_digest",
    "drain",
    "execute_payload",
    "http_get_bytes",
    "http_json",
    "job_digest",
    "job_id_for",
    "job_payload",
    "restore_simulation",
    "resume_run",
]
