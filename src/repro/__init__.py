"""repro: reproduction of "Time-Optimal Self-Stabilizing Leader Election in
Population Protocols" (Burman, Chen, Chen, Doty, Nowak, Severson, Xu; PODC 2021).

The package provides:

* a population-protocol simulation engine (:mod:`repro.engine`),
* the probabilistic processes of Section 2.1 (:mod:`repro.processes`),
* the paper's protocols -- the ``Silent-n-state-SSR`` baseline,
  ``Optimal-Silent-SSR``, and ``Sublinear-Time-SSR`` with history-tree
  collision detection (:mod:`repro.core`),
* adversarial configurations and fault injection (:mod:`repro.adversary`),
* closed-form predictions, tail bounds, and scaling fits (:mod:`repro.analysis`),
* the synthetic-coin derandomization of Section 6 (:mod:`repro.derandomize`),
* an experiment harness reproducing Table 1 and every quantitative claim
  (:mod:`repro.experiments`) with a CLI (``python -m repro``).

Quickstart
----------
>>> from repro import OptimalSilentSSR, Simulation
>>> protocol = OptimalSilentSSR(32, rmax_multiplier=4.0)
>>> simulation = Simulation(protocol, rng=0)
>>> result = simulation.run_until_stabilized()
>>> sorted(state.rank for state in simulation.configuration) == list(range(1, 33))
True
"""

from repro.adversary.byzantine import ByzantineSpec
from repro.adversary.plan import FaultEvent, FaultPlan
from repro.adversary.schedulers import SchedulerSpec
from repro.core import (
    EpsilonConsensusProtocol,
    FratricideLeaderElection,
    OptimalSilentSSR,
    ResetWaveProtocol,
    SilentNStateSSR,
    SublinearTimeSSR,
    ThreeAgentSSLEWithoutRanking,
)
from repro.engine import (
    BatchSimulation,
    CompilationError,
    CompiledProtocol,
    Configuration,
    CountsSimulation,
    PopulationProtocol,
    ProtocolCompiler,
    RunConfig,
    Simulation,
    SimulationResult,
    TrialStatistics,
    UniformPairScheduler,
    make_rng,
    make_simulation,
    run_trials,
)

__version__ = "1.8.0"

__all__ = [
    "BatchSimulation",
    "ByzantineSpec",
    "CompilationError",
    "CompiledProtocol",
    "Configuration",
    "CountsSimulation",
    "EpsilonConsensusProtocol",
    "FaultEvent",
    "FaultPlan",
    "FratricideLeaderElection",
    "OptimalSilentSSR",
    "PopulationProtocol",
    "ProtocolCompiler",
    "ResetWaveProtocol",
    "RunConfig",
    "SchedulerSpec",
    "SilentNStateSSR",
    "Simulation",
    "SimulationResult",
    "SublinearTimeSSR",
    "ThreeAgentSSLEWithoutRanking",
    "TrialStatistics",
    "UniformPairScheduler",
    "__version__",
    "make_rng",
    "make_simulation",
    "run_trials",
]
