"""Measuring how many distinct states a protocol actually uses.

Table 1's "states" column is a key axis of the paper's trade-off.  For the
protocols with closed-form counts (``Silent-n-state-SSR`` has exactly ``n``)
the number is exposed via ``theoretical_state_count``; for the others we count
the distinct state signatures observed during executions, which gives an
empirical lower bound on the state usage and, more importantly, lets the
benchmarks demonstrate the qualitative gap between the O(n)-state protocols
and the history-tree protocol whose observed state count explodes with ``H``.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.engine.configuration import Configuration
from repro.engine.hooks import InteractionHook
from repro.engine.protocol import PopulationProtocol
from repro.engine.simulation import Simulation
from repro.engine.rng import RngLike


class ObservedStateCounter(InteractionHook):
    """Hook recording every distinct state signature seen during a run."""

    def __init__(self, protocol: PopulationProtocol, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self._protocol = protocol
        self._sample_every = sample_every
        self.signatures: Set[Hashable] = set()

    def record_configuration(self, configuration: Configuration) -> None:
        """Add every state signature of ``configuration`` to the observed set."""
        for state in configuration:
            self.signatures.add(self._protocol.state_signature(state))

    def on_interaction(
        self,
        interaction_index: int,
        initiator_id: int,
        responder_id: int,
        configuration: Configuration,
    ) -> None:
        if interaction_index % self._sample_every == 0:
            self.signatures.add(self._protocol.state_signature(configuration[initiator_id]))
            self.signatures.add(self._protocol.state_signature(configuration[responder_id]))

    @property
    def count(self) -> int:
        """Number of distinct states observed so far."""
        return len(self.signatures)


def count_observed_states(
    protocol: PopulationProtocol,
    configuration: Optional[Configuration] = None,
    interactions: Optional[int] = None,
    rng: RngLike = None,
) -> int:
    """Run a simulation and return how many distinct states were observed.

    ``interactions`` defaults to ``10 n`` which is enough to exercise the
    state machinery without dominating benchmark time.
    """
    counter = ObservedStateCounter(protocol)
    simulation = Simulation(protocol, configuration=configuration, rng=rng, hooks=[counter])
    counter.record_configuration(simulation.configuration)
    simulation.run(interactions if interactions is not None else 10 * protocol.n)
    counter.record_configuration(simulation.configuration)
    return counter.count


__all__ = ["ObservedStateCounter", "count_observed_states"]
