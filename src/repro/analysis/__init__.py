"""Analysis utilities: theoretical predictions, tail bounds, and scaling fits.

This subpackage implements the closed-form quantities the paper derives
(harmonic numbers, expected epidemic / roll-call / fratricide times, the
Table 1 complexity entries) and the statistical machinery the experiments use
to compare simulated measurements against those predictions (Janson-style
geometric tail bounds, Chernoff bounds, power-law fitting, and growth-model
classification).
"""

from repro.analysis.harmonic import harmonic_number
from repro.analysis.scaling import (
    GrowthFit,
    classify_growth,
    fit_growth_model,
    fit_power_law,
)
from repro.analysis.stabilization import (
    measure_recovery,
    recovered_fraction,
    recovery_curve,
    recovery_interactions,
    recovery_parallel_time,
    recovery_statistics,
)
from repro.analysis.state_space import ObservedStateCounter, count_observed_states
from repro.analysis.tolerance import (
    max_tolerated_fraction,
    measure_tolerance,
    stabilized_fraction,
    tolerance_curve,
    tolerance_point,
)
from repro.analysis.statistics import summarize
from repro.analysis.traces import (
    MetricSeries,
    MetricsRecorder,
    render_series,
    sparkline,
)
from repro.analysis.tail_bounds import (
    chernoff_interaction_bound,
    epidemic_upper_tail,
    janson_lower_tail,
    janson_upper_tail,
)
from repro.analysis.trace_summary import (
    TRACE_AREAS,
    render_trace_summary,
    summarize_trace,
)
from repro.analysis.theory import (
    TABLE1_ROWS,
    Table1Row,
    expected_all_interact_interactions,
    expected_binary_tree_assignment_time,
    expected_bounded_epidemic_time,
    expected_epidemic_interactions,
    expected_fratricide_interactions,
    expected_roll_call_interactions,
    expected_silent_n_state_worst_case_interactions,
    predicted_parallel_time,
)

__all__ = [
    "GrowthFit",
    "MetricSeries",
    "MetricsRecorder",
    "ObservedStateCounter",
    "render_series",
    "sparkline",
    "TABLE1_ROWS",
    "TRACE_AREAS",
    "Table1Row",
    "chernoff_interaction_bound",
    "classify_growth",
    "count_observed_states",
    "epidemic_upper_tail",
    "expected_all_interact_interactions",
    "expected_binary_tree_assignment_time",
    "expected_bounded_epidemic_time",
    "expected_epidemic_interactions",
    "expected_fratricide_interactions",
    "expected_roll_call_interactions",
    "expected_silent_n_state_worst_case_interactions",
    "fit_growth_model",
    "fit_power_law",
    "harmonic_number",
    "janson_lower_tail",
    "janson_upper_tail",
    "max_tolerated_fraction",
    "measure_recovery",
    "measure_tolerance",
    "predicted_parallel_time",
    "recovered_fraction",
    "recovery_curve",
    "render_trace_summary",
    "summarize_trace",
    "recovery_interactions",
    "recovery_parallel_time",
    "recovery_statistics",
    "stabilized_fraction",
    "summarize",
    "tolerance_curve",
    "tolerance_point",
]
