"""Trajectory recording and lightweight text plotting.

The paper's arguments are about how population-level quantities evolve over
parallel time: the number of leaders shrinking under fratricide, the reset
wave sweeping the population, rosters filling up, the count of Settled agents
climbing level by level in the binary-tree assignment.  This module records
such quantities during a simulation (as an engine hook) and renders them as
compact ASCII sparklines/plots so examples and the CLI can show dynamics
without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.configuration import Configuration
from repro.engine.hooks import InteractionHook

#: Characters used for sparklines, from lowest to highest.
SPARK_LEVELS = " .:-=+*#%@"


@dataclass
class MetricSeries:
    """A named time series of (parallel time, value) samples."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record one sample."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def final_value(self) -> Optional[float]:
        """Last recorded value (``None`` if empty)."""
        return self.values[-1] if self.values else None

    def downsample(self, points: int) -> "MetricSeries":
        """Return a copy with at most ``points`` evenly spaced samples."""
        if points < 1:
            raise ValueError(f"points must be positive, got {points}")
        if len(self.values) <= points:
            return MetricSeries(self.name, list(self.times), list(self.values))
        step = len(self.values) / points
        indices = [int(i * step) for i in range(points)]
        if indices[-1] != len(self.values) - 1:
            indices.append(len(self.values) - 1)
        return MetricSeries(
            self.name,
            [self.times[i] for i in indices],
            [self.values[i] for i in indices],
        )


class MetricsRecorder(InteractionHook):
    """Engine hook recording several named configuration metrics over time.

    Parameters
    ----------
    metrics:
        Mapping from series name to a function of the configuration.
    every:
        Sampling interval in interactions.
    """

    def __init__(
        self,
        metrics: Dict[str, Callable[[Configuration], float]],
        every: int = 1,
        population_size: Optional[int] = None,
    ):
        if not metrics:
            raise ValueError("at least one metric is required")
        if every < 1:
            raise ValueError(f"sampling interval must be positive, got {every}")
        self._metrics = dict(metrics)
        self._every = every
        self._n = population_size
        self.series: Dict[str, MetricSeries] = {name: MetricSeries(name) for name in metrics}

    def _record(self, interaction_index: int, configuration: Configuration) -> None:
        n = self._n if self._n is not None else len(configuration)
        time = interaction_index / n
        for name, metric in self._metrics.items():
            self.series[name].append(time, float(metric(configuration)))

    def record_now(self, configuration: Configuration, interaction_index: int = 0) -> None:
        """Record a sample outside the hook mechanism (e.g. the initial state)."""
        self._record(interaction_index, configuration)

    def on_interaction(
        self,
        interaction_index: int,
        initiator_id: int,
        responder_id: int,
        configuration: Configuration,
    ) -> None:
        if interaction_index % self._every == 0:
            self._record(interaction_index, configuration)

    def on_run_end(self, interaction_index: int, configuration: Configuration) -> None:
        self._record(interaction_index, configuration)

    def __getitem__(self, name: str) -> MetricSeries:
        return self.series[name]


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a one-line ASCII sparkline of at most ``width`` chars."""
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    if not values:
        return ""
    series = MetricSeries("", values=list(values), times=list(range(len(values))))
    compact = series.downsample(width).values
    low, high = min(compact), max(compact)
    if high == low:
        return SPARK_LEVELS[len(SPARK_LEVELS) // 2] * len(compact)
    scale = len(SPARK_LEVELS) - 1
    return "".join(
        SPARK_LEVELS[round((value - low) / (high - low) * scale)] for value in compact
    )


def render_series(
    series: MetricSeries,
    width: int = 60,
    height: int = 8,
) -> str:
    """Render a time series as a small multi-line ASCII plot.

    The plot shows ``height`` rows, value range on the left, and the parallel
    time range underneath.
    """
    if width < 1 or height < 2:
        raise ValueError("width must be >= 1 and height >= 2")
    if not series.values:
        return f"{series.name}: (no samples)"
    compact = series.downsample(width)
    low, high = min(compact.values), max(compact.values)
    span = high - low or 1.0
    columns = [
        min(height - 1, int(round((value - low) / span * (height - 1))))
        for value in compact.values
    ]
    rows = []
    for row in range(height - 1, -1, -1):
        line = "".join("#" if column >= row else " " for column in columns)
        label = f"{low + span * row / (height - 1):>10.2f} |"
        rows.append(label + line)
    time_low = compact.times[0]
    time_high = compact.times[-1]
    footer = " " * 11 + f"t = {time_low:.1f} .. {time_high:.1f} (parallel time)"
    return f"{series.name}\n" + "\n".join(rows) + "\n" + footer


def leader_count_metric(is_leader: Callable) -> Callable[[Configuration], float]:
    """Convenience metric: number of agents satisfying ``is_leader``."""
    return lambda configuration: float(configuration.count_where(is_leader))


__all__ = [
    "MetricSeries",
    "MetricsRecorder",
    "SPARK_LEVELS",
    "leader_count_metric",
    "render_series",
    "sparkline",
]
