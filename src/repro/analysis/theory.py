"""Closed-form predictions derived in the paper.

Every function returns the quantity the corresponding lemma/theorem predicts
(in *interactions* unless the name says otherwise), so experiments can print a
paper-vs-measured comparison for each table and figure entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.harmonic import harmonic_number


# -- Section 2.1: probabilistic tools ------------------------------------------------------


def expected_epidemic_interactions(n: int) -> float:
    """Lemma 2.7: ``E[T_n] = (n - 1) H_{n-1}`` for the two-way epidemic."""
    if n < 1:
        raise ValueError(f"population size must be positive, got {n}")
    return (n - 1) * harmonic_number(n - 1)


def expected_roll_call_interactions(n: int) -> float:
    """Lemma 2.9: ``E[R_n] ~ 1.5 n ln n`` for the roll-call process."""
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    return 1.5 * n * math.log(n)


def expected_all_interact_interactions(n: int) -> float:
    """``E_1 ~ 0.5 n ln n``: interactions until every agent has interacted."""
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    return 0.5 * n * math.log(n)


def expected_bounded_epidemic_time(n: int, k: int) -> float:
    """Lemma 2.10 / 2.11: upper bound on ``E[tau_k]`` in parallel time.

    ``k n^{1/k}`` for constant ``k``; ``3 ln n`` once ``k >= 3 log2 n``.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    if k < 1:
        raise ValueError(f"level bound k must be positive, got {k}")
    if k >= 3 * math.log2(n):
        return 3.0 * math.log(n)
    return k * n ** (1.0 / k)


def expected_fratricide_interactions(n: int, initial_leaders: Optional[int] = None) -> float:
    """Lemma 4.2: expected interactions of ``L, L -> L, F`` down to one leader."""
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    if initial_leaders is None:
        initial_leaders = n
    if not 1 <= initial_leaders <= n:
        raise ValueError(f"initial_leaders must be in [1, {n}], got {initial_leaders}")
    total = 0.0
    for leaders in range(2, initial_leaders + 1):
        total += n * (n - 1) / (leaders * (leaders - 1))
    return total


# -- Theorem 2.4 and Lemma 4.1 ---------------------------------------------------------------


def expected_silent_n_state_worst_case_interactions(n: int) -> float:
    """Theorem 2.4 lower bound: ``(n - 1) * C(n, 2)`` interactions from the worst case."""
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    return (n - 1) * n * (n - 1) / 2.0


def expected_binary_tree_assignment_time(n: int, constant: float = 2.0) -> float:
    """Lemma 4.1: the binary-tree rank assignment takes ``O(n)`` parallel time.

    The lemma's level-by-level bound gives roughly ``constant * n``; the
    default constant of 2 matches the geometric sum over levels.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    return constant * n


# -- Table 1: protocol-level predictions -------------------------------------------------------


def predicted_parallel_time(protocol: str, n: int, depth: Optional[int] = None) -> float:
    """Expected stabilization time (parallel) predicted by Table 1.

    ``protocol`` is one of ``"silent-n-state"``, ``"optimal-silent"``,
    ``"sublinear"`` (requires ``depth``); the returned value drops the
    unspecified constants, i.e. it is the leading-order term only.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    if protocol == "silent-n-state":
        return float(n * n)
    if protocol == "optimal-silent":
        return float(n)
    if protocol == "sublinear":
        if depth is None:
            raise ValueError("the sublinear protocol needs the depth parameter H")
        if depth >= math.log2(n):
            return math.log(n)
        return (depth + 1) * n ** (1.0 / (depth + 1))
    raise ValueError(f"unknown protocol {protocol!r}")


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    protocol: str
    expected_time: str
    whp_time: str
    states: str
    silent: bool
    expected_time_fn: Callable[[int], float]


TABLE1_ROWS: List[Table1Row] = [
    Table1Row(
        protocol="Silent-n-state-SSR [21]",
        expected_time="Theta(n^2)",
        whp_time="Theta(n^2)",
        states="n",
        silent=True,
        expected_time_fn=lambda n: predicted_parallel_time("silent-n-state", n),
    ),
    Table1Row(
        protocol="Optimal-Silent-SSR (Sec. 4)",
        expected_time="Theta(n)",
        whp_time="Theta(n log n)",
        states="O(n)",
        silent=True,
        expected_time_fn=lambda n: predicted_parallel_time("optimal-silent", n),
    ),
    Table1Row(
        protocol="Sublinear-Time-SSR (H = Theta(log n))",
        expected_time="Theta(log n)",
        whp_time="Theta(log n)",
        states="exp(O(n^{log n} log n))",
        silent=False,
        expected_time_fn=lambda n: predicted_parallel_time(
            "sublinear", n, depth=max(1, math.ceil(math.log2(n)))
        ),
    ),
    Table1Row(
        protocol="Sublinear-Time-SSR (constant H)",
        expected_time="Theta(H n^{1/(H+1)})",
        whp_time="Theta(log n * n^{1/(H+1)})",
        states="Theta(n^{Theta(n^H)} log n)",
        silent=False,
        expected_time_fn=lambda n: predicted_parallel_time("sublinear", n, depth=1),
    ),
]


def predicted_state_count(protocol: str, n: int) -> Optional[int]:
    """Number of states predicted by Table 1 where it is finite and closed-form."""
    if protocol == "silent-n-state":
        return n
    if protocol == "optimal-silent":
        return None  # O(n): the constant depends on parameter choices.
    return None


__all__ = [
    "TABLE1_ROWS",
    "Table1Row",
    "expected_all_interact_interactions",
    "expected_binary_tree_assignment_time",
    "expected_bounded_epidemic_time",
    "expected_epidemic_interactions",
    "expected_fratricide_interactions",
    "expected_roll_call_interactions",
    "expected_silent_n_state_worst_case_interactions",
    "predicted_parallel_time",
    "predicted_state_count",
]
