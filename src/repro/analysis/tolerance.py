"""Byzantine tolerance curves: how much persistent hostility a protocol survives.

Where :mod:`repro.analysis.stabilization` measures recovery after *transient*
faults, this module measures stabilization against *persistent* adversaries:
for each Byzantine fraction ``f`` it runs repeated trials with a
:class:`~repro.adversary.byzantine.ByzantineSpec` on the
:class:`~repro.engine.run_config.RunConfig` and reports the fraction of
trials whose honest sub-population stabilized within the cap.  The tolerance
curve is that fraction as a function of ``f``; the *tolerance threshold* is
the largest ``f`` before the curve first drops below a success criterion.

Censoring follows the stabilization-analysis conventions: trials that hit the
interaction cap never count as stabilized but stay in the denominator (the
plateau below 1.0 is the honest failure rate within the cap), and their
parallel times contribute the (censored) cap time, so the summary statistics
stay conservative rather than silently optimistic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.adversary.byzantine import ByzantineSpec
from repro.analysis.stabilization import recovered_fraction
from repro.engine.results import SimulationResult, TrialStatistics


def stabilized_fraction(results: Sequence[SimulationResult]) -> float:
    """Fraction of trials whose stop condition fired before the cap.

    Identical censoring convention to
    :func:`~repro.analysis.stabilization.recovered_fraction` (capped trials
    stay in the denominator); named for the persistent-adversary reading.
    """
    return recovered_fraction(results)


def tolerance_point(
    fraction: float,
    results: Sequence[SimulationResult],
    label: str = "",
) -> Dict:
    """One tolerance-curve row for the trials run at Byzantine fraction ``f``.

    ``mean time`` / ``p90 time`` are parallel times to the stop condition
    with censored trials contributing their cap time.
    """
    if not results:
        raise ValueError("tolerance_point needs at least one result")
    times = [result.parallel_time for result in results]
    statistics = TrialStatistics.from_values(
        label or f"byzantine f={fraction}", results[0].n, times
    )
    return {
        "fraction": fraction,
        "trials": len(results),
        "stabilized fraction": stabilized_fraction(results),
        "mean time": statistics.mean,
        "p90 time": statistics.quantile(0.9),
    }


def tolerance_curve(
    results_by_fraction: Mapping[float, Sequence[SimulationResult]],
    label: str = "",
) -> List[Dict]:
    """Tolerance-curve rows, ordered by increasing Byzantine fraction."""
    return [
        tolerance_point(fraction, results_by_fraction[fraction], label=label)
        for fraction in sorted(results_by_fraction)
    ]


def max_tolerated_fraction(
    rows: Sequence[Mapping], threshold: float = 0.5
) -> Optional[float]:
    """The largest fraction before the curve first fails the criterion.

    Scans the rows in increasing-``fraction`` order and returns the last
    fraction whose ``stabilized fraction`` is at least ``threshold`` *before*
    the first failure -- tolerance is a threshold phenomenon, so a later
    accidental success (small-sample noise above a failing fraction) does not
    extend it.  Returns ``None`` when even the smallest measured fraction
    fails.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    tolerated: Optional[float] = None
    for row in sorted(rows, key=lambda row: row["fraction"]):
        if row["stabilized fraction"] < threshold:
            break
        tolerated = row["fraction"]
    return tolerated


def measure_tolerance(
    protocol_factory: Callable,
    fractions: Sequence[float],
    trials: int,
    run,
    strategy: str = "worst_case",
    configuration_factory: Optional[Callable] = None,
    label: str = "",
) -> List[Dict]:
    """Measure one protocol's tolerance curve through the experiment harness.

    Runs ``trials`` independent trials at every Byzantine fraction (same
    ``run.seed`` root, so the honest trial streams are matched across
    fractions) and returns the :func:`tolerance_curve` rows.  ``run`` selects
    engine, stop condition, seed, caps, and worker count as usual; its
    ``byzantine`` field is overridden per fraction.
    """
    # Imported here: analysis is a lower layer than the experiment harness.
    from repro.experiments.harness import run_trials

    results_by_fraction: Dict[float, Sequence[SimulationResult]] = {}
    for fraction in fractions:
        spec = ByzantineSpec(fraction=float(fraction), strategy=strategy)
        results_by_fraction[float(fraction)] = run_trials(
            protocol_factory,
            trials,
            run=run.replace(byzantine=spec),
            configuration_factory=configuration_factory,
        )
    return tolerance_curve(results_by_fraction, label=label)


__all__ = [
    "max_tolerated_fraction",
    "measure_tolerance",
    "stabilized_fraction",
    "tolerance_curve",
    "tolerance_point",
]
