"""Stabilization-time analysis for fault campaigns.

A self-stabilization claim is a statement about what happens *after the last
transient fault*: the paper's protocols must reach a correct output (and,
for the silent ones, a silent configuration) within their time bound from
whatever configuration the final burst leaves behind.  This module turns the
:class:`~repro.engine.results.SimulationResult` records produced by runs
with a :class:`~repro.adversary.plan.FaultPlan` into exactly those
quantities:

* **recovery time** -- parallel time from the final fault event to the stop
  condition (time-to-correct-output or time-to-silence, depending on the
  run's ``stop``);
* **recovery statistics** -- :class:`~repro.engine.results.TrialStatistics`
  over repeated trials, with censored (capped) trials kept conservative;
* **recovery curves** -- the empirical fraction of trials recovered as a
  function of time since the last fault.

Runs without faults degrade gracefully: the "last fault" is interaction 0,
so recovery time equals plain stabilization time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

# The writer of the key (FaultCampaign.annotate) owns its name; importing it
# keeps reader and writer from drifting apart silently.
from repro.adversary.campaign import LAST_FAULT_AT_KEY
from repro.engine.results import SimulationResult, TrialStatistics


def recovery_interactions(result: SimulationResult) -> int:
    """Interactions executed after the final fault event.

    Results without campaign provenance count from interaction 0, so the
    function is total over fault-free runs.
    """
    last_fault_at = int(result.extra.get(LAST_FAULT_AT_KEY, 0.0))
    return max(0, result.interactions - last_fault_at)


def recovery_parallel_time(result: SimulationResult) -> float:
    """Parallel time (interactions / n) from the final fault to the stop."""
    return recovery_interactions(result) / result.n


def recovered_fraction(results: Sequence[SimulationResult]) -> float:
    """Fraction of trials whose stop condition fired before the cap."""
    if not results:
        raise ValueError("recovered_fraction needs at least one result")
    return sum(1 for result in results if result.stopped) / len(results)


def recovery_statistics(
    label: str, results: Sequence[SimulationResult]
) -> TrialStatistics:
    """Per-trial recovery times as :class:`TrialStatistics`.

    Trials that hit the interaction cap contribute their (censored) cap
    time, matching the harness convention: summary statistics stay
    conservative rather than silently optimistic.
    """
    if not results:
        raise ValueError("recovery_statistics needs at least one result")
    times = [recovery_parallel_time(result) for result in results]
    return TrialStatistics.from_values(label, results[0].n, times)


def recovery_curve(
    results: Sequence[SimulationResult], points: int = 32
) -> List[Dict[str, float]]:
    """Empirical recovery curve: fraction of trials recovered by time ``t``.

    Returns ``points`` rows ``{"time": t, "fraction_recovered": f}`` on an
    even grid from 0 to the largest *successful* recovery time.  Censored
    trials (cap hit before the stop condition) never count as recovered but
    stay in the denominator, so the curve's plateau below 1.0 is the honest
    failure rate within the cap.
    """
    if points < 2:
        raise ValueError(f"points must be at least 2, got {points}")
    if not results:
        raise ValueError("recovery_curve needs at least one result")
    recovered = sorted(
        recovery_parallel_time(result) for result in results if result.stopped
    )
    horizon = recovered[-1] if recovered else 0.0
    total = len(results)
    rows: List[Dict[str, float]] = []
    for step in range(points):
        time = horizon * step / (points - 1)
        done = sum(1 for value in recovered if value <= time)
        rows.append({"time": time, "fraction_recovered": done / total})
    return rows


def measure_recovery(
    protocol_factory: Callable,
    plan,
    trials: int,
    run,
    configuration_factory: Optional[Callable] = None,
    stops: Sequence[str] = ("correct", "silent"),
    label: str = "",
) -> Dict[str, TrialStatistics]:
    """Recovery-time statistics per stop condition for one fault plan.

    Runs ``trials`` independent campaigns through the experiment harness for
    each requested stop condition (``"correct"`` measures time to correct
    output, ``"silent"`` time to silence) and returns a mapping ``stop ->
    TrialStatistics`` of the recovery times after the plan's last event.
    ``run`` selects engine, seed, caps, and worker count as usual; its
    ``faults``/``stop`` fields are overridden per measurement.
    """
    # Imported here: analysis is a lower layer than the experiment harness.
    from repro.experiments.harness import run_trials

    measurements: Dict[str, TrialStatistics] = {}
    for stop in stops:
        results = run_trials(
            protocol_factory,
            trials,
            run=run.replace(stop=stop, faults=plan),
            configuration_factory=configuration_factory,
        )
        measurements[stop] = recovery_statistics(
            f"{label or protocol_factory().name} ({stop})", results
        )
    return measurements


__all__ = [
    "LAST_FAULT_AT_KEY",
    "measure_recovery",
    "recovered_fraction",
    "recovery_curve",
    "recovery_interactions",
    "recovery_parallel_time",
    "recovery_statistics",
]
