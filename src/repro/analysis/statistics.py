"""Small statistical helpers shared by experiments and tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary (for report rows)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Compute count / mean / std / min / median / max of ``values``."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(float(v) for v in values)
    count = len(ordered)
    mean = sum(ordered) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in ordered) / (count - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    middle = count // 2
    if count % 2 == 1:
        median = ordered[middle]
    else:
        median = 0.5 * (ordered[middle - 1] + ordered[middle])
    return Summary(
        count=count,
        mean=mean,
        std=std,
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


def relative_error(measured: float, predicted: float) -> float:
    """``|measured - predicted| / |predicted|`` (``inf`` when predicted is 0)."""
    if predicted == 0:
        return math.inf if measured != 0 else 0.0
    return abs(measured - predicted) / abs(predicted)


def ratio(measured: float, predicted: float) -> float:
    """``measured / predicted`` (``inf`` when predicted is 0)."""
    if predicted == 0:
        return math.inf if measured != 0 else 1.0
    return measured / predicted


__all__ = ["Summary", "ratio", "relative_error", "summarize"]
