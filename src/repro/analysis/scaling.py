"""Fitting growth laws to measured running times.

The paper's claims are asymptotic (Theta(n^2), Theta(n), Theta(log n), ...);
the reproduction validates them by sweeping the population size, fitting
candidate growth models to the measured parallel times, and checking that the
best-fitting model (or the fitted power-law exponent) matches the claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

#: Candidate growth models, mapping a label to f(n) up to a constant factor.
GROWTH_MODELS: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "log n": lambda n: math.log(n),
    "sqrt n": lambda n: math.sqrt(n),
    "n^(2/3)": lambda n: n ** (2.0 / 3.0),
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log(n),
    "n^2": lambda n: float(n) ** 2,
    "n^3": lambda n: float(n) ** 3,
}


@dataclass(frozen=True)
class GrowthFit:
    """Result of fitting a single growth model ``value ~ c * f(n)``."""

    model: str
    coefficient: float
    residual: float

    def predict(self, n: float) -> float:
        """Predicted value at population size ``n``."""
        return self.coefficient * GROWTH_MODELS[self.model](n)


def fit_power_law(ns: Sequence[float], values: Sequence[float]) -> Tuple[float, float, float]:
    """Fit ``value ~ c * n^alpha`` by least squares in log-log space.

    Returns ``(alpha, c, r_squared)``.
    """
    if len(ns) != len(values):
        raise ValueError("ns and values must have the same length")
    if len(ns) < 2:
        raise ValueError("need at least two points to fit a power law")
    if any(n <= 0 for n in ns) or any(v <= 0 for v in values):
        raise ValueError("power-law fitting requires positive data")
    log_n = np.log(np.asarray(ns, dtype=float))
    log_v = np.log(np.asarray(values, dtype=float))
    alpha, intercept = np.polyfit(log_n, log_v, 1)
    predictions = alpha * log_n + intercept
    ss_res = float(np.sum((log_v - predictions) ** 2))
    ss_tot = float(np.sum((log_v - np.mean(log_v)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(alpha), float(math.exp(intercept)), r_squared


def fit_growth_model(
    ns: Sequence[float], values: Sequence[float], model: str
) -> GrowthFit:
    """Least-squares fit of ``value ~ c * f(n)`` for a single named model.

    The residual reported is the root-mean-square error of the fit in
    *relative* terms (normalized by the mean measured value), so residuals are
    comparable across models and data scales.
    """
    if model not in GROWTH_MODELS:
        raise ValueError(f"unknown growth model {model!r}")
    if len(ns) != len(values):
        raise ValueError("ns and values must have the same length")
    if not ns:
        raise ValueError("need at least one data point")
    f = GROWTH_MODELS[model]
    basis = np.asarray([f(n) for n in ns], dtype=float)
    measured = np.asarray(values, dtype=float)
    denominator = float(np.dot(basis, basis))
    coefficient = float(np.dot(basis, measured) / denominator) if denominator > 0 else 0.0
    residuals = measured - coefficient * basis
    scale = float(np.mean(np.abs(measured))) or 1.0
    rmse = float(np.sqrt(np.mean(residuals**2))) / scale
    return GrowthFit(model=model, coefficient=coefficient, residual=rmse)


def classify_growth(
    ns: Sequence[float],
    values: Sequence[float],
    candidates: Sequence[str] = ("log n", "sqrt n", "n", "n log n", "n^2"),
) -> GrowthFit:
    """Return the candidate growth model with the smallest relative residual."""
    if not candidates:
        raise ValueError("need at least one candidate model")
    fits = [fit_growth_model(ns, values, model) for model in candidates]
    return min(fits, key=lambda fit: fit.residual)


__all__ = ["GROWTH_MODELS", "GrowthFit", "classify_growth", "fit_growth_model", "fit_power_law"]
