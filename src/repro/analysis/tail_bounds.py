"""Tail bounds used throughout the paper's analysis.

* Janson's bounds for sums of independent geometric random variables
  (Theorems 2.1 and 3.1 of [43]), used in Theorem 2.4.
* The explicit epidemic upper tail of Lemma 2.7: ``P[T_n > (1 + d) E[T_n]]
  <= 2.5 ln(n) n^{-2d}`` for ``n >= 8``.
* A Chernoff-style bound on how many interactions a single agent participates
  in over a span of interactions, used when arguing about per-agent counters
  (``delaytimer``, ``errorcount``, edge timers).
"""

from __future__ import annotations

import math
from typing import Sequence


def janson_upper_tail(mu: float, p_min: float, lam: float) -> float:
    """Janson Theorem 2.1: ``P[X >= lam * mu] <= exp(-p_min * mu * (lam - 1 - ln lam))``.

    ``X`` is a sum of independent geometric random variables with expectation
    ``mu`` and smallest success probability ``p_min``; ``lam >= 1``.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    if not 0 < p_min <= 1:
        raise ValueError(f"p_min must be in (0, 1], got {p_min}")
    if lam < 1:
        raise ValueError(f"lambda must be at least 1, got {lam}")
    return math.exp(-p_min * mu * (lam - 1 - math.log(lam)))


def janson_lower_tail(mu: float, p_min: float, lam: float) -> float:
    """Janson Theorem 3.1: ``P[X <= lam * mu] <= exp(-p_min * mu * (lam - 1 - ln lam))``.

    Here ``0 < lam <= 1``; note ``lam - 1 - ln lam >= 0`` in this range.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    if not 0 < p_min <= 1:
        raise ValueError(f"p_min must be in (0, 1], got {p_min}")
    if not 0 < lam <= 1:
        raise ValueError(f"lambda must be in (0, 1], got {lam}")
    return math.exp(-p_min * mu * (lam - 1 - math.log(lam)))


def epidemic_upper_tail(n: int, delta: float) -> float:
    """Lemma 2.7: ``P[T_n > (1 + delta) E[T_n]] <= 2.5 ln(n) * n^{-2 delta}`` (``n >= 8``)."""
    if n < 8:
        raise ValueError(f"the bound of Lemma 2.7 requires n >= 8, got {n}")
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    return 2.5 * math.log(n) * n ** (-2.0 * delta)


def chernoff_interaction_bound(n: int, interactions: int, per_agent_cap: int) -> float:
    """Upper bound on the probability one fixed agent exceeds ``per_agent_cap`` interactions.

    Over ``interactions`` scheduler steps a fixed agent participates in a
    Binomial(``interactions``, ``2/n``) number of them; this returns the
    standard multiplicative Chernoff upper-tail bound for exceeding the cap.
    Returns 1.0 when the cap is below the mean (the bound is vacuous there).
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    if interactions < 0 or per_agent_cap < 0:
        raise ValueError("interaction counts must be non-negative")
    mean = 2.0 * interactions / n
    if mean == 0:
        return 0.0 if per_agent_cap >= 0 else 1.0
    if per_agent_cap <= mean:
        return 1.0
    delta = per_agent_cap / mean - 1.0
    exponent = -(delta * delta) * mean / (2.0 + delta)
    return math.exp(exponent)


def sum_of_geometrics_mean(probabilities: Sequence[float]) -> float:
    """Expectation of a sum of independent geometric variables (``sum 1/p_i``)."""
    if not probabilities:
        return 0.0
    if any(not 0 < p <= 1 for p in probabilities):
        raise ValueError("all success probabilities must lie in (0, 1]")
    return sum(1.0 / p for p in probabilities)


__all__ = [
    "chernoff_interaction_bound",
    "epidemic_upper_tail",
    "janson_lower_tail",
    "janson_upper_tail",
    "sum_of_geometrics_mean",
]
