"""Harmonic numbers and related elementary quantities."""

from __future__ import annotations

import math

#: Euler-Mascheroni constant, used by the asymptotic approximation.
EULER_MASCHERONI = 0.5772156649015329


def harmonic_number(k: int) -> float:
    """The ``k``-th harmonic number ``H_k = sum_{i=1}^{k} 1/i`` (``H_0 = 0``).

    Computed exactly for small ``k`` and via the asymptotic expansion
    ``ln k + gamma + 1/(2k) - 1/(12k^2)`` for large ``k`` (error below 1e-12
    in that regime).
    """
    if k < 0:
        raise ValueError(f"harmonic numbers are defined for k >= 0, got {k}")
    if k == 0:
        return 0.0
    if k <= 10_000:
        return sum(1.0 / i for i in range(1, k + 1))
    return math.log(k) + EULER_MASCHERONI + 1.0 / (2 * k) - 1.0 / (12 * k * k)


__all__ = ["EULER_MASCHERONI", "harmonic_number"]
