"""Offline trace analysis for ``repro trace FILE``.

Consumes the record list produced by
:func:`repro.telemetry.tracing.read_trace` and reduces it to the numbers
an operator actually asks of a finished run: how long each phase took,
aggregate throughput (interactions per wall-clock second), per-engine
trial totals, and the window-size histogram recovered from the final
``metrics`` snapshot record.

The renderer is sectioned by *area* (``run``, ``phases``, ``trials``,
``windows``); an unknown area raises :class:`TraceError`, which the CLI
maps to its ``error:`` + exit-2 contract.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.telemetry.tracing import TraceError

#: The metric areas ``repro trace --area`` accepts.
TRACE_AREAS = ("run", "phases", "trials", "windows")


def summarize_trace(records: Sequence[Dict]) -> Dict:
    """Reduce a validated record list to one summary dict (JSON-able)."""
    header = records[0]
    runs = [r for r in records if r.get("kind") == "run"]
    experiments = [r for r in records if r.get("kind") == "experiment"]
    calls = [r for r in records if r.get("kind") == "harness_call"]
    trials = [r for r in records if r.get("kind") == "trial"]
    jobs = [r for r in records if r.get("kind") == "job"]
    snapshots = [r for r in records if r.get("kind") == "metrics"]

    interactions = sum(int(r.get("interactions", 0)) for r in trials)
    run_seconds = sum(float(r.get("dur", 0.0)) for r in runs)
    if run_seconds <= 0.0:
        # Serve traces have job spans but no run span; fall back to them.
        run_seconds = sum(float(r.get("dur", 0.0)) for r in jobs)

    by_engine: Dict[str, Dict] = {}
    for record in trials:
        engine = str(record.get("engine", "?"))
        slot = by_engine.setdefault(engine, {"trials": 0, "interactions": 0})
        slot["trials"] += 1
        slot["interactions"] += int(record.get("interactions", 0))

    phases = [
        {
            "phase": str(r.get("experiment", r.get("label", "?"))),
            "seconds": round(float(r.get("dur", 0.0)), 6),
        }
        for r in experiments
    ]
    harness_calls = [
        {
            "call": str(r.get("call", "?")),
            "engine": str(r.get("engine", "?")),
            "trials": int(r.get("trials", 0)),
            "seconds": round(float(r.get("dur", 0.0)), 6),
        }
        for r in calls
    ]

    return {
        "run_id": header.get("run_id"),
        "version": header.get("version"),
        "records": len(records),
        "runs": len(runs),
        "jobs": len(jobs),
        "run_seconds": round(run_seconds, 6),
        "trials": len(trials),
        "interactions": interactions,
        "interactions_per_second": (
            round(interactions / run_seconds, 3) if run_seconds > 0 else None
        ),
        "engines": {engine: by_engine[engine] for engine in sorted(by_engine)},
        "phases": phases,
        "harness_calls": harness_calls,
        "window_histogram": (
            _window_histogram(snapshots[-1]) if snapshots else {}
        ),
    }


def _window_histogram(snapshot_record: Dict) -> Dict[str, Dict]:
    """Per-engine window-size buckets out of a ``metrics`` snapshot record."""
    snapshot = snapshot_record.get("snapshot") or {}
    family = (snapshot.get("families") or {}).get("repro_window_size")
    if family is None:
        return {}
    bounds = [float(bound) for bound in family.get("buckets", [])] + [math.inf]
    histogram: Dict[str, Dict] = {}
    for sample in snapshot.get("samples", []):
        if sample.get("name") != "repro_window_size":
            continue
        engine = str(sample.get("labels", {}).get("engine", "?"))
        histogram[engine] = {
            "bounds": [("+Inf" if b == math.inf else int(b)) for b in bounds],
            "counts": [int(count) for count in sample.get("buckets", [])],
            "count": int(sample.get("count", 0)),
            "sum": float(sample.get("sum", 0.0)),
        }
    return histogram


def render_trace_summary(summary: Dict, area: Optional[str] = None) -> str:
    """The ``repro trace`` report; ``area`` narrows to one section."""
    if area is not None and area not in TRACE_AREAS:
        raise TraceError(
            f"unknown metric area {area!r}: choose from {', '.join(TRACE_AREAS)}"
        )
    from repro.experiments.report import format_table  # deferred: import cycle
    sections: List[str] = []
    if area in (None, "run"):
        lines = [
            f"run_id:          {summary.get('run_id')}",
            f"records:         {summary.get('records')}",
            f"trials:          {summary.get('trials')}",
            f"interactions:    {summary.get('interactions')}",
            f"wall time (s):   {summary.get('run_seconds')}",
        ]
        rate = summary.get("interactions_per_second")
        lines.append(
            f"interactions/s:  {rate if rate is not None else 'n/a (no run span)'}"
        )
        sections.append("\n".join(lines))
    if area in (None, "phases"):
        rows = summary.get("phases") or []
        sections.append(
            format_table(rows, columns=["phase", "seconds"], title="per-phase wall time")
            if rows
            else "per-phase wall time\n(no experiment spans)"
        )
    if area in (None, "trials"):
        rows = [
            {"engine": engine, **stats}
            for engine, stats in (summary.get("engines") or {}).items()
        ]
        sections.append(
            format_table(
                rows, columns=["engine", "trials", "interactions"], title="trials by engine"
            )
            if rows
            else "trials by engine\n(no trial records)"
        )
    if area in (None, "windows"):
        histogram = summary.get("window_histogram") or {}
        if not histogram:
            sections.append("window histogram\n(no metrics snapshot in trace)")
        else:
            rows = []
            for engine, data in sorted(histogram.items()):
                for bound, count in zip(data["bounds"], data["counts"]):
                    if count:
                        rows.append(
                            {"engine": engine, "window <=": bound, "windows": count}
                        )
                rows.append(
                    {
                        "engine": engine,
                        "window <=": "total",
                        "windows": data["count"],
                    }
                )
            sections.append(
                format_table(
                    rows,
                    columns=["engine", "window <=", "windows"],
                    title="window histogram",
                )
            )
    return "\n\n".join(sections)


__all__ = ["TRACE_AREAS", "render_trace_summary", "summarize_trace"]
