"""Protocol 1: ``Silent-n-state-SSR`` (Cai, Izumi, Wada).

Each agent holds ``rank`` in ``{0, ..., n-1}``; when the initiator and
responder have equal ranks, the responder moves up by one rank modulo ``n``.
The protocol is silent, uses exactly ``n`` states (optimal by Theorem 2.1),
and stabilizes to a valid ranking in Theta(n^2) parallel time (Theorem 2.4).

The analysis rests on the *barrier rank* invariant (Lemmas 2.2 and 2.3):
from any configuration there is a rank ``k`` such that no prefix of ranks
counted cyclically downward from ``k`` ever holds more agents than it has
slots, so rank ``k`` is never occupied by two agents and rank increments never
wrap past it.  :func:`find_barrier_rank` and :func:`barrier_invariant_holds`
expose this invariant for tests and experiments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.rng import RngLike, make_rng
from repro.engine.state import AgentState


class SilentNStateState(AgentState):
    """State of an agent in Protocol 1: a single ``rank`` in ``{0, ..., n-1}``."""

    def __init__(self, rank: int):
        self.rank = int(rank)

    def signature(self):
        return self.rank

    def clone(self) -> "SilentNStateState":
        return SilentNStateState(self.rank)


class SilentNStateSSR(PopulationProtocol):
    """The n-state Theta(n^2)-time silent self-stabilizing ranking protocol."""

    name = "Silent-n-state-SSR"

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> SilentNStateState:
        """Clean start: agent ``i`` already holds rank ``i`` (a correct ranking)."""
        return SilentNStateState(rank=agent_id)

    def random_state(self, rng: np.random.Generator) -> SilentNStateState:
        return SilentNStateState(rank=int(rng.integers(0, self.n)))

    def transition(
        self,
        initiator: SilentNStateState,
        responder: SilentNStateState,
        rng: np.random.Generator,
    ) -> None:
        if initiator.rank == responder.rank:
            responder.rank = (responder.rank + 1) % self.n

    def is_correct(self, configuration: Configuration) -> bool:
        ranks = [state.rank for state in configuration]
        return len(set(ranks)) == self.n

    def has_stabilized(self, configuration: Configuration) -> bool:
        # A correct configuration is silent (no two agents share a rank), and
        # a silent configuration of this protocol cannot become incorrect.
        return self.is_correct(configuration)

    def is_silent(self, configuration: Configuration) -> bool:
        return self.is_correct(configuration)

    def theoretical_state_count(self) -> int:
        return self.n

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """All ``n`` ranks (the protocol's exact state space)."""
        return [SilentNStateState(rank) for rank in range(self.n)]

    def compiled_predicates(self):
        # Correct, stabilized, and silent all coincide with "no rank held by
        # two agents", which on the count vector is simply max(counts) <= 1.
        def all_ranks_distinct(counts, compiled):
            return int(counts.max()) <= 1

        return {
            "correct": all_ranks_distinct,
            "stabilized": all_ranks_distinct,
            "silent": all_ranks_distinct,
        }

    # -- worst-case initial configuration (Theorem 2.4 lower bound) ----------------

    def worst_case_configuration(self) -> Configuration:
        """The Theta(n^2) lower-bound configuration of Theorem 2.4.

        Two agents at rank 0, no agent at rank ``n - 1``, and one agent at
        every other rank: the single duplicate must climb through ``n - 1``
        bottleneck meetings, each taking Theta(n) expected time.
        """
        ranks = [0] + list(range(self.n - 1))
        return Configuration([SilentNStateState(rank) for rank in ranks])

    def all_same_rank_configuration(self, rank: int = 0) -> Configuration:
        """Every agent at the same rank (maximally colliding start)."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank must be in [0, {self.n - 1}], got {rank}")
        return Configuration([SilentNStateState(rank) for _ in range(self.n)])


# -- barrier rank invariant (Lemmas 2.2 / 2.3) -------------------------------------


def rank_counts(configuration: Configuration, n: int) -> List[int]:
    """``m_i``: number of agents holding each rank ``i`` in ``0 .. n-1``."""
    counts = [0] * n
    for state in configuration:
        counts[state.rank] += 1
    return counts


def barrier_invariant_holds(counts: Sequence[int], k: int) -> bool:
    """Check inequality (1) of the paper for barrier candidate ``k``.

    For every ``r`` in ``0 .. n-1`` the number of agents in the ``r + 1`` ranks
    counted cyclically downward from ``k`` must be at most ``r + 1``.
    """
    n = len(counts)
    if not 0 <= k < n:
        raise ValueError(f"barrier candidate must be in [0, {n - 1}], got {k}")
    running = 0
    for r in range(n):
        running += counts[(k - r) % n]
        if running > r + 1:
            return False
    return True


def find_barrier_rank(counts: Sequence[int]) -> int:
    """Return a barrier rank ``k`` for the given rank counts (Lemma 2.2).

    Follows the constructive proof: with ``S_i = sum_{j<=i} (m_j - 1)``, any
    ``k`` minimizing ``S_k`` satisfies inequality (1).
    """
    n = len(counts)
    if sum(counts) != n:
        raise ValueError("rank counts must sum to the population size")
    best_k = 0
    best_s = None
    running = 0
    for i, count in enumerate(counts):
        running += count - 1
        if best_s is None or running < best_s:
            best_s = running
            best_k = i
    return best_k


# -- fast specialized simulator ------------------------------------------------------


def simulate_silent_n_state(
    n: int,
    initial_ranks: Optional[Sequence[int]] = None,
    rng: RngLike = None,
    max_interactions: Optional[int] = None,
) -> int:
    """Fast simulation of Protocol 1; returns interactions until stabilization.

    Tracks the total number of rank collisions (``sum_i max(m_i - 1, 0)``)
    incrementally so the stopping condition is O(1) per interaction, and draws
    scheduler pairs in NumPy batches.  Semantically identical to running
    :class:`SilentNStateSSR` through the generic engine; used by benchmarks to
    reach larger ``n`` despite the Theta(n^3) interaction count.

    Raises ``RuntimeError`` if ``max_interactions`` is exceeded.
    """
    if n < 2:
        raise ValueError(f"population size must be at least 2, got {n}")
    rng = make_rng(rng)
    if initial_ranks is None:
        ranks = [0] + list(range(n - 1))  # worst case of Theorem 2.4
    else:
        ranks = [int(rank) for rank in initial_ranks]
        if len(ranks) != n:
            raise ValueError(f"initial_ranks must have length {n}, got {len(ranks)}")
        if any(not 0 <= rank < n for rank in ranks):
            raise ValueError("initial ranks must lie in [0, n-1]")
    counts = [0] * n
    for rank in ranks:
        counts[rank] += 1
    collisions = sum(count - 1 for count in counts if count > 1)
    if collisions == 0:
        return 0

    interactions = 0
    batch = max(4096, 8 * n)
    while True:
        initiators = rng.integers(0, n, size=batch)
        responders = rng.integers(0, n - 1, size=batch)
        responders = responders + (responders >= initiators)
        for i, j in zip(initiators.tolist(), responders.tolist()):
            interactions += 1
            rank_i = ranks[i]
            if rank_i == ranks[j]:
                new_rank = (rank_i + 1) % n
                counts[rank_i] -= 1
                if counts[rank_i] >= 1:
                    collisions -= 1
                counts[new_rank] += 1
                if counts[new_rank] >= 2:
                    collisions += 1
                ranks[j] = new_rank
                if collisions == 0:
                    return interactions
            if max_interactions is not None and interactions >= max_interactions:
                raise RuntimeError(
                    f"Silent-n-state-SSR did not stabilize within {max_interactions} interactions"
                )


__all__ = [
    "SilentNStateSSR",
    "SilentNStateState",
    "barrier_invariant_holds",
    "find_barrier_rank",
    "rank_counts",
    "simulate_silent_n_state",
]
