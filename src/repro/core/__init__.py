"""The paper's protocols: self-stabilizing ranking and leader election.

Protocols
---------
* :class:`~repro.core.silent_n_state.SilentNStateSSR` -- Protocol 1, the
  Cai–Izumi–Wada baseline: ``n`` states, Theta(n^2) time, silent.
* :class:`~repro.core.optimal_silent.OptimalSilentSSR` -- Protocols 3 + 4,
  the paper's silent O(n)-state, Theta(n)-time protocol.
* :class:`~repro.core.sublinear.SublinearTimeSSR` -- Protocols 5-8, the
  paper's non-silent protocol parameterized by the path-depth ``H``:
  Theta(H n^(1/(H+1))) time for constant ``H`` and Theta(log n) time for
  ``H = Theta(log n)``.
* :class:`~repro.core.fratricide.FratricideLeaderElection` -- the classic
  initialized (non-self-stabilizing) leader election ``L, L -> L, F``.
* :class:`~repro.core.observation25.ThreeAgentSSLEWithoutRanking` -- the
  Observation 2.5 protocol showing SSLE does not imply ranking.
* :class:`~repro.core.epsilon_consensus.EpsilonConsensusProtocol` -- the
  sum-conserving averaging workload the Byzantine tolerance experiments
  measure against the approximate-consensus phase-count prediction.

Support
-------
* :mod:`repro.core.problems` -- correctness predicates for leader election and
  ranking.
* :mod:`repro.core.propagate_reset` -- the ``Propagate-Reset`` subprotocol
  (Protocol 2) shared by both new protocols.
"""

from repro.core.composition import ComposedProtocol, ComposedState
from repro.core.epsilon_consensus import (
    EpsilonConsensusProtocol,
    EpsilonConsensusState,
    theoretical_phase_count,
)
from repro.core.fratricide import FratricideLeaderElection, FratricideState
from repro.core.initialized_ranking import (
    InitializedLeaderDrivenRanking,
    InitializedRankingState,
)
from repro.core.observation25 import ThreeAgentSSLEWithoutRanking
from repro.core.optimal_silent import OptimalSilentSSR, OptimalSilentState
from repro.core.problems import (
    count_leaders,
    has_unique_leader,
    is_valid_ranking,
    leaders_from_ranks,
    ranking_defects,
)
from repro.core.propagate_reset import (
    PropagateReset,
    ResetWaveProtocol,
    ResetWaveState,
    ResettingFields,
)
from repro.core.silent_n_state import SilentNStateSSR, SilentNStateState
from repro.core.sublinear import SublinearTimeSSR, SublinearState

__all__ = [
    "ComposedProtocol",
    "ComposedState",
    "EpsilonConsensusProtocol",
    "EpsilonConsensusState",
    "FratricideLeaderElection",
    "FratricideState",
    "InitializedLeaderDrivenRanking",
    "InitializedRankingState",
    "OptimalSilentSSR",
    "OptimalSilentState",
    "PropagateReset",
    "ResetWaveProtocol",
    "ResetWaveState",
    "ResettingFields",
    "SilentNStateSSR",
    "SilentNStateState",
    "SublinearState",
    "SublinearTimeSSR",
    "ThreeAgentSSLEWithoutRanking",
    "count_leaders",
    "has_unique_leader",
    "is_valid_ranking",
    "leaders_from_ranks",
    "ranking_defects",
    "theoretical_phase_count",
]
