"""The classic initialized leader election ``L, L -> L, F``.

From the all-leaders configuration, whenever two leaders meet the responder
becomes a follower; a unique leader remains after ``~ n`` parallel time.  The
protocol is *not* self-stabilizing: from a configuration with zero leaders it
can never create one.  It appears in the paper both as the motivating example
of why self-stabilization is hard (Section 1) and as the slow leader election
run during the dormant phase of ``Optimal-Silent-SSR`` (Lemma 4.2).
"""

from __future__ import annotations

import numpy as np

from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import AgentState


class FratricideState(AgentState):
    """State of an agent: a single ``leader`` bit."""

    def __init__(self, leader: bool = True):
        self.leader = bool(leader)

    def signature(self):
        return self.leader


class FratricideLeaderElection(PopulationProtocol):
    """One-bit initialized leader election (``L, L -> L, F``)."""

    name = "fratricide-leader-election"

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> FratricideState:
        return FratricideState(leader=True)

    def random_state(self, rng: np.random.Generator) -> FratricideState:
        return FratricideState(leader=bool(rng.integers(0, 2)))

    def transition(
        self, initiator: FratricideState, responder: FratricideState, rng: np.random.Generator
    ) -> None:
        if initiator.leader and responder.leader:
            responder.leader = False

    def is_correct(self, configuration: Configuration) -> bool:
        return configuration.count_where(lambda state: state.leader) == 1

    def has_stabilized(self, configuration: Configuration) -> bool:
        # With at most one leader the configuration can never change again.
        return self.is_correct(configuration)

    def leader_count(self, configuration: Configuration) -> int:
        """Number of agents currently marked as leaders."""
        return configuration.count_where(lambda state: state.leader)

    def all_followers_configuration(self) -> Configuration:
        """The leaderless configuration from which the protocol can never recover.

        Used in tests and examples to demonstrate that the initialized
        protocol fails the self-stabilization requirement.
        """
        return Configuration([FratricideState(leader=False) for _ in range(self.n)])

    def theoretical_state_count(self) -> int:
        return 2

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """The full two-state space: leader and follower."""
        return [FratricideState(leader=True), FratricideState(leader=False)]

    def compiled_predicates(self):
        def unique_leader(counts, compiled):
            leaders = compiled.state_mask(lambda state: state.leader)
            return int(counts[leaders].sum()) == 1

        # A unique leader can never be destroyed (L, F pairs are null), so
        # correctness and stabilization coincide.
        return {"correct": unique_leader, "stabilized": unique_leader}


__all__ = ["FratricideLeaderElection", "FratricideState"]
