"""Protocols 3 + 4: ``Optimal-Silent-SSR``.

The paper's silent self-stabilizing ranking protocol with O(n) states and
Theta(n) expected parallel time (Theorem 4.3), optimal for silent protocols by
Observation 2.6.  The moving parts are:

* **error detection** -- two Settled agents with the same rank, or an
  Unsettled agent whose ``errorcount`` reaches 0, trigger a global reset;
* **``Propagate-Reset``** (Protocol 2) with ``D_max = Theta(n)``, whose long
  dormant phase hosts a slow fratricide leader election ``L, L -> L, F``
  (all agents enter the Resetting role as ``L``);
* **``Reset``** (Protocol 4) -- the surviving leader becomes Settled with
  rank 1, everyone else Unsettled;
* **binary-tree rank assignment** (Lemma 4.1, Figure 1) -- each Settled agent
  of rank ``r`` recruits up to two Unsettled agents into ranks ``2r`` and
  ``2r + 1`` (nodes of the full binary tree on ``{1, ..., n}``).

Pseudocode note: Protocol 3 line 9 states the child-slot condition as
``2 * i.rank + i.children < n``; a child rank of exactly ``n`` is a valid node
of the full binary tree, so this implementation uses ``<= n`` (with the strict
inequality the final rank could never be assigned and the protocol would reset
forever).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.problems import is_valid_ranking
from repro.core.propagate_reset import RESETTING, PropagateReset, default_rmax
from repro.engine.configuration import Configuration
from repro.engine.protocol import PopulationProtocol
from repro.engine.state import AgentState

#: Role labels.
SETTLED = "Settled"
UNSETTLED = "Unsettled"

#: Leader-election markers used during the dormant phase.
LEADER = "L"
FOLLOWER = "F"


class OptimalSilentState(AgentState):
    """State of an ``Optimal-Silent-SSR`` agent.

    Only the fields of the current role are meaningful; the others are ``None``
    (the paper's "role" device for keeping the state count additive).
    """

    def __init__(
        self,
        role: str = UNSETTLED,
        rank: Optional[int] = None,
        children: Optional[int] = None,
        errorcount: Optional[int] = None,
        leader: Optional[str] = None,
        resetcount: Optional[int] = None,
        delaytimer: Optional[int] = None,
    ):
        self.role = role
        self.rank = rank
        self.children = children
        self.errorcount = errorcount
        self.leader = leader
        self.resetcount = resetcount
        self.delaytimer = delaytimer

    def signature(self):
        if self.role == SETTLED:
            return (SETTLED, self.rank, self.children)
        if self.role == UNSETTLED:
            return (UNSETTLED, self.errorcount)
        return (RESETTING, self.leader, self.resetcount, self.delaytimer)


class OptimalSilentSSR(PopulationProtocol):
    """The linear-time, linear-state, silent self-stabilizing ranking protocol."""

    name = "Optimal-Silent-SSR"

    def __init__(
        self,
        n: int,
        rmax_multiplier: float = 60.0,
        dmax_factor: float = 8.0,
        emax_factor: float = 20.0,
    ):
        """Create the protocol for population size ``n``.

        Parameters
        ----------
        rmax_multiplier:
            ``R_max = rmax_multiplier * ln n`` (paper value 60).
        dmax_factor:
            ``D_max = dmax_factor * n``; the dormant phase must be long enough
            for the slow leader election to finish with constant probability.
        emax_factor:
            ``E_max = emax_factor * n``; how long an Unsettled agent waits for
            a rank before declaring an error.
        """
        super().__init__(n)
        self.rmax = default_rmax(n, rmax_multiplier)
        self.dmax = max(1, math.ceil(dmax_factor * n))
        self.emax = max(1, math.ceil(emax_factor * n))
        self.reset_machinery = PropagateReset(
            rmax=self.rmax,
            dmax=self.dmax,
            reset=self._reset,
            enter_resetting=self._enter_resetting,
        )

    # -- role changes ---------------------------------------------------------------

    @staticmethod
    def _enter_resetting(state: OptimalSilentState, rng: np.random.Generator) -> None:
        """Initialize Resetting-role fields: every entering agent starts as ``L``."""
        state.rank = None
        state.children = None
        state.errorcount = None
        state.leader = LEADER

    def _reset(self, state: OptimalSilentState, rng: np.random.Generator) -> None:
        """Protocol 4: leaders become Settled with rank 1, followers Unsettled."""
        if state.leader == LEADER:
            state.role = SETTLED
            state.rank = 1
            state.children = 0
            state.errorcount = None
        else:
            state.role = UNSETTLED
            state.errorcount = self.emax
            state.rank = None
            state.children = None
        state.leader = None
        state.resetcount = None
        state.delaytimer = None

    def _trigger_both(
        self, a: OptimalSilentState, b: OptimalSilentState, rng: np.random.Generator
    ) -> None:
        """Lines 6-7 / 17-18: both agents become triggered Resetting leaders."""
        self.reset_machinery.trigger(a, rng)
        self.reset_machinery.trigger(b, rng)

    # -- configurations ---------------------------------------------------------------

    def initial_state(self, agent_id: int, rng: np.random.Generator) -> OptimalSilentState:
        """Clean start: all agents dormant leaders, as right after a reset wave.

        A self-stabilizing protocol has no distinguished initial state; this
        choice (every agent Resetting, dormant, marked ``L`` with a fresh delay
        timer) is the configuration a full reset produces and lets the default
        simulation exercise the leader election + ranking pipeline directly.
        """
        return OptimalSilentState(
            role=RESETTING, leader=LEADER, resetcount=0, delaytimer=self.dmax
        )

    def random_state(self, rng: np.random.Generator) -> OptimalSilentState:
        """Adversarial state: any role with any in-range field values."""
        role = (SETTLED, UNSETTLED, RESETTING)[int(rng.integers(0, 3))]
        if role == SETTLED:
            return OptimalSilentState(
                role=SETTLED,
                rank=int(rng.integers(1, self.n + 1)),
                children=int(rng.integers(0, 3)),
            )
        if role == UNSETTLED:
            return OptimalSilentState(
                role=UNSETTLED, errorcount=int(rng.integers(0, self.emax + 1))
            )
        return OptimalSilentState(
            role=RESETTING,
            leader=LEADER if rng.integers(0, 2) else FOLLOWER,
            resetcount=int(rng.integers(0, self.rmax + 1)),
            delaytimer=int(rng.integers(0, self.dmax + 1)),
        )

    def stable_configuration(self) -> Configuration:
        """The unique silent configuration: Settled agents with ranks 1..n."""
        states = []
        for rank in range(1, self.n + 1):
            children = sum(1 for child in (2 * rank, 2 * rank + 1) if child <= self.n)
            states.append(OptimalSilentState(role=SETTLED, rank=rank, children=children))
        return Configuration(states)

    def single_leader_awakening_configuration(self) -> Configuration:
        """One Settled rank-1 agent plus ``n - 1`` Unsettled agents.

        This is the configuration reached after a *successful* reset (a unique
        dormant leader awakened); the binary-tree rank assignment of Lemma 4.1
        starts here.
        """
        states = [OptimalSilentState(role=SETTLED, rank=1, children=0)]
        states.extend(
            OptimalSilentState(role=UNSETTLED, errorcount=self.emax) for _ in range(self.n - 1)
        )
        return Configuration(states)

    def duplicate_rank_configuration(self, rank: int = 1) -> Configuration:
        """All agents Settled, every one holding the same rank (worst collision)."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank must be in [1, {self.n}], got {rank}")
        return Configuration(
            [OptimalSilentState(role=SETTLED, rank=rank, children=2) for _ in range(self.n)]
        )

    def all_dormant_configuration(self, leaders: Optional[int] = None) -> Configuration:
        """Every agent dormant (Resetting, ``resetcount = 0``) with fresh timers.

        ``leaders`` controls how many carry ``leader = L`` (default: all, the
        state right after a reset wave has swept the population).
        """
        if leaders is None:
            leaders = self.n
        if not 0 <= leaders <= self.n:
            raise ValueError(f"leaders must be in [0, {self.n}], got {leaders}")
        states = []
        for index in range(self.n):
            states.append(
                OptimalSilentState(
                    role=RESETTING,
                    leader=LEADER if index < leaders else FOLLOWER,
                    resetcount=0,
                    delaytimer=self.dmax,
                )
            )
        return Configuration(states)

    # -- the transition (Protocol 3) ----------------------------------------------------

    def transition(
        self,
        initiator: OptimalSilentState,
        responder: OptimalSilentState,
        rng: np.random.Generator,
    ) -> None:
        a, b = initiator, responder
        resetting = self.reset_machinery.is_resetting

        # Lines 1-4: resetting branch, plus the slow leader election L, L -> L, F.
        if resetting(a) or resetting(b):
            self.reset_machinery.interact(a, b, rng)
            if resetting(a) and resetting(b) and a.leader == LEADER and b.leader == LEADER:
                b.leader = FOLLOWER

        # Lines 5-7: rank collision between two Settled agents triggers a reset.
        if a.role == SETTLED and b.role == SETTLED and a.rank == b.rank:
            self._trigger_both(a, b, rng)

        # Lines 8-12: binary-tree rank assignment of Unsettled agents.
        for settled, unsettled in ((a, b), (b, a)):
            if (
                settled.role == SETTLED
                and unsettled.role == UNSETTLED
                and settled.children < 2
                and 2 * settled.rank + settled.children <= self.n
            ):
                unsettled.role = SETTLED
                unsettled.children = 0
                unsettled.rank = 2 * settled.rank + settled.children
                unsettled.errorcount = None
                settled.children += 1

        # Lines 13-18: Unsettled agents count down their error budget.
        for agent in (a, b):
            if agent.role == UNSETTLED:
                agent.errorcount = max(agent.errorcount - 1, 0)
                if agent.errorcount == 0:
                    self._trigger_both(a, b, rng)

    # -- predicates ------------------------------------------------------------------

    def is_correct(self, configuration: Configuration) -> bool:
        if any(state.role != SETTLED for state in configuration):
            return False
        return is_valid_ranking((state.rank for state in configuration), self.n)

    def has_stabilized(self, configuration: Configuration) -> bool:
        # A correct configuration is silent (only Settled agents, all ranks
        # distinct), and no transition applies to it, so it is stable.
        return self.is_correct(configuration)

    def is_silent(self, configuration: Configuration) -> bool:
        # Unsettled and Resetting agents always change state when they
        # interact (counters decrement or the role changes), so the silent
        # configurations are exactly the correct ones.
        return self.is_correct(configuration)

    def theoretical_state_count(self) -> int:
        settled = 3 * self.n  # rank x children
        unsettled = self.emax + 1
        resetting = 2 * (self.rmax + 1 + self.dmax + 1)  # leader x (propagating / dormant)
        return settled + unsettled + resetting

    # -- compiled-engine support ---------------------------------------------------

    def enumerate_states(self):
        """The full declared space, covering every adversarial start.

        Over-approximates the paper's reachable count
        (:meth:`theoretical_state_count`) by enumerating ``resetcount`` and
        ``delaytimer`` independently -- adversarial initial states may combine
        them arbitrarily, and the compiled engine must encode any
        configuration :meth:`random_state` can produce.  The space is
        ``3 n + E_max + 1 + 2 (R_max + 1)(D_max + 1)`` states: compilation is
        only practical with reduced constants (small ``rmax_multiplier``,
        ``dmax_factor``, ``emax_factor``), since the tables are quadratic in
        the state count.
        """
        states = []
        for rank in range(1, self.n + 1):
            for children in range(3):
                states.append(OptimalSilentState(role=SETTLED, rank=rank, children=children))
        for errorcount in range(self.emax + 1):
            states.append(OptimalSilentState(role=UNSETTLED, errorcount=errorcount))
        for leader in (LEADER, FOLLOWER):
            for resetcount in range(self.rmax + 1):
                for delaytimer in range(self.dmax + 1):
                    states.append(
                        OptimalSilentState(
                            role=RESETTING,
                            leader=leader,
                            resetcount=resetcount,
                            delaytimer=delaytimer,
                        )
                    )
        return states

    def compiled_predicates(self):
        n = self.n

        def valid_ranking(counts, compiled):
            settled = compiled.state_mask(lambda state: state.role == SETTLED)
            if int(counts[~settled].sum()) != 0:
                return False
            ranks = np.fromiter(
                (state.rank if state.role == SETTLED else 0 for state in compiled.states),
                dtype=np.int64,
                count=compiled.num_states,
            )
            per_rank = np.bincount(ranks[settled], weights=counts[settled], minlength=n + 1)
            # All n agents Settled with every rank in 1..n held at most once
            # is exactly a permutation (pigeonhole).
            return bool((per_rank[1 : n + 1] <= 1).all())

        # Correct, stabilized, and silent coincide (see the predicates above).
        return {
            "correct": valid_ranking,
            "stabilized": valid_ranking,
            "silent": valid_ranking,
        }

    # -- diagnostics -------------------------------------------------------------------

    def role_counts(self, configuration: Configuration) -> dict:
        """Count agents per role (for traces and experiments)."""
        counts = {SETTLED: 0, UNSETTLED: 0, RESETTING: 0}
        for state in configuration:
            counts[state.role] = counts.get(state.role, 0) + 1
        return counts

    def settled_ranks(self, configuration: Configuration) -> list:
        """Ranks of all Settled agents (with repetitions)."""
        return [state.rank for state in configuration if state.role == SETTLED]


__all__ = [
    "FOLLOWER",
    "LEADER",
    "OptimalSilentSSR",
    "OptimalSilentState",
    "SETTLED",
    "UNSETTLED",
]
